//! # stems — a reproduction of *Spatio-Temporal Memory Streaming*
//! (Somogyi, Wenisch, Ailamaki, Falsafi; ISCA 2009)
//!
//! STeMS is a hardware prefetcher that records the **temporal** sequence
//! of spatial-region trigger misses and the **spatial** access sequence
//! within each region, then *reconstructs* a single predicted total miss
//! order by interleaving the two according to recorded deltas. This
//! workspace implements STeMS and everything it is evaluated against,
//! from scratch:
//!
//! * [`core`] — the prefetchers: STeMS, TMS, SMS, stride, the naive
//!   TMS+SMS hybrid, the trace-driven coverage engine, and the unified
//!   `Session` API every driver goes through;
//! * [`memsim`] — caches, the directory protocol, and the torus;
//! * [`workloads`] — synthetic equivalents of the paper's ten
//!   applications;
//! * [`analysis`] — Sequitur, repetition classes, correlation distance,
//!   and the joint predictability oracle (Figures 6–8);
//! * [`timing`] — the ROB/MSHR/bandwidth timing model (Figure 10);
//! * [`harness`] — per-figure experiment binaries;
//! * [`server`] / [`client`] — the trace-streaming session service:
//!   a TCP daemon multiplexing tenant sessions and its streaming
//!   client (`docs/WIRE_PROTOCOL.md`).
//!
//! # Quickstart
//!
//! ```
//! use stems::core::{Predictor, PrefetchConfig, Session};
//! use stems::memsim::SystemConfig;
//! use stems::workloads::Workload;
//!
//! let trace = Workload::Qry2.generate_scaled(0.01, 42);
//! let sys = SystemConfig::small();
//! let cfg = PrefetchConfig::commercial();
//! let baseline = Session::builder(&sys).prefetch(&cfg).run(&trace);
//! let stems = Session::builder(&sys)
//!     .prefetch(&cfg)
//!     .predictor(Predictor::Stems)
//!     .run(&trace);
//! assert!(stems.covered > 0);
//! assert!(stems.uncovered < baseline.uncovered);
//! ```

pub use stems_analysis as analysis;
pub use stems_client as client;
pub use stems_core as core;
pub use stems_harness as harness;
pub use stems_memsim as memsim;
pub use stems_server as server;
pub use stems_timing as timing;
pub use stems_trace as trace;
pub use stems_types as types;
pub use stems_workloads as workloads;
