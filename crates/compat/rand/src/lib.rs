//! Offline, dependency-free stand-in for the subset of the `rand` 0.8 API
//! this workspace uses: `StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{gen, gen_bool, gen_range}`.
//!
//! The container this repo builds in has no crates.io access, so the
//! workspace path-overrides `rand` to this crate. The generator is
//! xoshiro256** seeded through SplitMix64 — statistically solid for
//! driving synthetic workload generation, deterministic for a given seed,
//! and identical across platforms. Streams differ from the real `StdRng`
//! (ChaCha12), which only shifts which concrete traces the workload
//! generators emit, not their statistics.

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the single source of entropy.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values that can be sampled uniformly from all bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can produce a uniform sample, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span as u64) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + reduce(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = hi as i128 - lo as i128 + 1;
                if span > u64::MAX as i128 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + reduce(rng.next_u64(), span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Maps a uniform `u64` onto `[0, span)` (Lemire's multiply-shift; the
/// modulo bias at these span sizes is far below anything the synthetic
/// workloads could observe).
fn reduce(x: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((x as u128 * span as u128) >> 64) as u64
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded through
    /// SplitMix64 (not ChaCha12 like the real `StdRng`; see crate docs).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(3u16..=5);
            assert!((3..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(9);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[r.gen_range(0usize..8)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "buckets = {buckets:?}");
        }
    }
}
