//! Offline, dependency-free stand-in for the subset of `proptest` this
//! workspace uses: the `proptest!` macro, integer-range / tuple /
//! `collection::vec` / `any::<T>()` strategies, and the `prop_assert*`
//! macros.
//!
//! The container this repo builds in has no crates.io access, so the
//! workspace path-overrides `proptest` to this crate. Semantics are
//! simplified but honest: each property runs over a fixed number of
//! deterministically seeded random cases, and `prop_assert*` panics with
//! the case's inputs via the normal assert machinery. There is no
//! shrinking — a failing case prints its seed index instead.

use std::ops::Range;

/// Deterministic per-case generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy` (without
/// shrinking: `generate` replaces `new_tree`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi as u128 - lo as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo + (rng.below(span as u64) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

// Signed bounds sign-extend under a direct u128 cast, so spans are
// computed in i128 and samples re-centered from the low bound.
macro_rules! impl_range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi as i128 - lo as i128 + 1;
                if span > u64::MAX as i128 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The unconstrained strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.len.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }
}

/// Everything a property test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, Arbitrary, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Number of random cases each property runs per seed pass.
pub const CASES: u64 = 64;

/// The extra exploratory seed each property suite runs on top of the
/// fixed pass: `PROPTEST_SEED` from the environment when set (for
/// reproducing a failure), otherwise derived from the wall clock so
/// every run explores a fresh corner of the input space. The seed is
/// printed by the failure message so a flake is always reproducible.
pub fn exploration_seed() -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        match s.trim().parse::<u64>() {
            Ok(seed) => return seed,
            Err(e) => panic!("PROPTEST_SEED must be a u64: {e}"),
        }
    }
    // SplitMix the nanosecond clock so two suites starting in the same
    // instant still diverge.
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    let mut z = nanos.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] deterministically seeded cases
/// (the fixed pass, stable across runs), then [`CASES`] more from one
/// exploratory seed ([`exploration_seed`]): random per run, printed on
/// failure, and pinnable via `PROPTEST_SEED=<n>` for reproduction.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::CASES {
                    let mut __rng = $crate::TestRng::new(
                        0x5EED_0000u64 ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D),
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let run = || -> Result<(), String> { $body Ok(()) };
                    if let Err(msg) = run() {
                        panic!("property {} failed at case {case}: {msg}", stringify!($name));
                    }
                }
                let seed = $crate::exploration_seed();
                for case in 0..$crate::CASES {
                    let mut __rng = $crate::TestRng::new(
                        seed ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D),
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let run = || -> Result<(), String> { $body Ok(()) };
                    if let Err(msg) = run() {
                        panic!(
                            "property {} failed at exploratory case {case} \
                             (reproduce with PROPTEST_SEED={seed}): {msg}",
                            stringify!($name)
                        );
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside `proptest!`, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside `proptest!`, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!("{:?} != {:?}", a, b));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!("{:?} != {:?}: {}", a, b, format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside `proptest!`, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!("{:?} == {:?}", a, b));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0u8..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4, "y = {y}");
        }

        #[test]
        fn vectors_respect_length(v in crate::collection::vec(0u64..10, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_compose(pair in (0u64..5, any::<bool>())) {
            prop_assert!(pair.0 < 5);
            let _: bool = pair.1;
        }

        #[test]
        fn signed_ranges_stay_in_bounds(x in -5i32..5, y in -3i8..=3) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((-3..=3).contains(&y));
        }

        #[test]
        fn full_width_ranges_do_not_overflow(
            a in 0u64..=u64::MAX,
            b in i64::MIN..=i64::MAX,
            c in i64::MIN..i64::MAX,
        ) {
            let _ = (a, b, c);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
