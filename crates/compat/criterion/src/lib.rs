//! Offline, dependency-free stand-in for the subset of `criterion` this
//! workspace uses: `Criterion`, benchmark groups, `Bencher::iter`,
//! `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The container this repo builds in has no crates.io access, so the
//! workspace path-overrides `criterion` to this crate. Reporting is
//! simplified: each benchmark runs a warm-up, then `sample_size` timed
//! samples, and prints the median time per iteration (plus element
//! throughput when declared). There are no statistical comparisons
//! against saved baselines.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmark
/// work, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declared per-iteration workload, mirroring `criterion::Throughput`.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Benchmark driver handed to `bench_function` closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting one sample per configured iteration batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed run.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn median(samples: &mut [Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn report(name: &str, per_iter: Duration, throughput: Option<Throughput>) {
    let ns = per_iter.as_nanos();
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            let rate = n as f64 / per_iter.as_secs_f64();
            println!("{name:<40} {ns:>12} ns/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            let rate = n as f64 / per_iter.as_secs_f64() / (1024.0 * 1024.0);
            println!("{name:<40} {ns:>12} ns/iter  {rate:>12.1} MiB/s");
        }
        _ => println!("{name:<40} {ns:>12} ns/iter"),
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration workload for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let med = median(&mut b.samples);
        report(&format!("{}/{}", self.name, id), med, self.throughput);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark context, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Applies command-line configuration (accepted and ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: std::marker::PhantomData,
            name: name.to_string(),
            throughput: None,
            sample_size,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let med = median(&mut b.samples);
        report(id, med, None);
        self
    }

    /// Final reporting hook (no-op).
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
    }

    #[test]
    fn median_of_samples() {
        let mut s = vec![
            Duration::from_nanos(3),
            Duration::from_nanos(1),
            Duration::from_nanos(2),
        ];
        assert_eq!(median(&mut s), Duration::from_nanos(2));
    }
}
