//! Structured events: typed records in a bounded ring, drainable as
//! JSON-lines.
//!
//! Counters answer "how many"; events answer "what happened, when, to
//! whom". The server pushes an [`Event`] for every lifecycle edge
//! (session open/close/evict/abort, drain start/finish, wire errors by
//! kind, slow-chunk threshold crossings) into an [`EventRing`] — a
//! fixed-capacity ring that overwrites the oldest record under
//! pressure and counts what it dropped, so a stalled scraper can never
//! grow server memory. Draining serialises each record as one JSON
//! object per line.
//!
//! Timestamps are nanoseconds from a caller-supplied
//! [`stems_types::clock::Clock`] origin (the server anchors at bind
//! time), never wall-clock reads inside this crate.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Severity of an event, ordered `Error < Warn < Info < Debug` so a
/// configured level admits everything at or below it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LogLevel {
    /// Protocol violations, aborted sessions.
    Error,
    /// Degraded-but-alive conditions: evictions, slow chunks.
    Warn,
    /// Normal lifecycle edges.
    Info,
    /// Chatty per-operation detail.
    Debug,
}

impl LogLevel {
    /// Uppercase name as printed in log lines (`ERROR`, `WARN`, ...).
    pub fn name(self) -> &'static str {
        match self {
            LogLevel::Error => "ERROR",
            LogLevel::Warn => "WARN",
            LogLevel::Info => "INFO",
            LogLevel::Debug => "DEBUG",
        }
    }
}

impl std::str::FromStr for LogLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<LogLevel, String> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(LogLevel::Error),
            "warn" | "warning" => Ok(LogLevel::Warn),
            "info" => Ok(LogLevel::Info),
            "debug" => Ok(LogLevel::Debug),
            other => Err(format!(
                "unknown log level {other:?} (expected error|warn|info|debug)"
            )),
        }
    }
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What happened. Fields carry the identifying detail; anything
/// aggregate belongs in a metric instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A session slot was created for a client.
    SessionOpen {
        /// Server-assigned session id.
        session: u32,
        /// Predictor configuration name.
        predictor: String,
    },
    /// A client closed its session normally.
    SessionClose {
        /// Server-assigned session id.
        session: u32,
        /// Total accesses fed over the session's lifetime.
        accesses: u64,
    },
    /// A reconnecting client re-attached to a live session and the
    /// server replied with its journal position.
    SessionResume {
        /// Server-assigned session id.
        session: u32,
        /// The server's authoritative last applied sequence number.
        last_seq: u64,
    },
    /// The idle sweeper reclaimed a session past its TTL.
    SessionEvict {
        /// Server-assigned session id.
        session: u32,
    },
    /// A session was torn down abnormally (connection worker panicked
    /// or died mid-chunk); its slot was repaired rather than leaked.
    SessionAbort {
        /// Server-assigned session id.
        session: u32,
        /// Short description of why.
        context: String,
    },
    /// Shutdown drain began.
    DrainStart {
        /// Sessions outstanding when the drain started.
        sessions: usize,
    },
    /// Shutdown drain finished.
    DrainFinish {
        /// Sessions still busy when the drain deadline expired.
        sessions: usize,
    },
    /// A connection produced a protocol-level error.
    WireError {
        /// `stems_types::wire::WireError::kind_name()` of the error.
        kind: &'static str,
    },
    /// A chunk took longer than the configured threshold.
    SlowChunk {
        /// Server-assigned session id.
        session: u32,
        /// Observed chunk latency in nanoseconds.
        nanos: u64,
        /// Records in the offending chunk.
        records: usize,
    },
    /// Free-form operational message (the server's logging path).
    Log {
        /// Severity of the message.
        level: LogLevel,
        /// The message text.
        message: String,
    },
}

impl EventKind {
    /// Stable snake_case name used as the JSON `"event"` field.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SessionOpen { .. } => "session_open",
            EventKind::SessionClose { .. } => "session_close",
            EventKind::SessionResume { .. } => "session_resume",
            EventKind::SessionEvict { .. } => "session_evict",
            EventKind::SessionAbort { .. } => "session_abort",
            EventKind::DrainStart { .. } => "drain_start",
            EventKind::DrainFinish { .. } => "drain_finish",
            EventKind::WireError { .. } => "wire_error",
            EventKind::SlowChunk { .. } => "slow_chunk",
            EventKind::Log { .. } => "log",
        }
    }

    /// The severity this kind is reported at.
    pub fn level(&self) -> LogLevel {
        match self {
            EventKind::SessionAbort { .. } | EventKind::WireError { .. } => LogLevel::Error,
            EventKind::SessionEvict { .. } | EventKind::SlowChunk { .. } => LogLevel::Warn,
            EventKind::SessionOpen { .. }
            | EventKind::SessionClose { .. }
            | EventKind::SessionResume { .. }
            | EventKind::DrainStart { .. }
            | EventKind::DrainFinish { .. } => LogLevel::Info,
            EventKind::Log { level, .. } => *level,
        }
    }
}

/// One timestamped event record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the owning process's clock origin.
    pub nanos: u64,
    /// What happened.
    pub kind: EventKind,
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Event {
    /// Appends the record as one JSON object (no trailing newline):
    /// `{"nanos":N,"level":"...","event":"...", ...detail fields}`.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write;
        write!(
            out,
            "{{\"nanos\":{},\"level\":\"{}\",\"event\":\"{}\"",
            self.nanos,
            self.kind.level().name(),
            self.kind.name()
        )
        .unwrap();
        match &self.kind {
            EventKind::SessionOpen { session, predictor } => {
                write!(out, ",\"session\":{session},\"predictor\":").unwrap();
                push_json_str(out, predictor);
            }
            EventKind::SessionClose { session, accesses } => {
                write!(out, ",\"session\":{session},\"accesses\":{accesses}").unwrap();
            }
            EventKind::SessionResume { session, last_seq } => {
                write!(out, ",\"session\":{session},\"last_seq\":{last_seq}").unwrap();
            }
            EventKind::SessionEvict { session } => {
                write!(out, ",\"session\":{session}").unwrap();
            }
            EventKind::SessionAbort { session, context } => {
                write!(out, ",\"session\":{session},\"context\":").unwrap();
                push_json_str(out, context);
            }
            EventKind::DrainStart { sessions } | EventKind::DrainFinish { sessions } => {
                write!(out, ",\"sessions\":{sessions}").unwrap();
            }
            EventKind::WireError { kind } => {
                write!(out, ",\"kind\":\"{kind}\"").unwrap();
            }
            EventKind::SlowChunk {
                session,
                nanos,
                records,
            } => {
                write!(
                    out,
                    ",\"session\":{session},\"chunk_nanos\":{nanos},\"records\":{records}"
                )
                .unwrap();
            }
            EventKind::Log { message, .. } => {
                out.push_str(",\"message\":");
                push_json_str(out, message);
            }
        }
        out.push('}');
    }

    /// Appends a human-oriented one-liner (`[+1.234s] WARN slow_chunk
    /// ...`), the server's stderr log format.
    pub fn write_text(&self, out: &mut String) {
        use std::fmt::Write;
        write!(
            out,
            "[+{:.3}s] {} ",
            self.nanos as f64 / 1e9,
            self.kind.level().name()
        )
        .unwrap();
        match &self.kind {
            EventKind::SessionOpen { session, predictor } => {
                write!(out, "session {session} opened ({predictor})").unwrap();
            }
            EventKind::SessionClose { session, accesses } => {
                write!(out, "session {session} closed after {accesses} accesses").unwrap();
            }
            EventKind::SessionResume { session, last_seq } => {
                write!(out, "session {session} resumed at seq {last_seq}").unwrap();
            }
            EventKind::SessionEvict { session } => {
                write!(out, "session {session} evicted (idle past TTL)").unwrap();
            }
            EventKind::SessionAbort { session, context } => {
                write!(out, "session {session} aborted: {context}").unwrap();
            }
            EventKind::DrainStart { sessions } => {
                write!(out, "draining {sessions} session(s)").unwrap();
            }
            EventKind::DrainFinish { sessions } => {
                write!(out, "drain finished, {sessions} session(s) still busy").unwrap();
            }
            EventKind::WireError { kind } => {
                write!(out, "wire error: {kind}").unwrap();
            }
            EventKind::SlowChunk {
                session,
                nanos,
                records,
            } => {
                write!(
                    out,
                    "slow chunk on session {session}: {records} records in {:.3}ms",
                    *nanos as f64 / 1e6
                )
                .unwrap();
            }
            EventKind::Log { message, .. } => out.push_str(message),
        }
    }
}

/// A bounded ring of [`Event`]s. Pushing past capacity overwrites the
/// oldest record and bumps a drop counter; draining empties the ring.
#[derive(Debug)]
pub struct EventRing {
    buf: Mutex<VecDeque<Event>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl EventRing {
    /// A ring holding at most `capacity` records (clamped to ≥ 1).
    pub fn new(capacity: usize) -> EventRing {
        let capacity = capacity.max(1);
        EventRing {
            buf: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// Maximum records retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten before anyone drained them.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Appends an event, evicting the oldest record if full.
    pub fn push(&self, event: Event) {
        let mut buf = self.buf.lock().unwrap();
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event);
    }

    /// Removes and returns all buffered events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.buf.lock().unwrap().drain(..).collect()
    }

    /// Drains the ring into JSON-lines text (one object per line, each
    /// line newline-terminated). Empty ring renders as the empty
    /// string.
    pub fn drain_json(&self) -> String {
        let events = self.drain();
        let mut out = String::new();
        for e in &events {
            e.write_json(&mut out);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(nanos: u64, kind: EventKind) -> Event {
        Event { nanos, kind }
    }

    #[test]
    fn levels_order_and_parse() {
        assert!(LogLevel::Error < LogLevel::Warn);
        assert!(LogLevel::Warn < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
        assert_eq!("warn".parse::<LogLevel>().unwrap(), LogLevel::Warn);
        assert_eq!("DEBUG".parse::<LogLevel>().unwrap(), LogLevel::Debug);
        assert!("verbose".parse::<LogLevel>().is_err());
    }

    #[test]
    fn kinds_carry_names_and_levels() {
        let k = EventKind::SessionAbort {
            session: 3,
            context: "worker panic".into(),
        };
        assert_eq!(k.name(), "session_abort");
        assert_eq!(k.level(), LogLevel::Error);
        assert_eq!(
            EventKind::SlowChunk {
                session: 1,
                nanos: 10,
                records: 2
            }
            .level(),
            LogLevel::Warn
        );
        assert_eq!(
            EventKind::Log {
                level: LogLevel::Debug,
                message: "x".into()
            }
            .level(),
            LogLevel::Debug
        );
    }

    #[test]
    fn json_lines_escape_and_carry_fields() {
        let ring = EventRing::new(8);
        ring.push(ev(
            1_500_000_000,
            EventKind::SessionOpen {
                session: 7,
                predictor: "stems".into(),
            },
        ));
        ring.push(ev(
            2_000_000_000,
            EventKind::Log {
                level: LogLevel::Warn,
                message: "quote \" and \\ and\nnewline".into(),
            },
        ));
        let text = ring.drain_json();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"nanos\":1500000000,\"level\":\"INFO\",\"event\":\"session_open\",\
             \"session\":7,\"predictor\":\"stems\"}"
        );
        assert!(lines[1].contains("\\\"") && lines[1].contains("\\\\") && lines[1].contains("\\n"));
        // Drained means drained.
        assert!(ring.is_empty());
        assert_eq!(ring.drain_json(), "");
    }

    #[test]
    fn overflow_overwrites_oldest_and_counts_drops() {
        // The satellite event-ring overflow test.
        let ring = EventRing::new(3);
        for i in 0..10u32 {
            ring.push(ev(i as u64, EventKind::SessionEvict { session: i }));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 7);
        let kept = ring.drain();
        let ids: Vec<u32> = kept
            .iter()
            .map(|e| match e.kind {
                EventKind::SessionEvict { session } => session,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![7, 8, 9], "oldest records were the ones dropped");
        // Drop counter survives the drain.
        assert_eq!(ring.dropped(), 7);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let ring = EventRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(ev(0, EventKind::DrainStart { sessions: 1 }));
        ring.push(ev(1, EventKind::DrainFinish { sessions: 0 }));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn text_lines_are_human_readable() {
        let mut out = String::new();
        ev(
            1_234_000_000,
            EventKind::SlowChunk {
                session: 2,
                nanos: 350_000_000,
                records: 4096,
            },
        )
        .write_text(&mut out);
        assert_eq!(
            out,
            "[+1.234s] WARN slow chunk on session 2: 4096 records in 350.000ms"
        );
    }
}
