//! Zero-dependency observability for the STeMS service stack.
//!
//! The ROADMAP's north star is a production-scale daemon, and a daemon
//! that cannot be observed cannot be operated. This crate is the one
//! subsystem every later layer reports through; it is `std`-only (no
//! new dependencies, consistent with the offline-container house rules)
//! and deliberately small:
//!
//! * [`MetricsRegistry`] — named atomic [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket log2 [`Histogram`]s. Handles are `Arc`-backed and
//!   lock-free to update; the registry lock is taken only at
//!   registration and render time, never on the hot path. Label
//!   support is one small static dimension (tenant / predictor /
//!   workload), resolved at registration so updates stay
//!   allocation-free.
//! * [`EventRing`] — a bounded, lock-protected ring of structured
//!   [`Event`] records (session open/close/evict, drain start/finish,
//!   wire error kinds, slow-chunk crossings) with drop-counting,
//!   drainable as JSON-lines.
//! * [`SessionObs`] — the optional hook `stems_core::Session` calls
//!   around each chunk. Time comes from a caller-supplied
//!   [`stems_types::clock::Clock`], so determinism and tests never
//!   depend on wall time; simulation results are never perturbed by
//!   observation (the hook only reads a clock and bumps atomics).
//!
//! Rendering is the Prometheus-style text exposition format
//! (`name{label="v"} value` lines, helpers in `stems_types::expo`);
//! the scheme, event schema, and scrape path are documented in
//! `docs/OBSERVABILITY.md`.
//!
//! # Example
//!
//! ```
//! use stems_obs::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new();
//! let chunks = reg.counter("stems_chunks_total");
//! let latency = reg.histogram("stems_chunk_nanos");
//! chunks.inc();
//! latency.observe(1_500);
//! let mut text = String::new();
//! reg.render(&mut text);
//! assert!(text.contains("stems_chunks_total 1"));
//! assert!(text.contains("stems_chunk_nanos_count 1"));
//! ```

pub mod events;
pub mod hook;
pub mod metrics;

pub use events::{Event, EventKind, EventRing, LogLevel};
pub use hook::{SessionObs, SessionObsBuilder};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};
