//! The metrics registry: named atomic counters, gauges, and log2
//! histograms with on-demand text exposition.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones over atomics; updating one is a handful of relaxed atomic
//! operations and never takes a lock or allocates. The registry itself
//! is a `Mutex<Vec<...>>` touched only at registration (once per
//! metric) and at render time (once per scrape), so contention on the
//! observation path is zero by construction.
//!
//! Histograms use fixed power-of-two buckets: bucket 0 holds the value
//! `0`, bucket `i >= 1` holds values in `[2^(i-1), 2^i)`. Quantiles
//! (p50/p90/p99) and the exact maximum are derived from the buckets at
//! read time — nothing is computed on `observe`.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use stems_types::expo;

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing atomic counter handle. Clones share the
/// same underlying value.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter detached from any registry (useful in tests).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge handle. Clones share the same value.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge detached from any registry (useful in tests).
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: [0u64; HISTOGRAM_BUCKETS].map(AtomicU64::new),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket log2 histogram handle for latency/size samples.
/// Clones share the same underlying buckets.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// A histogram detached from any registry (useful in tests).
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index recording `v`: 0 for `v == 0`, otherwise
    /// `floor(log2(v)) + 1` — bucket `i >= 1` covers `[2^(i-1), 2^i)`.
    pub fn bucket_index(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// The inclusive `[low, high]` value range of bucket `i`.
    ///
    /// # Panics
    ///
    /// If `i >= HISTOGRAM_BUCKETS`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < HISTOGRAM_BUCKETS, "bucket {i} out of range");
        if i == 0 {
            (0, 0)
        } else if i == HISTOGRAM_BUCKETS - 1 {
            (1u64 << (i - 1), u64::MAX)
        } else {
            (1u64 << (i - 1), (1u64 << i) - 1)
        }
    }

    /// Records one sample. A few relaxed atomic adds; no locks, no
    /// allocation.
    pub fn observe(&self, v: u64) {
        let core = &*self.0;
        core.buckets[Histogram::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(v, Ordering::Relaxed);
        core.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A relaxed snapshot of the per-bucket counts. Under concurrent
    /// observation the snapshot may straddle an in-flight `observe`
    /// (monitoring reads are advisory); quiesced, it is exact.
    pub fn snapshot(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(&self.0.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.snapshot().iter().sum()
    }

    /// Sum of all recorded values (wrapping beyond `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// The exact largest value recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) from the bucket
    /// counts by linear interpolation inside the target bucket. Exact
    /// for values that land on bucket boundaries; otherwise accurate to
    /// within the bucket's power-of-two width. Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.snapshot();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the sample the quantile names.
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &n) in counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                let (lo, hi) = Histogram::bucket_bounds(i);
                // The histogram's max bounds the top bucket tighter
                // than 2^i - 1 ever could.
                let hi = hi.min(self.max());
                let into = (target - seen) as f64 / n as f64;
                return lo as f64 + (hi - lo) as f64 * into;
            }
            seen += n;
        }
        self.max() as f64
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    /// The one static label dimension, fixed at registration.
    label: Option<(&'static str, String)>,
    metric: Metric,
}

/// A named collection of metrics with get-or-register semantics and
/// on-demand text exposition.
///
/// Registration takes the internal lock and may allocate; the returned
/// handles never do either. Metric names should follow the
/// `stems_<noun>_<unit/total>` scheme in `docs/OBSERVABILITY.md`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn get_or_register(
        &self,
        name: &str,
        label: Option<(&'static str, &str)>,
        make: impl FnOnce() -> Metric,
        want: &'static str,
    ) -> Metric {
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && e.label.as_ref().map(|(k, v)| (*k, v.as_str())) == label)
        {
            assert!(
                e.metric.type_name() == want,
                "metric {name:?} already registered as a {} (wanted a {want})",
                e.metric.type_name()
            );
            return e.metric.clone();
        }
        let metric = make();
        entries.push(Entry {
            name: name.to_string(),
            label: label.map(|(k, v)| (k, v.to_string())),
            metric: metric.clone(),
        });
        metric
    }

    /// Returns the counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_register(name, None, || Metric::Counter(Counter::new()), "counter") {
            Metric::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// [`MetricsRegistry::counter`] with the static label dimension
    /// (e.g. `("kind", "checksum_mismatch")`). Each distinct label
    /// value is its own counter.
    pub fn counter_with(&self, name: &str, key: &'static str, value: &str) -> Counter {
        match self.get_or_register(
            name,
            Some((key, value)),
            || Metric::Counter(Counter::new()),
            "counter",
        ) {
            Metric::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Returns the gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_register(name, None, || Metric::Gauge(Gauge::new()), "gauge") {
            Metric::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Returns the histogram named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_register(
            name,
            None,
            || Metric::Histogram(Histogram::new()),
            "histogram",
        ) {
            Metric::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Renders every metric as exposition text lines, in registration
    /// order.
    pub fn render(&self, out: &mut String) {
        self.render_labeled(out, &[]);
    }

    /// [`MetricsRegistry::render`] with extra labels appended to every
    /// line — how a per-tenant registry is rendered into a combined
    /// scrape with `session="N"` attached.
    pub fn render_labeled(&self, out: &mut String, extra: &[(&str, &str)]) {
        let entries = self.entries.lock().unwrap();
        let mut labels: Vec<(&str, &str)> = Vec::with_capacity(extra.len() + 2);
        for e in entries.iter() {
            labels.clear();
            if let Some((k, v)) = &e.label {
                labels.push((k, v.as_str()));
            }
            labels.extend_from_slice(extra);
            match &e.metric {
                Metric::Counter(c) => expo::write_sample(out, &e.name, &labels, c.get() as f64),
                Metric::Gauge(g) => expo::write_sample(out, &e.name, &labels, g.get() as f64),
                Metric::Histogram(h) => render_histogram(out, &e.name, &labels, h),
            }
        }
    }

    /// Renders every metric as one flat JSON object — `{"sample key":
    /// value, ...}` where the key is the exposition line's name+labels.
    /// Histograms contribute `_count`/`_sum`/`_max`/`_p50`/`_p90`/`_p99`
    /// keys. This is the `--obs-json` dump format next to
    /// `BENCH_harness.json`.
    pub fn render_json(&self, out: &mut String) {
        let entries = self.entries.lock().unwrap();
        out.push_str("{\n");
        let mut first = true;
        let push = |out: &mut String, key: &str, value: f64, first: &mut bool| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str("  \"");
            // Sample keys contain only metric-name characters plus the
            // label block; escape quotes/backslashes defensively.
            for ch in key.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    other => out.push(other),
                }
            }
            out.push_str("\": ");
            expo::write_value(out, value);
        };
        for e in entries.iter() {
            let key_base = match &e.label {
                None => e.name.clone(),
                Some((k, v)) => {
                    let mut s = format!("{}{{{}=\"", e.name, k);
                    expo::write_escaped_label_value(&mut s, v);
                    s.push_str("\"}");
                    s
                }
            };
            match &e.metric {
                Metric::Counter(c) => push(out, &key_base, c.get() as f64, &mut first),
                Metric::Gauge(g) => push(out, &key_base, g.get() as f64, &mut first),
                Metric::Histogram(h) => {
                    push(
                        out,
                        &format!("{key_base}_count"),
                        h.count() as f64,
                        &mut first,
                    );
                    push(out, &format!("{key_base}_sum"), h.sum() as f64, &mut first);
                    push(out, &format!("{key_base}_max"), h.max() as f64, &mut first);
                    push(
                        out,
                        &format!("{key_base}_p50"),
                        h.quantile(0.50),
                        &mut first,
                    );
                    push(
                        out,
                        &format!("{key_base}_p90"),
                        h.quantile(0.90),
                        &mut first,
                    );
                    push(
                        out,
                        &format!("{key_base}_p99"),
                        h.quantile(0.99),
                        &mut first,
                    );
                }
            }
        }
        out.push_str("\n}\n");
    }
}

/// One histogram renders as `_count`/`_sum`/`_max` lines, three
/// `{quantile="..."}` summary lines, and cumulative `_bucket{le="..."}`
/// lines up to the highest non-empty bucket (plus `+Inf`).
fn render_histogram(out: &mut String, name: &str, labels: &[(&str, &str)], h: &Histogram) {
    let counts = h.snapshot();
    let total: u64 = counts.iter().sum();
    expo::write_sample(out, &format!("{name}_count"), labels, total as f64);
    expo::write_sample(out, &format!("{name}_sum"), labels, h.sum() as f64);
    expo::write_sample(out, &format!("{name}_max"), labels, h.max() as f64);
    for (q, qs) in [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")] {
        let mut qlabels: Vec<(&str, &str)> = labels.to_vec();
        qlabels.push(("quantile", qs));
        expo::write_sample(out, name, &qlabels, h.quantile(q));
    }
    let highest = counts.iter().rposition(|&n| n > 0);
    let mut cumulative = 0u64;
    if let Some(highest) = highest {
        for (i, &n) in counts.iter().enumerate().take(highest + 1) {
            cumulative += n;
            let le = Histogram::bucket_bounds(i).1.to_string();
            let mut blabels: Vec<(&str, &str)> = labels.to_vec();
            blabels.push(("le", le.as_str()));
            expo::write_sample(out, &format!("{name}_bucket"), &blabels, cumulative as f64);
        }
    }
    let mut blabels: Vec<(&str, &str)> = labels.to_vec();
    blabels.push(("le", "+Inf"));
    expo::write_sample(out, &format!("{name}_bucket"), &blabels, total as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // The satellite bucket-boundary suite: 0 is its own bucket,
        // each power of two starts a new bucket, and the value just
        // below it closes the previous one.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        for shift in 1..63u32 {
            let boundary = 1u64 << shift;
            assert_eq!(
                Histogram::bucket_index(boundary),
                shift as usize + 1,
                "2^{shift} must open bucket {}",
                shift + 1
            );
            assert_eq!(
                Histogram::bucket_index(boundary - 1),
                shift as usize,
                "2^{shift}-1 must close bucket {shift}"
            );
            let (lo, hi) = Histogram::bucket_bounds(shift as usize + 1);
            assert_eq!(lo, boundary);
            if shift < 62 {
                assert_eq!(hi, (boundary << 1) - 1);
            }
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        assert_eq!(Histogram::bucket_bounds(HISTOGRAM_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn every_bucket_contains_its_own_bounds() {
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_index(lo), i, "low bound of bucket {i}");
            assert_eq!(Histogram::bucket_index(hi), i, "high bound of bucket {i}");
        }
    }

    #[test]
    fn histogram_tracks_count_sum_max() {
        let h = Histogram::new();
        assert_eq!((h.count(), h.sum(), h.max()), (0, 0, 0));
        for v in [0, 1, 7, 8, 1000, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 2016);
        assert_eq!(h.max(), 1000);
        let counts = h.snapshot();
        assert_eq!(counts[0], 1); // 0
        assert_eq!(counts[1], 1); // 1
        assert_eq!(counts[3], 1); // 7 in [4,8)
        assert_eq!(counts[4], 1); // 8 in [8,16)
        assert_eq!(counts[10], 2); // 1000 in [512,1024)
    }

    #[test]
    fn quantile_estimates_land_inside_the_right_bucket() {
        // The satellite quantile-estimate suite. 100 samples: 50 at 10,
        // 40 at 100, 10 at 5000.
        let h = Histogram::new();
        for _ in 0..50 {
            h.observe(10);
        }
        for _ in 0..40 {
            h.observe(100);
        }
        for _ in 0..10 {
            h.observe(5000);
        }
        let in_bucket_of = |q: f64, v: u64| {
            let est = h.quantile(q);
            let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_index(v));
            assert!(
                est >= lo as f64 && est <= hi as f64,
                "p{q}: estimate {est} outside bucket [{lo}, {hi}] of {v}"
            );
        };
        in_bucket_of(0.50, 10);
        in_bucket_of(0.90, 100);
        in_bucket_of(0.99, 5000);
        // Degenerate and boundary quantiles stay sane.
        assert_eq!(Histogram::new().quantile(0.5), 0.0);
        assert!(h.quantile(0.0) >= 8.0 && h.quantile(0.0) <= 16.0);
        // p100 is clamped by the exact recorded max, not the bucket's
        // upper bound.
        assert!(h.quantile(1.0) <= 5000.0);
        // A single-value histogram estimates that value's bucket
        // regardless of q, clamped by max.
        let one = Histogram::new();
        one.observe(12);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let est = one.quantile(q);
            assert!((8.0..=12.0).contains(&est), "q={q} est={est}");
        }
    }

    #[test]
    fn counter_hammer_from_many_threads_totals_exactly() {
        // The satellite concurrent-counter test: N threads, exact total.
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 100_000;
        let reg = MetricsRegistry::new();
        let counter = reg.counter("stems_hammer_total");
        let hist = reg.histogram("stems_hammer_values");
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let counter = counter.clone();
                let hist = hist.clone();
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        counter.inc();
                        hist.observe(t as u64 * PER_THREAD + i);
                    }
                });
            }
        });
        assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
        assert_eq!(hist.count(), THREADS as u64 * PER_THREAD);
        assert_eq!(hist.max(), THREADS as u64 * PER_THREAD - 1);
        // The same name resolves to the same counter afterwards.
        assert_eq!(reg.counter("stems_hammer_total").get(), counter.get());
    }

    #[test]
    fn registry_get_or_register_shares_and_labels_separate() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("stems_x_total");
        let b = reg.counter("stems_x_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let io = reg.counter_with("stems_wire_errors_total", "kind", "io");
        let crc = reg.counter_with("stems_wire_errors_total", "kind", "checksum_mismatch");
        io.inc();
        crc.add(5);
        assert_eq!(
            reg.counter_with("stems_wire_errors_total", "kind", "io")
                .get(),
            1
        );
        assert_eq!(crc.get(), 5);
        let g = reg.gauge("stems_sessions_open");
        g.set(4);
        g.add(-1);
        assert_eq!(reg.gauge("stems_sessions_open").get(), 3);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_conflicts_are_programmer_errors() {
        let reg = MetricsRegistry::new();
        reg.counter("stems_x_total");
        reg.histogram("stems_x_total");
    }

    #[test]
    fn exposition_renders_in_registration_order_with_labels() {
        let reg = MetricsRegistry::new();
        reg.counter("stems_a_total").add(7);
        reg.gauge("stems_b").set(-2);
        reg.counter_with("stems_c_total", "kind", "io").inc();
        let h = reg.histogram("stems_d_nanos");
        h.observe(3);
        h.observe(300);
        let mut out = String::new();
        reg.render(&mut out);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "stems_a_total 7");
        assert_eq!(lines[1], "stems_b -2");
        assert_eq!(lines[2], "stems_c_total{kind=\"io\"} 1");
        assert!(out.contains("stems_d_nanos_count 2"));
        assert!(out.contains("stems_d_nanos_sum 303"));
        assert!(out.contains("stems_d_nanos_max 300"));
        assert!(out.contains("stems_d_nanos{quantile=\"0.5\"}"));
        assert!(out.contains("stems_d_nanos_bucket{le=\"+Inf\"} 2"));
        // Extra labels attach to every line, after the static one.
        let mut labeled = String::new();
        reg.render_labeled(&mut labeled, &[("session", "9")]);
        assert!(labeled.contains("stems_a_total{session=\"9\"} 7"));
        assert!(labeled.contains("stems_c_total{kind=\"io\",session=\"9\"} 1"));
    }

    #[test]
    fn json_dump_is_flat_and_parseable_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("stems_a_total").add(7);
        reg.histogram("stems_h_nanos").observe(100);
        let mut out = String::new();
        reg.render_json(&mut out);
        assert!(out.starts_with("{\n"));
        assert!(out.ends_with("\n}\n"));
        assert!(out.contains("\"stems_a_total\": 7"));
        assert!(out.contains("\"stems_h_nanos_count\": 1"));
        assert!(out.contains("\"stems_h_nanos_max\": 100"));
        assert!(!out.contains(",\n\n"), "no dangling comma");
    }
}
