//! The per-session observation hook `stems_core::Session` calls around
//! each chunk.
//!
//! A [`SessionObs`] bundles pre-registered metric handles with a
//! caller-supplied clock. `Session::run_chunk` brackets the simulation
//! with [`SessionObs::begin_chunk`] / [`SessionObs::end_chunk`]; the
//! hook reads the clock twice and bumps atomics — it never touches the
//! simulation state, so enabling observation cannot perturb results
//! (the golden-counter tests pin this).
//!
//! One hook can feed several registries at once: the server registers
//! both the per-tenant registry (scraped with `session="N"` labels)
//! and the process-wide one, so a single `end_chunk` updates both.
//! Optionally a slow-chunk threshold routes outliers into an
//! [`EventRing`].

use std::fmt;
use std::sync::Arc;

use stems_types::clock::SharedClock;

use crate::events::{Event, EventKind, EventRing};
use crate::metrics::{Counter, Histogram, MetricsRegistry};

/// Metric handles registered against one target registry.
#[derive(Clone)]
struct Target {
    accesses: Counter,
    chunks: Counter,
    chunk_nanos: Histogram,
    chunk_records: Histogram,
    slow_chunks: Counter,
}

impl Target {
    fn register(reg: &MetricsRegistry) -> Target {
        Target {
            accesses: reg.counter("stems_accesses_total"),
            chunks: reg.counter("stems_chunks_total"),
            chunk_nanos: reg.histogram("stems_chunk_nanos"),
            chunk_records: reg.histogram("stems_chunk_records"),
            slow_chunks: reg.counter("stems_slow_chunks_total"),
        }
    }
}

struct SlowChunk {
    threshold_nanos: u64,
    session: u32,
    ring: Arc<EventRing>,
}

/// Builder for [`SessionObs`]; see [`SessionObs::builder`].
pub struct SessionObsBuilder {
    clock: SharedClock,
    targets: Vec<Target>,
    slow: Option<SlowChunk>,
}

impl SessionObsBuilder {
    /// Registers this hook's metrics (`stems_accesses_total`,
    /// `stems_chunks_total`, `stems_chunk_nanos`,
    /// `stems_chunk_records`, `stems_slow_chunks_total`) in `reg` and
    /// adds it as an update target. May be called more than once to
    /// fan updates out to several registries.
    pub fn registry(mut self, reg: &MetricsRegistry) -> SessionObsBuilder {
        self.targets.push(Target::register(reg));
        self
    }

    /// Emits a [`EventKind::SlowChunk`] event for session `session`
    /// into `ring` whenever a chunk exceeds `threshold_nanos`, and
    /// bumps `stems_slow_chunks_total`. A zero threshold disables the
    /// check.
    pub fn slow_chunk(
        mut self,
        threshold_nanos: u64,
        session: u32,
        ring: Arc<EventRing>,
    ) -> SessionObsBuilder {
        self.slow = if threshold_nanos == 0 {
            None
        } else {
            Some(SlowChunk {
                threshold_nanos,
                session,
                ring,
            })
        };
        self
    }

    /// Finishes the hook.
    pub fn build(self) -> SessionObs {
        SessionObs {
            clock: self.clock,
            targets: self.targets.into(),
            slow: self.slow.map(Arc::new),
        }
    }
}

/// The chunk-observation hook. Cheap to clone (shared `Arc` handles);
/// every clone updates the same metrics.
#[derive(Clone)]
pub struct SessionObs {
    clock: SharedClock,
    targets: Arc<[Target]>,
    slow: Option<Arc<SlowChunk>>,
}

impl SessionObs {
    /// Starts building a hook around `clock`. Time only ever comes
    /// from this clock, so tests drive the hook deterministically with
    /// a `ManualClock`.
    pub fn builder(clock: SharedClock) -> SessionObsBuilder {
        SessionObsBuilder {
            clock,
            targets: Vec::new(),
            slow: None,
        }
    }

    /// Marks the start of a chunk; returns the clock reading to hand
    /// back to [`SessionObs::end_chunk`].
    pub fn begin_chunk(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// Records a finished chunk of `records` accesses that started at
    /// `started` (from [`SessionObs::begin_chunk`]).
    pub fn end_chunk(&self, started: u64, records: usize) {
        let nanos = self.clock.now_nanos().saturating_sub(started);
        let slow = self
            .slow
            .as_ref()
            .filter(|s| nanos >= s.threshold_nanos)
            .is_some();
        for t in self.targets.iter() {
            t.accesses.add(records as u64);
            t.chunks.inc();
            t.chunk_nanos.observe(nanos);
            t.chunk_records.observe(records as u64);
            if slow {
                t.slow_chunks.inc();
            }
        }
        if slow {
            let s = self.slow.as_ref().unwrap();
            s.ring.push(Event {
                nanos: self.clock.now_nanos(),
                kind: EventKind::SlowChunk {
                    session: s.session,
                    nanos,
                    records,
                },
            });
        }
    }
}

impl fmt::Debug for SessionObs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionObs")
            .field("targets", &self.targets.len())
            .field(
                "slow_chunk_threshold_nanos",
                &self.slow.as_ref().map(|s| s.threshold_nanos),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_types::clock::ManualClock;

    fn manual() -> (Arc<ManualClock>, SharedClock) {
        let clock = Arc::new(ManualClock::new());
        let shared: SharedClock = clock.clone();
        (clock, shared)
    }

    #[test]
    fn end_chunk_updates_every_target() {
        let (clock, shared) = manual();
        let tenant = MetricsRegistry::new();
        let process = MetricsRegistry::new();
        let obs = SessionObs::builder(shared)
            .registry(&tenant)
            .registry(&process)
            .build();
        let t0 = obs.begin_chunk();
        clock.advance_nanos(2_000);
        obs.end_chunk(t0, 128);
        for reg in [&tenant, &process] {
            assert_eq!(reg.counter("stems_accesses_total").get(), 128);
            assert_eq!(reg.counter("stems_chunks_total").get(), 1);
            assert_eq!(reg.histogram("stems_chunk_nanos").sum(), 2_000);
            assert_eq!(reg.histogram("stems_chunk_records").max(), 128);
            assert_eq!(reg.counter("stems_slow_chunks_total").get(), 0);
        }
    }

    #[test]
    fn slow_chunks_cross_into_the_ring() {
        let (clock, shared) = manual();
        let reg = MetricsRegistry::new();
        let ring = Arc::new(EventRing::new(4));
        let obs = SessionObs::builder(shared)
            .registry(&reg)
            .slow_chunk(1_000, 9, ring.clone())
            .build();
        // Fast chunk: no event.
        let t0 = obs.begin_chunk();
        clock.advance_nanos(999);
        obs.end_chunk(t0, 10);
        assert!(ring.is_empty());
        // At-threshold chunk: event + counter.
        let t1 = obs.begin_chunk();
        clock.advance_nanos(1_000);
        obs.end_chunk(t1, 20);
        assert_eq!(reg.counter("stems_slow_chunks_total").get(), 1);
        let events = ring.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].kind,
            EventKind::SlowChunk {
                session: 9,
                nanos: 1_000,
                records: 20
            }
        );
    }

    #[test]
    fn clones_share_handles_and_zero_threshold_disables() {
        let (clock, shared) = manual();
        let reg = MetricsRegistry::new();
        let ring = Arc::new(EventRing::new(4));
        let obs = SessionObs::builder(shared)
            .registry(&reg)
            .slow_chunk(0, 1, ring.clone())
            .build();
        let clone = obs.clone();
        let t0 = clone.begin_chunk();
        clock.advance_nanos(u64::MAX / 2);
        clone.end_chunk(t0, 5);
        assert_eq!(reg.counter("stems_chunks_total").get(), 1);
        assert!(ring.is_empty(), "zero threshold disables slow-chunk events");
        let dbg = format!("{obs:?}");
        assert!(dbg.contains("SessionObs"));
    }
}
