//! Plain-text table rendering for experiment output.

/// A simple fixed-width text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    s.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    s.push_str(&format!("  {:>w$}", c, w = widths[i]));
                }
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a signed percentage (speedups).
pub fn pct_signed(x: f64) -> String {
    format!("{:+.1}%", x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "10000".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("alpha"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new("x", &["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.3149), "31.5%");
        assert_eq!(pct_signed(31.0), "+31.0%");
        assert_eq!(pct_signed(-2.5), "-2.5%");
    }
}
