//! Experiment plumbing: session construction and per-workload runs.

use std::path::Path;

use stems_core::engine::Counters;
use stems_core::{PrefetchConfig, Session, SessionBuilder};
use stems_memsim::SystemConfig;
use stems_timing::{SessionTiming, TimingParams, TimingReport};
use stems_trace::{Trace, TraceReader, TraceStoreError};
use stems_workloads::Workload;

// The predictor registry lives in the core session API now; re-exported
// so harness callers keep their `runner::Predictor` path.
pub use stems_core::session::Predictor;

/// Scale/seed/parallelism settings shared by every experiment (parsed
/// from argv).
///
/// Cheap to clone: the only non-`Copy` field is the shared `Arc<str>`
/// behind `--trace-dir` (which used to be a `Box::leak`'d
/// `&'static str` to keep `Settings: Copy`; repeated parsing no longer
/// leaks).
#[derive(Clone, Debug, PartialEq)]
pub struct Settings {
    /// Footprint scale (1.0 = evaluation size).
    pub scale: f64,
    /// Workload generator seed.
    pub seed: u64,
    /// Worker threads for sharding experiment cells (0 = all cores).
    pub threads: usize,
    /// When set, workload traces are replayed from captured store files
    /// in this directory (`<dir>/<workload>.stems`, as written by
    /// `tracegen capture-all`) instead of being regenerated.
    pub trace_dir: Option<std::sync::Arc<str>>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            scale: 1.0,
            seed: 2009,
            threads: 0,
            trace_dir: None,
        }
    }
}

impl Settings {
    /// Parses `--scale <f>`, `--seed <n>`, `--threads <n>`, and
    /// `--trace-dir <dir>` from an argument list; unknown arguments are
    /// ignored.
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut s = Settings::default();
        let args: Vec<String> = args.into_iter().collect();
        for i in 0..args.len() {
            match args[i].as_str() {
                "--scale" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        s.scale = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        s.seed = v;
                    }
                }
                "--threads" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        s.threads = v;
                    }
                }
                "--trace-dir" => {
                    if let Some(v) = args.get(i + 1) {
                        s.trace_dir = Some(std::sync::Arc::from(v.as_str()));
                    }
                }
                _ => {}
            }
        }
        s
    }

    /// Parses from the process arguments.
    pub fn from_env() -> Self {
        Settings::from_args(std::env::args().skip(1))
    }

    /// The worker count to actually use: `threads`, or every available
    /// core when `threads` is 0.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Maps `f` over `items` on `threads` workers, returning results in input
/// order regardless of which worker computed what.
///
/// Work distribution is a single shared atomic cursor — no queues, no
/// work stealing — so cells are claimed in index order and the only
/// nondeterminism is *where* a cell runs, never its input or its slot in
/// the output. Each worker buffers `(index, result)` locally; the caller
/// reassembles by index, so outputs are byte-identical to a serial run.
pub fn parallel_map<I: Sync, T: Send>(
    items: &[I],
    threads: usize,
    f: impl Fn(&I) -> T + Sync,
) -> Vec<T> {
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let cursor = &cursor;
        let f = &f;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, t) in h.join().expect("worker thread panicked") {
                slots[i] = Some(t);
            }
        }
    });
    slots
        .into_iter()
        .map(|x| x.expect("cursor visits every index"))
        .collect()
}

/// The system configuration for an experiment scale: the L2 shrinks with
/// the workload footprints so the footprint-to-cache ratio — which decides
/// whether repeated traversals still miss off chip — matches the paper's
/// 8MB L2 against its full-size working sets.
pub fn system_config(scale: f64) -> SystemConfig {
    let mut sys = SystemConfig::default();
    if scale < 1.0 {
        let target = (sys.l2.size_bytes as f64 * scale) as u64;
        let mut size = sys.l2.size_bytes;
        while size / 2 >= target.max(64 * 1024) {
            size /= 2;
        }
        sys.l2.size_bytes = size;
        // Keep the L1 no larger than half the L2.
        while sys.l1.size_bytes * 2 > sys.l2.size_bytes {
            sys.l1.size_bytes /= 2;
        }
    }
    sys
}

/// The prefetcher configuration a workload uses (Section 4.3: lookahead 8
/// commercial / 12 scientific).
pub fn prefetch_config(workload: Workload) -> PrefetchConfig {
    if workload.is_scientific() {
        PrefetchConfig::scientific()
    } else {
        PrefetchConfig::commercial()
    }
}

/// The standard per-workload session: the workload's prefetch
/// configuration and coherence-invalidation injection, with `predictor`
/// selected via the core factory. Every experiment that doesn't sweep a
/// knob starts from this builder.
pub fn session_builder(
    workload: Workload,
    predictor: Predictor,
    sys: &SystemConfig,
) -> SessionBuilder {
    Session::builder(sys)
        .prefetch(&prefetch_config(workload))
        .predictor(predictor)
        .invalidations(
            workload.invalidation_rate(),
            0xC0FFEE ^ workload.name().len() as u64,
        )
}

/// The remote twin of [`session_builder`]: the `OpenRequest` that makes
/// a `stems-server` tenant session configured identically to the local
/// one, so streamed counters are comparable byte-for-byte. Kept next to
/// `session_builder` so the two configurations cannot drift apart.
pub fn remote_open_request(
    workload: Workload,
    predictor: Predictor,
    sys: &SystemConfig,
) -> stems_core::protocol::OpenRequest {
    stems_core::protocol::OpenRequest {
        system: sys.clone(),
        prefetch: prefetch_config(workload),
        predictor,
        invalidations: Some((
            workload.invalidation_rate(),
            0xC0FFEE ^ workload.name().len() as u64,
        )),
    }
}

/// Runs `predictor` over `trace` and returns the coverage counters, with
/// the workload's coherence-invalidation injection enabled.
pub fn run_coverage(
    workload: Workload,
    predictor: Predictor,
    trace: &Trace,
    sys: &SystemConfig,
) -> Counters {
    session_builder(workload, predictor, sys).run(trace)
}

/// Runs `predictor` over `trace` with timing and returns the report.
pub fn run_timing(
    workload: Workload,
    predictor: Predictor,
    trace: &Trace,
    sys: &SystemConfig,
) -> TimingReport {
    session_builder(workload, predictor, sys)
        .timing(&TimingParams::from_system(sys))
        .run(trace)
}

/// Loads one workload's trace for `settings`: from the captured store
/// file under `--trace-dir` when set (see `tracegen capture-all`),
/// otherwise by running the generator. Figure code needs random access
/// to the whole trace, so store files are materialized here; streaming
/// replay for coverage runs is [`replay_coverage`].
pub fn load_trace(workload: Workload, settings: &Settings) -> Trace {
    match settings.trace_dir.as_deref() {
        Some(dir) => {
            let path = Path::new(dir).join(stems_workloads::trace_file_name(workload));
            TraceReader::open(&path)
                .and_then(TraceReader::read_to_trace)
                .unwrap_or_else(|e| {
                    panic!(
                        "cannot replay {workload} from {}: {e}\n\
                         (capture the corpus first: tracegen capture-all {dir} \
                         --scale {} --seed {})",
                        path.display(),
                        settings.scale,
                        settings.seed
                    )
                })
        }
        None => workload.generate_scaled(settings.scale, settings.seed),
    }
}

/// Generates (or, under `--trace-dir`, replays) every workload's trace
/// in parallel, preserving order.
pub fn generate_traces(settings: Settings) -> Vec<(Workload, Trace)> {
    let workloads = Workload::all();
    let traces = parallel_map(&workloads, settings.effective_threads(), |w| {
        load_trace(*w, &settings)
    });
    workloads.into_iter().zip(traces).collect()
}

/// Streams a captured trace store through `predictor` with `workload`'s
/// standard session (config + invalidation injection) and returns the
/// finalized counters plus the number of accesses replayed. Memory
/// stays O(frame): the file is never materialized.
pub fn replay_coverage<P: AsRef<Path>>(
    workload: Workload,
    predictor: Predictor,
    path: P,
    sys: &SystemConfig,
) -> Result<(Counters, u64), TraceStoreError> {
    let mut reader = TraceReader::open(path)?;
    let mut session = session_builder(workload, predictor, sys).build();
    let fed = session.replay(&mut reader)?;
    Ok((session.finalize(), fed))
}

/// Runs `f` for every workload in parallel, preserving order.
pub fn per_workload<T: Send>(
    settings: Settings,
    f: impl Fn(Workload, &Trace) -> T + Sync,
) -> Vec<(Workload, T)> {
    let threads = settings.effective_threads();
    let cells = generate_traces(settings);
    let results = parallel_map(&cells, threads, |(w, trace)| f(*w, trace));
    cells.into_iter().map(|(w, _)| w).zip(results).collect()
}

/// Runs every workload × predictor cell in parallel, returning, per
/// workload, the results in `predictors` order.
///
/// This is the finest-grained sharding the figures support: a slow cell
/// (say STeMS on tpcc) no longer serializes behind its workload's other
/// predictors, so the harness scales past `min(cores, 10)`.
pub fn per_workload_predictor<T: Send>(
    settings: Settings,
    predictors: &[Predictor],
    f: impl Fn(Workload, &Trace, Predictor) -> T + Sync,
) -> Vec<(Workload, Vec<T>)> {
    let threads = settings.effective_threads();
    let traces = generate_traces(settings);
    let cells: Vec<(usize, Predictor)> = (0..traces.len())
        .flat_map(|wi| predictors.iter().map(move |&p| (wi, p)))
        .collect();
    let flat = parallel_map(&cells, threads, |&(wi, p)| {
        let (w, trace) = &traces[wi];
        f(*w, trace, p)
    });
    let mut flat = flat.into_iter();
    traces
        .into_iter()
        .map(|(w, _)| (w, flat.by_ref().take(predictors.len()).collect()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_parse() {
        let s = Settings::from_args(
            ["--scale", "0.25", "--seed", "7", "--threads", "3", "--junk"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(s.scale, 0.25);
        assert_eq!(s.seed, 7);
        assert_eq!(s.threads, 3);
        assert_eq!(s.effective_threads(), 3);
        let d = Settings::from_args(std::iter::empty());
        assert_eq!(d, Settings::default());
        assert!(d.effective_threads() >= 1);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = parallel_map(&items, 1, |&x| x * x);
        for threads in [2, 3, 8, 64] {
            let parallel = parallel_map(&items, threads, |&x| x * x);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
        let empty: Vec<u64> = parallel_map(&[] as &[u64], 4, |&x| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn per_workload_predictor_groups_in_order() {
        let settings = Settings {
            scale: 0.002,
            seed: 1,
            threads: 4,
            ..Settings::default()
        };
        let predictors = [Predictor::None, Predictor::Stride];
        let results = per_workload_predictor(settings, &predictors, |_, trace, p| (p, trace.len()));
        assert_eq!(results.len(), 10);
        for (_, cells) in &results {
            assert_eq!(cells.len(), 2);
            assert_eq!(cells[0].0, Predictor::None);
            assert_eq!(cells[1].0, Predictor::Stride);
            assert!(cells[0].1 > 0);
        }
    }

    #[test]
    fn config_selection_follows_category() {
        assert_eq!(prefetch_config(Workload::Em3d).lookahead, 12);
        assert_eq!(prefetch_config(Workload::Db2).lookahead, 8);
    }

    #[test]
    fn per_workload_runs_all_in_order() {
        let settings = Settings {
            scale: 0.002,
            seed: 1,
            threads: 0,
            ..Settings::default()
        };
        let results = per_workload(settings, |_, trace| trace.len());
        assert_eq!(results.len(), 10);
        assert_eq!(results[0].0, Workload::Apache);
        assert!(results.iter().all(|(_, len)| *len > 0));
    }
}
