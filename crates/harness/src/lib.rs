//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (see DESIGN.md §4 for the experiment index).
//!
//! Each figure has a binary (`cargo run --release -p stems-harness --bin
//! fig9`) accepting `--scale <f>` (footprint scale, default 1.0) and
//! `--seed <n>`; `--bin all` runs the complete evaluation.

pub mod ablate;
pub mod bench;
pub mod figs;
pub mod render;
pub mod runner;
pub mod stats;

pub use render::{pct, pct_signed, Table};
pub use runner::{
    load_trace, parallel_map, per_workload, per_workload_predictor, prefetch_config,
    replay_coverage, run_coverage, run_timing, session_builder, Predictor, Settings,
};
