//! Self-timing throughput harness behind `--bin bench_harness`.
//!
//! Measures the things future PRs need a trajectory for:
//!
//! * **per-access step throughput** — how fast the scalar
//!   `Session::step` wrapper drives each predictor through a trace
//!   (accesses/second, single thread);
//! * **batched throughput** — the same trace delivered through
//!   `Session::run_chunk`, the primary entry point, so every report
//!   carries a same-boot batch-vs-scalar A/B;
//! * **per-figure wall-clock** — end-to-end time of every reproduced
//!   table/figure, serial and parallel;
//! * **observation cost** — the batched run with and without a
//!   `SessionObs` hook attached, reported as a `hooked/plain` ratio so
//!   the observability layer's hot-path cost has a trajectory too
//!   (`docs/OBSERVABILITY.md` documents the ≤2% same-boot target).
//!
//! The report is written as `BENCH_harness.json` so successive PRs can
//! diff machine-readable numbers instead of re-reading logs. Peak memory
//! is a proxy read from `/proc/self/status` (`VmHWM`); the row is omitted
//! where that probe is unavailable (non-Linux or restricted sandboxes).

use std::sync::Arc;
use std::time::Instant;

use stems_obs::{MetricsRegistry, SessionObs};
use stems_trace::{SyncPolicy, Trace};
use stems_types::clock::MonotonicClock;
use stems_workloads::Workload;

use crate::figs;
use crate::runner::{
    replay_coverage, run_coverage, session_builder, system_config, Predictor, Settings,
};

/// One measured quantity in the report.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Metric name (e.g. `step_throughput/db2/stems`).
    pub name: String,
    /// Value in `unit`.
    pub value: f64,
    /// Unit label (`accesses_per_sec`, `seconds`, `kb`, `x`).
    pub unit: &'static str,
}

/// Peak resident set size in KB (Linux `VmHWM`), or `None` when the
/// probe is unavailable — `/proc/self/status` unreadable (non-Linux,
/// restricted sandboxes) or the `VmHWM` line absent/unparseable. Callers
/// must omit the row rather than report a fake `0`: a zero in the
/// trajectory would read as a regression fix on the next PR's diff.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find_map(|l| l.strip_prefix("VmHWM:"))?;
    line.trim().trim_end_matches(" kB").trim().parse().ok()
}

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Times `predictor` over `trace` access-by-access through the scalar
/// [`stems_core::Session::step`] wrapper, returning accesses per second
/// (single-threaded, best of `reps` runs to shed first-touch noise).
pub fn step_throughput(
    workload: Workload,
    predictor: Predictor,
    trace: &Trace,
    settings: &Settings,
    reps: usize,
) -> f64 {
    let sys = system_config(settings.scale);
    let mut best = f64::MAX;
    for _ in 0..reps.max(1) {
        let (_, secs) = time(|| {
            let mut session = session_builder(workload, predictor, &sys).build();
            for access in trace.iter() {
                session.step(access);
            }
            session.finalize()
        });
        best = best.min(secs);
    }
    trace.len() as f64 / best
}

/// Times `predictor` over `trace` through the batched
/// [`stems_core::Session::run_chunk`] path (whole trace in one chunk) —
/// the scalar row's same-boot A/B partner.
pub fn batch_throughput(
    workload: Workload,
    predictor: Predictor,
    trace: &Trace,
    settings: &Settings,
    reps: usize,
) -> f64 {
    let sys = system_config(settings.scale);
    let mut best = f64::MAX;
    for _ in 0..reps.max(1) {
        let (_, secs) = time(|| run_coverage(workload, predictor, trace, &sys));
        best = best.min(secs);
    }
    trace.len() as f64 / best
}

/// Times streaming replay of `workload`'s persisted store through the
/// no-op predictor (so the number isolates decode + cache simulation,
/// not predictor work), returning accesses per second. The store is
/// written to a temp file for the measurement and removed afterwards.
pub fn trace_replay_throughput(
    workload: Workload,
    trace: &Trace,
    settings: &Settings,
    reps: usize,
) -> f64 {
    let sys = system_config(settings.scale);
    let path = std::env::temp_dir().join(format!(
        "stems_bench_{}_{}.stems",
        std::process::id(),
        workload.name().to_ascii_lowercase()
    ));
    let mut writer = stems_trace::TraceWriter::create(&path)
        .expect("create bench store in temp dir")
        .with_sync_policy(SyncPolicy::Never);
    writer
        .write_accesses(trace.as_slice())
        .and_then(|_| writer.finish())
        .expect("persist bench trace");
    drop(writer);
    let mut best = f64::MAX;
    for _ in 0..reps.max(1) {
        let (result, secs) = time(|| replay_coverage(workload, Predictor::None, &path, &sys));
        let (_, fed) = result.expect("replay the store just written");
        assert_eq!(fed, trace.len() as u64, "replay must feed the whole trace");
        best = best.min(secs);
    }
    let _ = std::fs::remove_file(&path);
    trace.len() as f64 / best
}

/// Times streaming replay of `workload`'s trace over a **loopback TCP
/// connection** to an in-process `stems-server`, through the no-op
/// predictor — [`trace_replay_throughput`]'s wire twin. The delta
/// between the two rows isolates framing + checksum + socket cost from
/// store decode + cache simulation, so a protocol regression shows up
/// here without moving the on-disk replay row.
pub fn wire_replay_throughput(
    workload: Workload,
    trace: &Trace,
    settings: &Settings,
    reps: usize,
) -> f64 {
    let sys = system_config(settings.scale);
    let mut store = Vec::new();
    let mut writer = stems_trace::TraceWriter::new(&mut store).expect("in-memory bench store");
    writer
        .write_accesses(trace.as_slice())
        .and_then(|_| writer.finish())
        .expect("encode bench trace");
    drop(writer);

    let server = stems_server::Server::bind("127.0.0.1:0", stems_server::ServerConfig::default())
        .expect("bind loopback bench server");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    let mut best = f64::MAX;
    {
        let mut client = stems_client::Client::connect(addr).expect("connect to bench server");
        let open = crate::runner::remote_open_request(workload, Predictor::None, &sys);
        for _ in 0..reps.max(1) {
            let (fed, secs) = time(|| {
                let session = client.open(&open).expect("open bench session");
                let mut reader =
                    stems_trace::TraceReader::new(store.as_slice()).expect("read bench store");
                let (fed, _) = client
                    .stream(session, &mut reader, 4)
                    .expect("stream bench trace");
                client.close(session).expect("close bench session");
                fed
            });
            assert_eq!(fed, trace.len() as u64, "stream must feed the whole trace");
            best = best.min(secs);
        }
        client.shutdown_server().expect("drain bench server");
    }
    handle
        .join()
        .expect("join bench server")
        .expect("server run");
    trace.len() as f64 / best
}

/// Measures the observability hook's same-boot cost on the batched hot
/// path: the whole trace fed in 4096-access chunks through a plain
/// `Session`, then again through one carrying a [`SessionObs`] hook,
/// interleaved across `reps` and best-of each. Returns `hooked / plain`
/// seconds — ~1.0 when the hook is cheap, >1 when it costs time. When
/// `registry` is given the hooked runs also fan out into it, so the
/// caller can dump exactly what the hook recorded
/// (`bench_harness --obs-json`).
pub fn obs_overhead(
    workload: Workload,
    predictor: Predictor,
    trace: &Trace,
    settings: &Settings,
    reps: usize,
    registry: Option<&MetricsRegistry>,
) -> f64 {
    const CHUNK: usize = 4096;
    let sys = system_config(settings.scale);
    // Always register into a scratch registry so the hooked arm pays
    // the real atomic-update cost even when the caller keeps no copy.
    let scratch = MetricsRegistry::new();
    let mut builder = SessionObs::builder(Arc::new(MonotonicClock::new())).registry(&scratch);
    if let Some(extra) = registry {
        builder = builder.registry(extra);
    }
    let hook = builder.build();
    let feed = |obs: Option<SessionObs>| {
        let mut session = session_builder(workload, predictor, &sys).build();
        if let Some(hook) = obs {
            session.set_obs(hook);
        }
        for chunk in trace.as_slice().chunks(CHUNK) {
            session.run_chunk(chunk);
        }
        session.finalize()
    };
    let mut plain_best = f64::MAX;
    let mut hooked_best = f64::MAX;
    for _ in 0..reps.max(1) {
        let (_, secs) = time(|| feed(None));
        plain_best = plain_best.min(secs);
        let (_, secs) = time(|| feed(Some(hook.clone())));
        hooked_best = hooked_best.min(secs);
    }
    hooked_best / plain_best.max(f64::MIN_POSITIVE)
}

/// Runs the full self-timing suite and returns the measurements.
pub fn run(settings: Settings) -> Vec<Measurement> {
    run_with_obs(settings, None)
}

/// [`run`] with an optional metrics registry: when given, the
/// observation-cost A/B's hooked runs record into it, so the caller
/// can write the hook's own view of the bench next to the report.
pub fn run_with_obs(settings: Settings, registry: Option<&MetricsRegistry>) -> Vec<Measurement> {
    let mut out = Vec::new();
    let reps = 3;
    // One commercial and one scientific workload bound the predictors'
    // behavior; measuring all ten would just repeat these two regimes.
    for w in [Workload::Db2, Workload::Em3d] {
        let (trace, gen_secs) = time(|| w.generate_scaled(settings.scale, settings.seed));
        out.push(Measurement {
            name: format!("tracegen/{}/wall", w.name()),
            value: gen_secs,
            unit: "seconds",
        });
        out.push(Measurement {
            name: format!("tracegen/{}/accesses", w.name()),
            value: trace.len() as f64,
            unit: "accesses",
        });
        for p in Predictor::all() {
            let rate = step_throughput(w, p, &trace, &settings, reps);
            out.push(Measurement {
                name: format!("step_throughput/{}/{}", w.name(), p.name()),
                value: rate,
                unit: "accesses_per_sec",
            });
            let rate = batch_throughput(w, p, &trace, &settings, reps);
            out.push(Measurement {
                name: format!("batch_throughput/{}/{}", w.name(), p.name()),
                value: rate,
                unit: "accesses_per_sec",
            });
        }
        // Streaming replay from the persisted store (PR 7): the same
        // trace decoded frame-by-frame from disk, so the trajectory
        // catches codec regressions separately from predictor ones.
        let rate = trace_replay_throughput(w, &trace, &settings, reps);
        out.push(Measurement {
            name: format!("trace_replay_throughput/{}", w.name()),
            value: rate,
            unit: "accesses_per_sec",
        });
        // The same trace pushed through the session service over
        // loopback TCP (PR 8): decode + framing + checksums + sockets.
        let rate = wire_replay_throughput(w, &trace, &settings, reps);
        out.push(Measurement {
            name: format!("wire_replay_throughput/{}", w.name()),
            value: rate,
            unit: "accesses_per_sec",
        });
        // Observation cost (PR 9): the same batched STeMS run with and
        // without a `SessionObs` hook attached, as a hooked/plain
        // wall-clock ratio. The design target is ≤2% same-boot overhead
        // (docs/OBSERVABILITY.md); `bench_check` gates the row loosely
        // (`--obs-max-overhead`, default 1.5) because a ratio of two
        // noisy CI timings is itself noisy. Unit `x`: like the probe
        // row below it never enters the throughput gate.
        let ratio = obs_overhead(w, Predictor::Stems, &trace, &settings, reps, registry);
        out.push(Measurement {
            name: format!("obs_overhead/{}", w.name()),
            value: ratio,
            unit: "x",
        });
        // PST probe pressure (PR 6): one deterministic STeMS run per
        // workload, reporting key probes issued against the pattern
        // sequence table per simulated access — the hot-path quantity
        // the open-addressed PST targets. Not a throughput row:
        // `bench_check` must skip it (unit gating), never gate on it.
        let sys = system_config(settings.scale);
        let mut session = session_builder(w, Predictor::Stems, &sys).build();
        session.run(&trace);
        let probes = session
            .pst_probes()
            .expect("a STeMS session reports PST probes");
        out.push(Measurement {
            name: format!("pst_probes_per_access/{}", w.name()),
            value: probes as f64 / trace.len().max(1) as f64,
            unit: "probes_per_access",
        });
    }
    for (name, f) in [
        ("table1", figs::table1 as fn(Settings) -> String),
        ("fig6", figs::fig6),
        ("fig7", figs::fig7),
        ("fig8", figs::fig8),
        ("fig9", figs::fig9),
        ("fig10", figs::fig10),
        ("naive_hybrid", figs::naive_hybrid),
        ("recon_stats", figs::recon_stats),
    ] {
        let (_, secs) = time(|| f(settings.clone()));
        out.push(Measurement {
            name: format!("figure/{name}/wall"),
            value: secs,
            unit: "seconds",
        });
    }
    // Emitted only where the probe works: an absent row means "not
    // measurable here", never a zero that would pollute the trajectory.
    if let Some(kb) = peak_rss_kb() {
        out.push(Measurement {
            name: "peak_rss".to_string(),
            value: kb as f64,
            unit: "kb",
        });
    }
    out
}

/// Renders measurements as the `BENCH_harness.json` document.
pub fn to_json(settings: Settings, measurements: &[Measurement]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"scale\": {},\n  \"seed\": {},\n  \"threads\": {},\n  \"measurements\": [\n",
        settings.scale,
        settings.seed,
        settings.effective_threads()
    ));
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 == measurements.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"value\": {:.3}, \"unit\": \"{}\"}}{comma}\n",
            m.name, m.value, m.unit
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Parses a report written by [`to_json`] back into `(name, value)`
/// pairs. This is a line-oriented reader of our own fixed writer format,
/// not a general JSON parser — each measurement sits on one line as
/// `{"name": "...", "value": N, "unit": "..."}`.
pub fn parse_report(json: &str) -> Vec<(String, f64)> {
    parse_report_units(json)
        .into_iter()
        .map(|(name, value, _)| (name, value))
        .collect()
}

/// [`parse_report`] keeping each row's unit label, so a gate can decide
/// what a number *is* (a throughput, a wall-clock, a diagnostic ratio)
/// instead of guessing from its name. Rows without a parseable unit
/// report an empty label rather than being dropped.
pub fn parse_report_units(json: &str) -> Vec<(String, f64, String)> {
    fn quoted_after<'a>(line: &'a str, field: &str) -> Option<&'a str> {
        let rest = &line[line.find(field)? + field.len()..];
        let open = rest.find('"')?;
        let close = rest[open + 1..].find('"')?;
        Some(&rest[open + 1..open + 1 + close])
    }
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name) = quoted_after(line, "\"name\":") else {
            continue;
        };
        let Some(value_at) = line.find("\"value\":") else {
            continue;
        };
        let value_str: String = line[value_at + 8..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect();
        let Ok(value) = value_str.parse::<f64>() else {
            continue;
        };
        let unit = quoted_after(line, "\"unit\":").unwrap_or("");
        out.push((name.to_string(), value, unit.to_string()));
    }
    out
}

/// Keeps only rows measured in `accesses_per_sec`: the regression gate's
/// input filter. Diagnostic rows (`pst_probes_per_access/...`, figure
/// wall-clocks, `peak_rss`) are skipped here rather than erroring inside
/// the gate — lower-is-better units would read a *win* as a regression.
pub fn throughput_rows(rows: &[(String, f64, String)]) -> Vec<(String, f64)> {
    rows.iter()
        .filter(|(_, _, unit)| unit == "accesses_per_sec")
        .map(|(name, value, _)| (name.clone(), *value))
        .collect()
}

/// Keeps only the `obs_overhead/...` ratio rows (unit `x`): the input
/// to `bench_check`'s absolute observability-overhead gate. Ratio rows
/// never pass [`throughput_rows`]'s unit filter — a slowdown ratio of a
/// ratio would be meaningless — so the gate extracts them separately
/// and compares each against a fixed ceiling instead of a baseline.
pub fn overhead_rows(rows: &[(String, f64, String)]) -> Vec<(String, f64)> {
    rows.iter()
        .filter(|(name, _, unit)| unit == "x" && name.starts_with("obs_overhead/"))
        .map(|(name, value, _)| (name.clone(), *value))
        .collect()
}

/// One step-throughput comparison between a baseline report and a fresh
/// run (see [`check_regressions`]).
#[derive(Clone, Debug)]
pub struct RegressionLine {
    /// Metric name (`step_throughput/...` or `batch_throughput/...`).
    pub name: String,
    /// Baseline accesses/second.
    pub baseline: f64,
    /// Current accesses/second.
    pub current: f64,
    /// `baseline / current` (>1 means slower than baseline).
    pub slowdown: f64,
    /// Whether the slowdown exceeds the allowed factor.
    pub failed: bool,
}

/// Compares every `step_throughput/` and `batch_throughput/` metric
/// present in both reports. A metric fails when the current run is more
/// than `max_slowdown`× slower than baseline — the tolerance is
/// deliberately generous (CI VMs are ±30% noisy run-to-run); the gate
/// exists to catch gross hot-path regressions, not to benchmark.
pub fn check_regressions(
    baseline: &[(String, f64)],
    current: &[(String, f64)],
    max_slowdown: f64,
) -> Vec<RegressionLine> {
    check_regressions_with(baseline, current, max_slowdown, max_slowdown)
}

/// [`check_regressions`] with an explicit (usually tighter) tolerance
/// for the STeMS rows: STeMS is the paper's headline predictor and the
/// repeated target of hot-path PRs, so its throughput gets a narrower
/// gate than the blanket order-of-magnitude tripwire — a regression that
/// quietly gives back the reconstruction-window or LRU wins should fail
/// CI even when it stays under the generic tolerance.
pub fn check_regressions_with(
    baseline: &[(String, f64)],
    current: &[(String, f64)],
    max_slowdown: f64,
    stems_max_slowdown: f64,
) -> Vec<RegressionLine> {
    let mut out = Vec::new();
    for (name, base) in baseline {
        let gated = name.starts_with("step_throughput/")
            || name.starts_with("batch_throughput/")
            || name.starts_with("trace_replay_throughput/")
            || name.starts_with("wire_replay_throughput/");
        if !gated || *base <= 0.0 {
            continue;
        }
        let Some((_, cur)) = current.iter().find(|(n, _)| n == name) else {
            continue;
        };
        let allowed = if name.ends_with("/STeMS") {
            stems_max_slowdown
        } else {
            max_slowdown
        };
        let slowdown = base / cur.max(f64::MIN_POSITIVE);
        out.push(RegressionLine {
            name: name.clone(),
            baseline: *base,
            current: *cur,
            slowdown,
            failed: slowdown > allowed,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_wellformed_json_shape() {
        let settings = Settings {
            scale: 0.002,
            seed: 1,
            ..Settings::default()
        };
        let ms = vec![
            Measurement {
                name: "a/b".into(),
                value: 1.5,
                unit: "seconds",
            },
            Measurement {
                name: "c".into(),
                value: 2.0,
                unit: "kb",
            },
        ];
        let json = to_json(settings, &ms);
        assert!(json.starts_with('{') && json.ends_with("}\n"));
        assert_eq!(json.matches("\"name\"").count(), 2);
        assert!(!json.contains(",\n  ]"), "no trailing comma before ]");
    }

    #[test]
    fn throughput_measurement_is_positive() {
        let settings = Settings {
            scale: 0.002,
            seed: 1,
            ..Settings::default()
        };
        let trace = Workload::Db2.generate_scaled(settings.scale, settings.seed);
        let rate = step_throughput(Workload::Db2, Predictor::None, &trace, &settings, 1);
        assert!(rate > 0.0);
        let batch = batch_throughput(Workload::Db2, Predictor::None, &trace, &settings, 1);
        assert!(batch > 0.0);
    }

    #[test]
    fn peak_rss_is_absent_or_positive() {
        // The probe either works (on Linux with /proc, VmHWM is a real
        // nonzero high-water mark) or reports None; it never fabricates
        // a zero row.
        if let Some(kb) = peak_rss_kb() {
            assert!(kb > 0, "VmHWM parsed as 0");
        }
    }

    #[test]
    fn parse_report_round_trips_to_json() {
        let settings = Settings {
            scale: 0.01,
            seed: 1,
            ..Settings::default()
        };
        let ms = vec![
            Measurement {
                name: "step_throughput/DB2/STeMS".into(),
                value: 1234567.891,
                unit: "accesses_per_sec",
            },
            Measurement {
                name: "figure/fig9/wall".into(),
                value: 0.25,
                unit: "seconds",
            },
        ];
        let parsed = parse_report(&to_json(settings, &ms));
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "step_throughput/DB2/STeMS");
        assert!((parsed[0].1 - 1234567.891).abs() < 1e-6);
        assert!((parsed[1].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn non_throughput_units_are_skipped_not_gated() {
        let settings = Settings {
            scale: 0.01,
            seed: 1,
            ..Settings::default()
        };
        let ms = vec![
            Measurement {
                name: "step_throughput/DB2/STeMS".into(),
                value: 1000.0,
                unit: "accesses_per_sec",
            },
            Measurement {
                name: "pst_probes_per_access/em3d".into(),
                value: 1.75,
                unit: "probes_per_access",
            },
            Measurement {
                name: "figure/fig9/wall".into(),
                value: 0.25,
                unit: "seconds",
            },
        ];
        let rows = parse_report_units(&to_json(settings, &ms));
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1].2, "probes_per_access");
        let gated = throughput_rows(&rows);
        assert_eq!(gated.len(), 1, "only the throughput row survives");
        assert_eq!(gated[0].0, "step_throughput/DB2/STeMS");
        // A probe-count *improvement* (fewer probes) must never read as
        // a throughput regression: the row does not reach the gate.
        let current = vec![
            ("step_throughput/DB2/STeMS".to_string(), 900.0),
            ("pst_probes_per_access/em3d".to_string(), 1.40),
        ];
        let lines = check_regressions(&gated, &current, 2.0);
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].failed);
    }

    #[test]
    fn regression_check_flags_only_gross_slowdowns() {
        let baseline = vec![
            ("step_throughput/DB2/STeMS".to_string(), 1000.0),
            ("step_throughput/DB2/TMS".to_string(), 1000.0),
            ("batch_throughput/DB2/TMS".to_string(), 1000.0),
            ("figure/fig9/wall".to_string(), 1.0), // not a throughput: ignored
        ];
        let current = vec![
            ("step_throughput/DB2/STeMS".to_string(), 500.0), // 2.0x: within tolerance
            ("step_throughput/DB2/TMS".to_string(), 300.0),   // 3.3x: regression
            ("batch_throughput/DB2/TMS".to_string(), 200.0),  // 5x: batch rows gated too
        ];
        let lines = check_regressions(&baseline, &current, 2.5);
        assert_eq!(lines.len(), 3);
        assert!(!lines[0].failed);
        assert!(lines[1].failed);
        assert!((lines[1].slowdown - 1000.0 / 300.0).abs() < 1e-9);
        assert!(lines[2].failed, "batch_throughput rows must be gated");
    }

    #[test]
    fn trace_replay_rows_are_gated() {
        let baseline = vec![("trace_replay_throughput/DB2".to_string(), 1000.0)];
        let slow = vec![("trace_replay_throughput/DB2".to_string(), 200.0)];
        let lines = check_regressions(&baseline, &slow, 2.5);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].failed, "a 5x replay slowdown must trip the gate");
    }

    #[test]
    fn wire_replay_rows_are_gated() {
        let baseline = vec![("wire_replay_throughput/DB2".to_string(), 1000.0)];
        let slow = vec![("wire_replay_throughput/DB2".to_string(), 200.0)];
        let lines = check_regressions(&baseline, &slow, 2.5);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].failed, "a 5x wire slowdown must trip the gate");
    }

    #[test]
    fn wire_replay_throughput_round_trips_over_loopback() {
        let settings = Settings {
            scale: 0.002,
            seed: 1,
            ..Settings::default()
        };
        let trace = Workload::Db2.generate_scaled(settings.scale, settings.seed);
        let rate = wire_replay_throughput(Workload::Db2, &trace, &settings, 1);
        assert!(rate > 0.0);
    }

    #[test]
    fn trace_replay_throughput_round_trips_and_cleans_up() {
        let settings = Settings {
            scale: 0.002,
            seed: 1,
            ..Settings::default()
        };
        let trace = Workload::Db2.generate_scaled(settings.scale, settings.seed);
        let rate = trace_replay_throughput(Workload::Db2, &trace, &settings, 1);
        assert!(rate > 0.0);
        let leftover =
            std::env::temp_dir().join(format!("stems_bench_{}_db2.stems", std::process::id()));
        assert!(!leftover.exists(), "bench must remove its temp store");
    }

    #[test]
    fn stems_rows_are_gated_tighter() {
        let baseline = vec![
            ("step_throughput/DB2/STeMS".to_string(), 1000.0),
            ("batch_throughput/em3d/STeMS".to_string(), 1000.0),
            ("step_throughput/DB2/TMS".to_string(), 1000.0),
        ];
        let current = vec![
            ("step_throughput/DB2/STeMS".to_string(), 450.0), // 2.2x
            ("batch_throughput/em3d/STeMS".to_string(), 600.0), // 1.7x
            ("step_throughput/DB2/TMS".to_string(), 450.0),   // 2.2x
        ];
        // Generic tolerance 2.5x passes TMS; the 2.0x STeMS tolerance
        // fails the step row but not the batch row.
        let lines = check_regressions_with(&baseline, &current, 2.5, 2.0);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].failed, "STeMS step row must use the tight gate");
        assert!(!lines[1].failed, "1.7x is within the STeMS gate");
        assert!(!lines[2].failed, "TMS keeps the generic tolerance");
        // The uniform entry point remains a blanket gate.
        assert!(check_regressions(&baseline, &current, 2.5)
            .iter()
            .all(|l| !l.failed));
    }

    #[test]
    fn obs_overhead_is_a_positive_ratio_and_feeds_the_registry() {
        let settings = Settings {
            scale: 0.002,
            seed: 1,
            ..Settings::default()
        };
        let trace = Workload::Db2.generate_scaled(settings.scale, settings.seed);
        let registry = MetricsRegistry::new();
        let ratio = obs_overhead(
            Workload::Db2,
            Predictor::None,
            &trace,
            &settings,
            1,
            Some(&registry),
        );
        assert!(ratio.is_finite() && ratio > 0.0);
        // One rep = one hooked run: the caller's registry saw exactly
        // the trace once, proving the A/B's hooked arm really observes.
        assert_eq!(
            registry.counter("stems_accesses_total").get(),
            trace.len() as u64
        );
        assert!(registry.counter("stems_chunks_total").get() > 0);
    }

    #[test]
    fn overhead_rows_are_extracted_and_never_enter_the_throughput_gate() {
        let settings = Settings {
            scale: 0.01,
            seed: 1,
            ..Settings::default()
        };
        let ms = vec![
            Measurement {
                name: "obs_overhead/DB2".into(),
                value: 1.02,
                unit: "x",
            },
            Measurement {
                name: "step_throughput/DB2/STeMS".into(),
                value: 1000.0,
                unit: "accesses_per_sec",
            },
        ];
        let rows = parse_report_units(&to_json(settings, &ms));
        let gated = throughput_rows(&rows);
        assert_eq!(gated.len(), 1, "the ratio row must stay out of the gate");
        let overhead = overhead_rows(&rows);
        assert_eq!(overhead.len(), 1);
        assert_eq!(overhead[0].0, "obs_overhead/DB2");
        assert!((overhead[0].1 - 1.02).abs() < 1e-9);
    }

    #[test]
    fn regression_check_skips_metrics_missing_from_current() {
        let baseline = vec![("step_throughput/DB2/SMS".to_string(), 1000.0)];
        let lines = check_regressions(&baseline, &[], 2.5);
        assert!(lines.is_empty());
    }
}
