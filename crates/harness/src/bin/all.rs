//! Runs the complete evaluation: every table and figure in order.

use stems_harness::{figs, Settings};

fn main() {
    let settings = Settings::from_env();
    eprintln!(
        "running full evaluation at scale {} (seed {})",
        settings.scale, settings.seed
    );
    for (name, f) in [
        ("table1", figs::table1 as fn(Settings) -> String),
        ("fig6", figs::fig6),
        ("fig7", figs::fig7),
        ("fig8", figs::fig8),
        ("fig9", figs::fig9),
        ("fig10", figs::fig10),
        ("naive_hybrid", figs::naive_hybrid),
        ("recon_stats", figs::recon_stats),
        ("ablations", stems_harness::ablate::ablations),
    ] {
        eprintln!("... {name}");
        println!("{}", f(settings.clone()));
    }
}
