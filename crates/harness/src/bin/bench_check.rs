//! CI perf gate: compares a fresh `BENCH_smoke.json` against the
//! committed baseline and fails (exit 1) only on gross step-throughput
//! regressions.
//!
//! Usage: `cargo run --release -p stems-harness --bin bench_check --
//! --baseline tools/bench_baseline.json --current BENCH_smoke.json
//! [--max-slowdown 2.5] [--stems-max-slowdown 2.0]
//! [--obs-max-overhead 1.5]`
//!
//! The tolerance is deliberately generous: bench numbers come from noisy
//! shared VMs (±30% run-to-run on the same binary), so the gate is a
//! tripwire for order-of-magnitude hot-path mistakes (an accidental
//! O(n²), a lost inline, a debug build), not a benchmark. The STeMS rows
//! — the headline predictor and the target of successive hot-path PRs —
//! are gated explicitly with a tighter tolerance, and the baseline is
//! required to contain them so the gate cannot silently disappear.
//!
//! The `obs_overhead/...` rows (hooked/plain wall-clock ratios from the
//! observability A/B) are gated absolutely against the current report
//! only — no baseline needed, a ratio already carries its own A/B. The
//! ceiling defaults to 1.5× for the same noise reason; the *design*
//! target is ≤2% same-boot (docs/OBSERVABILITY.md).

use stems_harness::bench;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path =
        arg_value(&args, "--baseline").unwrap_or_else(|| "tools/bench_baseline.json".to_string());
    let current_path =
        arg_value(&args, "--current").unwrap_or_else(|| "BENCH_smoke.json".to_string());
    let max_slowdown: f64 = arg_value(&args, "--max-slowdown")
        .map(|s| s.parse().expect("--max-slowdown takes a float"))
        .unwrap_or(2.5);
    let stems_max_slowdown: f64 = arg_value(&args, "--stems-max-slowdown")
        .map(|s| s.parse().expect("--stems-max-slowdown takes a float"))
        .unwrap_or(2.0);
    let obs_max_overhead: f64 = arg_value(&args, "--obs-max-overhead")
        .map(|s| s.parse().expect("--obs-max-overhead takes a float"))
        .unwrap_or(1.5);

    // Only accesses_per_sec rows enter the slowdown gate: diagnostic
    // rows in other units (pst_probes_per_access, figure wall-clocks,
    // peak_rss) are skipped, not errors — gating a lower-is-better unit
    // with a slowdown ratio would invert its meaning. The obs_overhead
    // ratio rows get their own absolute gate below.
    let read = |path: &str| -> Vec<(String, f64, String)> {
        let json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("bench_check: cannot read {path}: {e}"));
        bench::parse_report_units(&json)
    };
    let current_rows = read(&current_path);
    let baseline = bench::throughput_rows(&read(&baseline_path));
    let current = bench::throughput_rows(&current_rows);
    assert!(
        baseline
            .iter()
            .any(|(n, _)| n.starts_with("step_throughput/")),
        "bench_check: no step_throughput metrics in baseline {baseline_path}"
    );
    assert!(
        baseline.iter().any(|(n, _)| n.ends_with("/STeMS")),
        "bench_check: no STeMS rows in baseline {baseline_path}; the headline predictor must stay gated"
    );

    let lines =
        bench::check_regressions_with(&baseline, &current, max_slowdown, stems_max_slowdown);
    assert!(
        !lines.is_empty(),
        "bench_check: no comparable step_throughput metrics between {baseline_path} and {current_path}"
    );
    assert!(
        lines.iter().any(|l| l.name.ends_with("/STeMS")),
        "bench_check: STeMS rows missing from the comparison; current report lost them"
    );
    eprintln!(
        "bench_check: {} metrics, max allowed slowdown {max_slowdown}x ({stems_max_slowdown}x for STeMS rows) ({baseline_path} -> {current_path})",
        lines.len()
    );
    let mut failed = 0;
    for l in &lines {
        eprintln!(
            "  {} {:<40} baseline {:>14.0}/s current {:>14.0}/s slowdown {:>5.2}x",
            if l.failed { "FAIL" } else { "  ok" },
            l.name,
            l.baseline,
            l.current,
            l.slowdown,
        );
        failed += l.failed as usize;
    }

    // Observability overhead: absolute ceiling on each hooked/plain
    // ratio in the current report. Asserted non-empty so shipping a
    // report without the A/B cannot quietly retire the gate.
    let overhead = bench::overhead_rows(&current_rows);
    assert!(
        !overhead.is_empty(),
        "bench_check: no obs_overhead rows in {current_path}; the observability gate must not silently disappear"
    );
    for (name, ratio) in &overhead {
        let over = *ratio > obs_max_overhead;
        eprintln!(
            "  {} {:<40} overhead {ratio:>5.2}x (max {obs_max_overhead}x)",
            if over { "FAIL" } else { "  ok" },
            name,
        );
        failed += over as usize;
    }

    if failed > 0 {
        eprintln!("bench_check: {failed} metric(s) outside tolerance");
        std::process::exit(1);
    }
    eprintln!("bench_check: ok");
}
