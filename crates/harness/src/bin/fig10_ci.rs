//! Figure 10 with 95% confidence intervals over multiple workload seeds
//! (`--seeds <n>`, default 3).

fn main() {
    let settings = stems_harness::Settings::from_env();
    let args: Vec<String> = std::env::args().collect();
    let seeds = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    println!(
        "{}",
        stems_harness::stats::fig10_with_confidence(settings, seeds)
    );
}
