//! Runs the STeMS design-parameter ablation sweeps (DESIGN.md §4).

fn main() {
    let settings = stems_harness::Settings::from_env();
    println!("{}", stems_harness::ablate::ablations(settings));
}
