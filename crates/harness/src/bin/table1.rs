//! Regenerates table1 of the evaluation (see DESIGN.md §4).

fn main() {
    let settings = stems_harness::Settings::from_env();
    println!("{}", stems_harness::figs::table1(settings));
}
