//! Self-timing throughput report: writes `BENCH_harness.json` with
//! per-predictor step throughput, per-figure wall-clock, and a peak-RSS
//! proxy, so successive PRs have a machine-readable perf trajectory.
//!
//! Usage: `cargo run --release -p stems-harness --bin bench_harness --
//! [--scale <f>] [--seed <n>] [--threads <n>] [--out <path>]
//! [--obs-json <path>]`
//!
//! `--obs-json` additionally writes the flat-JSON dump of the metrics
//! registry that the observation-cost A/B's hooked runs recorded into
//! (counters, plus quantile summaries of the chunk-latency histograms)
//! — the observability layer's own view of the bench, next to the
//! stopwatch's.

use stems_harness::bench;
use stems_harness::Settings;
use stems_obs::MetricsRegistry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut settings = Settings::from_args(args.iter().cloned());
    // Full-size traces take minutes per cell; default the bench to a
    // scale that exercises every path in seconds.
    if !args.iter().any(|a| a == "--scale") {
        settings.scale = 0.05;
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_harness.json".to_string());
    let obs_json = args
        .iter()
        .position(|a| a == "--obs-json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    eprintln!(
        "bench_harness: scale {} seed {} threads {}",
        settings.scale,
        settings.seed,
        settings.effective_threads()
    );
    let registry = MetricsRegistry::new();
    let measurements =
        bench::run_with_obs(settings.clone(), obs_json.is_some().then_some(&registry));
    for m in &measurements {
        eprintln!("  {:<44} {:>16.3} {}", m.name, m.value, m.unit);
    }
    let json = bench::to_json(settings, &measurements);
    std::fs::write(&out_path, &json).expect("write BENCH_harness.json");
    eprintln!("wrote {out_path}");
    if let Some(path) = obs_json {
        let mut dump = String::new();
        registry.render_json(&mut dump);
        dump.push('\n');
        std::fs::write(&path, &dump).expect("write observability dump");
        eprintln!("wrote {path}");
    }
}
