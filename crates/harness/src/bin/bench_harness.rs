//! Self-timing throughput report: writes `BENCH_harness.json` with
//! per-predictor step throughput, per-figure wall-clock, and a peak-RSS
//! proxy, so successive PRs have a machine-readable perf trajectory.
//!
//! Usage: `cargo run --release -p stems-harness --bin bench_harness --
//! [--scale <f>] [--seed <n>] [--threads <n>] [--out <path>]`

use stems_harness::bench;
use stems_harness::Settings;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut settings = Settings::from_args(args.iter().cloned());
    // Full-size traces take minutes per cell; default the bench to a
    // scale that exercises every path in seconds.
    if !args.iter().any(|a| a == "--scale") {
        settings.scale = 0.05;
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_harness.json".to_string());

    eprintln!(
        "bench_harness: scale {} seed {} threads {}",
        settings.scale,
        settings.seed,
        settings.effective_threads()
    );
    let measurements = bench::run(settings.clone());
    for m in &measurements {
        eprintln!("  {:<44} {:>16.3} {}", m.name, m.value, m.unit);
    }
    let json = bench::to_json(settings, &measurements);
    std::fs::write(&out_path, &json).expect("write BENCH_harness.json");
    eprintln!("wrote {out_path}");
}
