//! Trace corpus utility: capture workload traces into the persistent
//! chunked store, inspect them, replay them through a session, and
//! verify the capture→replay round trip against the in-memory path.
//!
//! ```sh
//! tracegen capture db2 /tmp/db2.stems --scale 0.1 --seed 7
//! tracegen capture-all /tmp/corpus --scale 0.1
//! tracegen info /tmp/db2.stems
//! tracegen replay /tmp/db2.stems --workload db2 --predictor STeMS
//! tracegen replay /tmp/db2.stems --workload db2 --remote 127.0.0.1:4909
//! tracegen verify db2 /tmp/db2.stems --scale 0.1 --seed 7
//! tracegen metrics --remote 127.0.0.1:4909 [--events]
//! ```
//!
//! `capture` writes the chunked store format (`docs/TRACE_FORMAT.md`);
//! `info` auto-detects a legacy `STEMSTR1` blob and reads that too.
//! `verify` is the round-trip oracle used by CI: every predictor's
//! counters from streaming replay must equal the in-memory run's.
//! `verify --repair` first truncates a damaged store to its last valid
//! frame boundary (`TraceReader::recover_tail`) so an interrupted
//! capture reads cleanly again — note a repaired file holds a *prefix*
//! of the workload, so full verification still reports the shortfall.
//! `replay --remote` streams the store to a running `stems-serve`
//! daemon instead, using the identical session configuration, so its
//! counters line up with the local replay row for row-by-row diffing.
//! `--retry` swaps in the resilient client (`docs/FAULT_TOLERANCE.md`):
//! transient faults heal via backoff + resume, and a trailing
//! `fault-stats:` line reports what was healed (`--retry-seed` pins the
//! jitter schedule for reproducible chaos runs).
//! `metrics --remote` scrapes a live daemon's observability registry
//! (`docs/OBSERVABILITY.md`) and prints the text exposition; `--events`
//! also drains the daemon's event ring as JSON-lines.

use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;
use std::process::ExitCode;

use stems_core::engine::Counters;
use stems_harness::runner::{
    remote_open_request, replay_coverage, run_coverage, system_config, Predictor,
};
use stems_harness::{parallel_map, Settings};
use stems_trace::store::SyncPolicy;
use stems_trace::{read_trace, TraceReader, TraceStats};
use stems_workloads::{capture_to_path, trace_file_name, Workload};

fn workload_by_name(name: &str) -> Option<Workload> {
    Workload::all()
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: tracegen capture <workload> <file> [--scale f] [--seed n] [--sync-every-frame]"
    );
    eprintln!("       tracegen capture-all <dir> [--scale f] [--seed n] [--threads n]");
    eprintln!("       tracegen info <file>");
    eprintln!("       tracegen replay <file> --workload <w> [--predictor <p>] [--scale f]");
    eprintln!(
        "                       [--remote HOST:PORT [--window n] [--retry [--retry-seed n]]]"
    );
    eprintln!("       tracegen verify <workload> <file> [--scale f] [--seed n] [--repair]");
    eprintln!("       tracegen metrics --remote HOST:PORT [--events]");
    ExitCode::FAILURE
}

fn counters_row(label: &str, c: &Counters) {
    println!(
        "{label:<10} accesses {:>9} reads {:>9} covered {:>8} uncovered {:>8} overpred {:>8} fetches {:>8}",
        c.accesses, c.reads, c.covered, c.uncovered, c.overpredictions, c.fetches
    );
}

fn capture(args: &[String]) -> ExitCode {
    let Some(workload) = workload_by_name(&args[0]) else {
        eprintln!(
            "unknown workload {:?}; expected one of {}",
            args[0],
            Workload::all().map(|w| w.name()).join(", ")
        );
        return ExitCode::FAILURE;
    };
    let settings = Settings::from_args(args[2..].iter().cloned());
    let sync = if args.iter().any(|a| a == "--sync-every-frame") {
        SyncPolicy::EveryFrame
    } else {
        SyncPolicy::OnFinish
    };
    match capture_to_path(workload, settings.scale, settings.seed, &args[1], sync) {
        Ok(summary) => {
            println!(
                "{}: {} records in {} frames (scale {}, seed {})",
                args[1], summary.records, summary.frames, settings.scale, settings.seed
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("capture failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn capture_all(args: &[String]) -> ExitCode {
    let dir = Path::new(&args[0]);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let settings = Settings::from_args(args[1..].iter().cloned());
    let workloads = Workload::all();
    let results = parallel_map(&workloads, settings.effective_threads(), |w| {
        let path = dir.join(trace_file_name(*w));
        capture_to_path(
            *w,
            settings.scale,
            settings.seed,
            &path,
            SyncPolicy::OnFinish,
        )
        .map(|s| (path, s))
    });
    let mut failed = false;
    for (w, result) in workloads.iter().zip(results) {
        match result {
            Ok((path, summary)) => println!(
                "{:<8} {} records / {} frames -> {}",
                w.name(),
                summary.records,
                summary.frames,
                path.display()
            ),
            Err(e) => {
                eprintln!("{}: capture failed: {e}", w.name());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn info(path: &str) -> ExitCode {
    // Auto-detect: chunked store vs legacy blob by magic.
    let mut magic = [0u8; 8];
    match File::open(path) {
        Ok(mut f) => {
            if f.read(&mut magic).unwrap_or(0) < 8 {
                eprintln!("{path}: too short to be a trace");
                return ExitCode::FAILURE;
            }
        }
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if &magic == b"STEMSTR1" {
        let file = File::open(path).expect("reopen just-opened file");
        return match read_trace(BufReader::new(file)) {
            Ok(trace) => {
                println!("{path} (legacy blob): {}", trace.stats());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("not a valid trace: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match TraceReader::open(path) {
        Ok(mut reader) => match TraceStats::from_reader(&mut reader) {
            Ok(stats) => {
                println!("{path}: {} ({} frames)", stats, reader.frames_read());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("store damaged: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("not a valid trace store: {e}");
            ExitCode::FAILURE
        }
    }
}

fn replay(args: &[String]) -> ExitCode {
    let path = &args[0];
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let Some(workload) = arg_after("--workload").and_then(|n| workload_by_name(n)) else {
        eprintln!("replay needs --workload <name> (selects prefetch config + invalidation rate)");
        return ExitCode::FAILURE;
    };
    let predictor = match arg_after("--predictor") {
        Some(name) => match name.parse::<Predictor>() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        None => Predictor::Stems,
    };
    let settings = Settings::from_args(args[1..].iter().cloned());
    let sys = system_config(settings.scale);
    if let Some(addr) = arg_after("--remote") {
        let window: usize = arg_after("--window")
            .and_then(|w| w.parse().ok())
            .unwrap_or(4);
        if args.iter().any(|a| a == "--retry") {
            let seed = arg_after("--retry-seed").and_then(|s| s.parse().ok());
            return resilient_replay(path, workload, predictor, &sys, addr, window, seed);
        }
        return remote_replay(path, workload, predictor, &sys, addr, window);
    }
    match replay_coverage(workload, predictor, path, &sys) {
        Ok((counters, fed)) => {
            println!("{path}: replayed {fed} accesses through {predictor}");
            counters_row(predictor.name(), &counters);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("replay failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Streams the store to a `stems-serve` daemon with the same workload
/// session configuration the local path uses (see
/// `runner::remote_open_request`), so the printed counters line up with
/// `tracegen replay` and `tracegen verify` for the same file.
fn remote_replay(
    path: &str,
    workload: Workload,
    predictor: Predictor,
    sys: &stems_memsim::SystemConfig,
    addr: &str,
    window: usize,
) -> ExitCode {
    let open = remote_open_request(workload, predictor, sys);
    let mut reader = match TraceReader::open(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut run = || -> Result<_, stems_client::ClientError> {
        let mut client = stems_client::Client::connect(addr)?;
        let session = client.open(&open)?;
        let (fed, _) = client.stream(session, &mut reader, window)?;
        let summary = client.close(session)?;
        Ok((fed, summary))
    };
    match run() {
        Ok((fed, summary)) => {
            println!("{path}: streamed {fed} accesses to {addr} through {predictor}");
            counters_row(predictor.name(), &summary.counters);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("remote replay failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Like [`remote_replay`], but through [`stems_client::ResilientClient`]:
/// transient faults (torn connections, corrupt frames, `Busy`
/// shedding) heal via backoff + resume instead of failing the replay.
/// Prints one `fault-stats:` line so chaos harnesses can reconcile the
/// client's healing against a fault proxy's injection log.
#[allow(clippy::too_many_arguments)]
fn resilient_replay(
    path: &str,
    workload: Workload,
    predictor: Predictor,
    sys: &stems_memsim::SystemConfig,
    addr: &str,
    window: usize,
    seed: Option<u64>,
) -> ExitCode {
    let open = remote_open_request(workload, predictor, sys);
    let mut reader = match TraceReader::open(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut policy = stems_client::RetryPolicy::default();
    if let Some(seed) = seed {
        policy.jitter_seed = seed;
    }
    let mut client = stems_client::ResilientClient::new(addr, policy);
    let result = (|| -> Result<_, stems_client::ClientError> {
        let session = client.open(&open)?;
        let (fed, _) = client.stream(session, &mut reader, window)?;
        let summary = client.close(session)?;
        Ok((fed, summary))
    })();
    match result {
        Ok((fed, summary)) => {
            let stats = client.stats();
            println!("{path}: streamed {fed} accesses to {addr} through {predictor} (resilient)");
            counters_row(predictor.name(), &summary.counters);
            println!(
                "fault-stats: reconnects={} resumes={} busy_retries={} \
                 chunks_resent={} chunks_deduped={}",
                stats.reconnects,
                stats.resumes,
                stats.busy_retries,
                stats.chunks_resent,
                stats.chunks_deduped
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("remote replay failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Scrapes a live daemon's metrics over the wire protocol and prints
/// the text exposition to stdout. With `--events`, the daemon's event
/// ring is drained and printed after the exposition (separated by a
/// blank line) as JSON-lines.
fn metrics(args: &[String]) -> ExitCode {
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let Some(addr) = arg_after("--remote") else {
        eprintln!("metrics needs --remote HOST:PORT (a running stems-serve daemon)");
        return ExitCode::FAILURE;
    };
    let drain_events = args.iter().any(|a| a == "--events");
    let run = || -> Result<_, stems_client::ClientError> {
        let mut client = stems_client::Client::connect(addr)?;
        client.metrics(drain_events)
    };
    match run() {
        Ok(reply) => {
            print!("{}", reply.exposition);
            if drain_events {
                println!();
                print!("{}", reply.events);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("metrics scrape failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn verify(args: &[String]) -> ExitCode {
    let Some(workload) = workload_by_name(&args[0]) else {
        eprintln!("unknown workload {:?}", args[0]);
        return ExitCode::FAILURE;
    };
    let path = &args[1];
    let settings = Settings::from_args(args[2..].iter().cloned());
    if args[2..].iter().any(|a| a == "--repair") {
        match stems_trace::store::TraceReader::recover_tail(path) {
            Ok(report) if report.was_damaged => {
                println!(
                    "repaired {path}: kept {} frames ({} records), cut {} damaged tail bytes",
                    report.frames_kept, report.records_kept, report.bytes_truncated
                );
            }
            Ok(report) => {
                println!(
                    "no repair needed: {} frames ({} records) all valid",
                    report.frames_kept, report.records_kept
                );
            }
            Err(e) => {
                eprintln!("repair failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let sys = system_config(settings.scale);
    let trace = workload.generate_scaled(settings.scale, settings.seed);
    let mut failed = false;
    for p in Predictor::all() {
        let expected = run_coverage(workload, p, &trace, &sys);
        match replay_coverage(workload, p, path, &sys) {
            Ok((replayed, fed)) => {
                if replayed == expected && fed == trace.len() as u64 {
                    println!("{:<8} OK ({} accesses, counters identical)", p.name(), fed);
                } else {
                    eprintln!(
                        "{:<8} MISMATCH: replay {:?} (fed {fed}) vs in-memory {:?} ({} accesses)",
                        p.name(),
                        replayed,
                        expected,
                        trace.len()
                    );
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("{:<8} replay failed: {e}", p.name());
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("verify FAILED: the store does not reproduce the in-memory run");
        ExitCode::FAILURE
    } else {
        println!("verify OK: capture -> replay reproduces every predictor byte-identically");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("capture") if args.len() >= 3 => capture(&args[1..]),
        Some("capture-all") if args.len() >= 2 => capture_all(&args[1..]),
        Some("info") if args.len() >= 2 => info(&args[1]),
        Some("replay") if args.len() >= 2 => replay(&args[1..]),
        Some("verify") if args.len() >= 3 => verify(&args[1..]),
        Some("metrics") if args.len() >= 2 => metrics(&args[1..]),
        _ => usage(),
    }
}
