//! Trace capture utility: generates a workload trace and writes it in the
//! binary trace format, or prints statistics of an existing trace file.
//!
//! ```sh
//! tracegen capture db2 /tmp/db2.trace --scale 0.1 --seed 7
//! tracegen info /tmp/db2.trace
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use stems_trace::{read_trace, write_trace};
use stems_workloads::Workload;

fn workload_by_name(name: &str) -> Option<Workload> {
    Workload::all()
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("capture") if args.len() >= 3 => {
            let Some(workload) = workload_by_name(&args[1]) else {
                eprintln!(
                    "unknown workload {:?}; expected one of {}",
                    args[1],
                    Workload::all().map(|w| w.name()).join(", ")
                );
                return ExitCode::FAILURE;
            };
            let settings = stems_harness::Settings::from_args(args[3..].iter().cloned());
            let trace = workload.generate_scaled(settings.scale, settings.seed);
            let file = match File::create(&args[2]) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {}: {e}", args[2]);
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = write_trace(BufWriter::new(file), &trace) {
                eprintln!("write failed: {e}");
                return ExitCode::FAILURE;
            }
            println!("{}: {}", args[2], trace.stats());
            ExitCode::SUCCESS
        }
        Some("info") if args.len() >= 2 => {
            let file = match File::open(&args[1]) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot open {}: {e}", args[1]);
                    return ExitCode::FAILURE;
                }
            };
            match read_trace(BufReader::new(file)) {
                Ok(trace) => {
                    println!("{}: {}", args[1], trace.stats());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("not a valid trace: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("usage: tracegen capture <workload> <file> [--scale f] [--seed n]");
            eprintln!("       tracegen info <file>");
            ExitCode::FAILURE
        }
    }
}
