//! Ablation studies over STeMS's design parameters (DESIGN.md §4).
//!
//! The paper fixes one hardware point (Section 4.3); these sweeps show
//! *why* that point was chosen by varying one knob at a time on an OLTP
//! workload (temporal+spatial mix) and a DSS workload (compulsory scans):
//!
//! * **lookahead** — timeliness vs overfetch at stream ends;
//! * **stream queues** — thrash when concurrent streams contend;
//! * **SVB capacity** — how long predictions survive until consumption;
//! * **reconstruction window and ±search** — placement success vs drops;
//! * **spatial-only streams** — the only source of compulsory coverage.

use stems_core::engine::Counters;
use stems_core::{PrefetchConfig, Session};
use stems_trace::Trace;
use stems_workloads::Workload;

use crate::render::{pct, Table};
use crate::runner::{parallel_map, prefetch_config, system_config, Predictor, Settings};

fn run_stems(
    workload: Workload,
    cfg: &PrefetchConfig,
    trace: &Trace,
    settings: &Settings,
) -> (Counters, stems_core::stems::ReconStats) {
    let mut session = Session::builder(&system_config(settings.scale))
        .prefetch(cfg)
        .predictor(Predictor::Stems)
        .invalidations(workload.invalidation_rate(), 7)
        .build();
    let counters = session.run(trace);
    let stats = session.recon_stats().expect("a STeMS session has stats");
    (counters, stats)
}

fn baseline(workload: Workload, trace: &Trace, settings: &Settings) -> u64 {
    Session::builder(&system_config(settings.scale))
        .prefetch(&prefetch_config(workload))
        .invalidations(workload.invalidation_rate(), 7)
        .run(trace)
        .uncovered
}

/// Runs every ablation sweep and renders the tables.
///
/// Every workload x config cell is independent, so they are all sharded
/// across the runner's worker threads in one flat batch; rendering then
/// consumes the results in deterministic cell order.
pub fn ablations(settings: Settings) -> String {
    const LOOKAHEADS: [usize; 4] = [2, 4, 8, 16];
    const QUEUES: [usize; 4] = [1, 2, 8, 16];
    const SVBS: [usize; 3] = [16, 64, 256];
    const RECONS: [(usize, usize); 5] = [(64, 2), (256, 0), (256, 2), (256, 4), (1024, 2)];
    const SPATIAL: [bool; 2] = [true, false];

    let workloads = [Workload::Db2, Workload::Qry2];
    let threads = settings.effective_threads();
    let traces = parallel_map(&workloads, threads, |w| {
        w.generate_scaled(settings.scale, settings.seed)
    });
    let bases: Vec<u64> = parallel_map(&workloads, threads, |w| {
        let wi = workloads.iter().position(|x| x == w).expect("member");
        baseline(*w, &traces[wi], &settings)
    });

    // One flat cell list per (workload, sweep variant), in render order.
    let mut cells: Vec<(usize, PrefetchConfig)> = Vec::new();
    for (wi, w) in workloads.iter().enumerate() {
        let stock = prefetch_config(*w);
        for lookahead in LOOKAHEADS {
            cells.push((
                wi,
                PrefetchConfig {
                    lookahead,
                    ..stock.clone()
                },
            ));
        }
        for stream_queues in QUEUES {
            cells.push((
                wi,
                PrefetchConfig {
                    stream_queues,
                    ..stock.clone()
                },
            ));
        }
        for svb_entries in SVBS {
            cells.push((
                wi,
                PrefetchConfig {
                    svb_entries,
                    ..stock.clone()
                },
            ));
        }
        for (recon_entries, recon_search) in RECONS {
            cells.push((
                wi,
                PrefetchConfig {
                    recon_entries,
                    recon_search,
                    ..stock.clone()
                },
            ));
        }
        for spatial_only_streams in SPATIAL {
            cells.push((
                wi,
                PrefetchConfig {
                    spatial_only_streams,
                    ..stock.clone()
                },
            ));
        }
    }
    let results = parallel_map(&cells, threads, |(wi, cfg)| {
        run_stems(workloads[*wi], cfg, &traces[*wi], &settings)
    });
    let mut results = results.into_iter();

    let mut out = String::new();
    for (wi, workload) in workloads.iter().enumerate() {
        let base = bases[wi];

        let mut t = Table::new(
            &format!("Ablation: stream lookahead ({workload})"),
            &["lookahead", "coverage", "overprediction"],
        );
        for lookahead in LOOKAHEADS {
            let (c, _) = results.next().expect("cell order matches build order");
            t.row(vec![
                lookahead.to_string(),
                pct(c.coverage_vs(base)),
                pct(c.overprediction_vs(base)),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');

        let mut t = Table::new(
            &format!("Ablation: stream queues ({workload})"),
            &["queues", "coverage", "overprediction"],
        );
        for queues in QUEUES {
            let (c, _) = results.next().expect("cell order matches build order");
            t.row(vec![
                queues.to_string(),
                pct(c.coverage_vs(base)),
                pct(c.overprediction_vs(base)),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');

        let mut t = Table::new(
            &format!("Ablation: SVB entries ({workload})"),
            &["svb", "coverage", "overprediction"],
        );
        for svb in SVBS {
            let (c, _) = results.next().expect("cell order matches build order");
            t.row(vec![
                svb.to_string(),
                pct(c.coverage_vs(base)),
                pct(c.overprediction_vs(base)),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');

        let mut t = Table::new(
            &format!("Ablation: reconstruction window / search ({workload})"),
            &[
                "window",
                "search",
                "coverage",
                "exact placed",
                "placed <=|s|",
            ],
        );
        for (window, search) in RECONS {
            let (c, stats) = results.next().expect("cell order matches build order");
            t.row(vec![
                window.to_string(),
                search.to_string(),
                pct(c.coverage_vs(base)),
                pct(stats.exact_fraction()),
                pct(stats.placed_fraction()),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');

        let mut t = Table::new(
            &format!("Ablation: spatial-only streams ({workload})"),
            &["spatial-only", "coverage", "overprediction"],
        );
        for enabled in SPATIAL {
            let (c, _) = results.next().expect("cell order matches build order");
            t.row(vec![
                if enabled { "on" } else { "off" }.to_string(),
                pct(c.coverage_vs(base)),
                pct(c.overprediction_vs(base)),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str(
        "spatial-only streams are the only source of compulsory coverage: turning them \
         off should collapse DSS coverage while barely moving OLTP's temporal part.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_only_ablation_collapses_dss_coverage() {
        let settings = Settings {
            scale: 0.03,
            seed: 5,
            threads: 0,
            ..Settings::default()
        };
        let w = Workload::Qry2;
        let trace = w.generate_scaled(settings.scale, settings.seed);
        let base = baseline(w, &trace, &settings);
        let stock = prefetch_config(w);
        let (on, _) = run_stems(w, &stock, &trace, &settings);
        let off_cfg = PrefetchConfig {
            spatial_only_streams: false,
            ..stock
        };
        let (off, _) = run_stems(w, &off_cfg, &trace, &settings);
        assert!(
            off.coverage_vs(base) < 0.5 * on.coverage_vs(base),
            "DSS coverage must come from spatial-only streams: on {:.2} off {:.2}",
            on.coverage_vs(base),
            off.coverage_vs(base)
        );
    }

    #[test]
    fn zero_search_hurts_placement() {
        let settings = Settings {
            scale: 0.03,
            seed: 5,
            threads: 0,
            ..Settings::default()
        };
        let w = Workload::Db2;
        let trace = w.generate_scaled(settings.scale, settings.seed);
        let stock = prefetch_config(w);
        let (_, with_search) = run_stems(w, &stock, &trace, &settings);
        let cfg0 = PrefetchConfig {
            recon_search: 0,
            ..stock
        };
        let (_, no_search) = run_stems(w, &cfg0, &trace, &settings);
        assert!(
            with_search.placed_fraction() > no_search.placed_fraction(),
            "±2 search must place more addresses: {:.2} vs {:.2}",
            with_search.placed_fraction(),
            no_search.placed_fraction()
        );
    }
}
