//! Ablation studies over STeMS's design parameters (DESIGN.md §4).
//!
//! The paper fixes one hardware point (Section 4.3); these sweeps show
//! *why* that point was chosen by varying one knob at a time on an OLTP
//! workload (temporal+spatial mix) and a DSS workload (compulsory scans):
//!
//! * **lookahead** — timeliness vs overfetch at stream ends;
//! * **stream queues** — thrash when concurrent streams contend;
//! * **SVB capacity** — how long predictions survive until consumption;
//! * **reconstruction window and ±search** — placement success vs drops;
//! * **spatial-only streams** — the only source of compulsory coverage.

use stems_core::engine::{CoverageSim, Counters, NullPrefetcher};
use stems_core::{PrefetchConfig, StemsPrefetcher};
use stems_trace::Trace;
use stems_workloads::Workload;

use crate::render::{pct, Table};
use crate::runner::{prefetch_config, system_config, Settings};

fn run_stems(
    workload: Workload,
    cfg: &PrefetchConfig,
    trace: &Trace,
    settings: Settings,
) -> (Counters, stems_core::stems::ReconStats) {
    let sys = system_config(settings.scale);
    let mut sim = CoverageSim::new(&sys, cfg, StemsPrefetcher::new(cfg))
        .with_invalidations(workload.invalidation_rate(), 7);
    let counters = sim.run(trace);
    (counters, sim.prefetcher().recon_stats())
}

fn baseline(workload: Workload, trace: &Trace, settings: Settings) -> u64 {
    let sys = system_config(settings.scale);
    CoverageSim::new(&sys, &prefetch_config(workload), NullPrefetcher)
        .with_invalidations(workload.invalidation_rate(), 7)
        .run(trace)
        .uncovered
}

/// Runs every ablation sweep and renders the tables.
pub fn ablations(settings: Settings) -> String {
    let mut out = String::new();
    for workload in [Workload::Db2, Workload::Qry2] {
        let trace = workload.generate_scaled(settings.scale, settings.seed);
        let base = baseline(workload, &trace, settings);
        let stock = prefetch_config(workload);

        let mut t = Table::new(
            &format!("Ablation: stream lookahead ({workload})"),
            &["lookahead", "coverage", "overprediction"],
        );
        for lookahead in [2usize, 4, 8, 16] {
            let cfg = PrefetchConfig {
                lookahead,
                ..stock.clone()
            };
            let (c, _) = run_stems(workload, &cfg, &trace, settings);
            t.row(vec![
                lookahead.to_string(),
                pct(c.coverage_vs(base)),
                pct(c.overprediction_vs(base)),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');

        let mut t = Table::new(
            &format!("Ablation: stream queues ({workload})"),
            &["queues", "coverage", "overprediction"],
        );
        for queues in [1usize, 2, 8, 16] {
            let cfg = PrefetchConfig {
                stream_queues: queues,
                ..stock.clone()
            };
            let (c, _) = run_stems(workload, &cfg, &trace, settings);
            t.row(vec![
                queues.to_string(),
                pct(c.coverage_vs(base)),
                pct(c.overprediction_vs(base)),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');

        let mut t = Table::new(
            &format!("Ablation: SVB entries ({workload})"),
            &["svb", "coverage", "overprediction"],
        );
        for svb in [16usize, 64, 256] {
            let cfg = PrefetchConfig {
                svb_entries: svb,
                ..stock.clone()
            };
            let (c, _) = run_stems(workload, &cfg, &trace, settings);
            t.row(vec![
                svb.to_string(),
                pct(c.coverage_vs(base)),
                pct(c.overprediction_vs(base)),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');

        let mut t = Table::new(
            &format!("Ablation: reconstruction window / search ({workload})"),
            &["window", "search", "coverage", "exact placed", "placed <=|s|"],
        );
        for (window, search) in [(64usize, 2usize), (256, 0), (256, 2), (256, 4), (1024, 2)] {
            let cfg = PrefetchConfig {
                recon_entries: window,
                recon_search: search,
                ..stock.clone()
            };
            let (c, stats) = run_stems(workload, &cfg, &trace, settings);
            t.row(vec![
                window.to_string(),
                search.to_string(),
                pct(c.coverage_vs(base)),
                pct(stats.exact_fraction()),
                pct(stats.placed_fraction()),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');

        let mut t = Table::new(
            &format!("Ablation: spatial-only streams ({workload})"),
            &["spatial-only", "coverage", "overprediction"],
        );
        for enabled in [true, false] {
            let cfg = PrefetchConfig {
                spatial_only_streams: enabled,
                ..stock.clone()
            };
            let (c, _) = run_stems(workload, &cfg, &trace, settings);
            t.row(vec![
                if enabled { "on" } else { "off" }.to_string(),
                pct(c.coverage_vs(base)),
                pct(c.overprediction_vs(base)),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str(
        "spatial-only streams are the only source of compulsory coverage: turning them \
         off should collapse DSS coverage while barely moving OLTP's temporal part.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_only_ablation_collapses_dss_coverage() {
        let settings = Settings {
            scale: 0.03,
            seed: 5,
        };
        let w = Workload::Qry2;
        let trace = w.generate_scaled(settings.scale, settings.seed);
        let base = baseline(w, &trace, settings);
        let stock = prefetch_config(w);
        let (on, _) = run_stems(w, &stock, &trace, settings);
        let off_cfg = PrefetchConfig {
            spatial_only_streams: false,
            ..stock
        };
        let (off, _) = run_stems(w, &off_cfg, &trace, settings);
        assert!(
            off.coverage_vs(base) < 0.5 * on.coverage_vs(base),
            "DSS coverage must come from spatial-only streams: on {:.2} off {:.2}",
            on.coverage_vs(base),
            off.coverage_vs(base)
        );
    }

    #[test]
    fn zero_search_hurts_placement() {
        let settings = Settings {
            scale: 0.03,
            seed: 5,
        };
        let w = Workload::Db2;
        let trace = w.generate_scaled(settings.scale, settings.seed);
        let stock = prefetch_config(w);
        let (_, with_search) = run_stems(w, &stock, &trace, settings);
        let cfg0 = PrefetchConfig {
            recon_search: 0,
            ..stock
        };
        let (_, no_search) = run_stems(w, &cfg0, &trace, settings);
        assert!(
            with_search.placed_fraction() > no_search.placed_fraction(),
            "±2 search must place more addresses: {:.2} vs {:.2}",
            with_search.placed_fraction(),
            no_search.placed_fraction()
        );
    }
}
