//! Multi-seed statistics: the paper reports 95% confidence intervals from
//! SimFlex statistical sampling (Figure 10's error bars). Our equivalent
//! is running each experiment across independent workload seeds and
//! reporting the sample mean with a normal-approximation 95% interval.

use crate::render::Table;
use crate::runner::{parallel_map, run_timing, system_config, Predictor, Settings};
use stems_workloads::Workload;

/// Mean and 95% confidence half-width of a sample.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MeanCi {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95% confidence interval (1.96 standard errors).
    pub ci95: f64,
}

/// Computes the sample mean and 95% CI half-width.
///
/// Returns zeroed statistics for samples with fewer than two points
/// (no variance estimate exists).
pub fn mean_ci(samples: &[f64]) -> MeanCi {
    if samples.is_empty() {
        return MeanCi::default();
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return MeanCi { mean, ci95: 0.0 };
    }
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    MeanCi {
        mean,
        ci95: 1.96 * (var / n).sqrt(),
    }
}

/// Figure 10 with error bars: improvement over the stride baseline per
/// predictor, across `seeds` independent workload instances.
pub fn fig10_with_confidence(settings: Settings, seeds: usize) -> String {
    let sys = system_config(settings.scale);
    let mut t = Table::new(
        &format!("Figure 10 with 95% confidence intervals ({seeds} seeds)"),
        &["workload", "TMS", "SMS", "STeMS"],
    );
    // Every workload x seed cell is independent: generate the trace and
    // run all four timing models inside the cell, sharded across workers.
    let cells: Vec<(Workload, u64)> = Workload::all()
        .into_iter()
        .flat_map(|w| (0..seeds as u64).map(move |s| (w, settings.seed + s)))
        .collect();
    let per_cell = parallel_map(&cells, settings.effective_threads(), |&(w, seed)| {
        let trace = w.generate_scaled(settings.scale, seed);
        let base = run_timing(w, Predictor::Stride, &trace, &sys);
        let mut out = [0.0f64; 3];
        for (i, p) in Predictor::STREAMING.iter().enumerate() {
            let r = run_timing(w, *p, &trace, &sys);
            out[i] = r.improvement_percent_over(&base);
        }
        out
    });
    let mut per_cell = per_cell.into_iter();
    for w in Workload::all() {
        let mut samples: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for _ in 0..seeds {
            let imps = per_cell.next().expect("cell order matches build order");
            for i in 0..3 {
                samples[i].push(imps[i]);
            }
        }
        let cells: Vec<String> = samples
            .iter()
            .map(|s| {
                let m = mean_ci(s);
                format!("{:+.1}% ± {:.1}", m.mean, m.ci95)
            })
            .collect();
        t.row(vec![
            w.name().to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    format!(
        "{}\nthe paper's error bars come from SimFlex statistical sampling; ours from \
         independent synthetic-workload seeds.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_ci_basics() {
        let m = mean_ci(&[2.0, 4.0, 6.0, 8.0]);
        assert!((m.mean - 5.0).abs() < 1e-12);
        assert!(m.ci95 > 0.0);
        assert_eq!(mean_ci(&[]), MeanCi::default());
        let single = mean_ci(&[3.0]);
        assert_eq!(single.ci95, 0.0);
        assert!((single.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn identical_samples_have_zero_interval() {
        let m = mean_ci(&[7.0; 10]);
        assert!((m.mean - 7.0).abs() < 1e-12);
        assert!(m.ci95.abs() < 1e-12);
    }
}
