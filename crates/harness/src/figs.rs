//! One module per reproduced table/figure; each returns rendered text.

use crate::render::{pct, pct_signed, Table};
use crate::runner::{
    per_workload, per_workload_predictor, prefetch_config, run_coverage, run_timing, system_config,
    Predictor, Settings,
};

use stems_analysis::{
    classify, correlation_distance, filter_trace, joint_analysis, JointBreakdown,
};
use stems_core::stems::ReconStats;
use stems_memsim::SystemConfig;
use stems_workloads::Workload;

/// Table 1: system and predictor parameters.
pub fn table1(_settings: Settings) -> String {
    let sys = SystemConfig::default();
    let mut t = Table::new("Table 1: system parameters", &["parameter", "value"]);
    let mut kv = |k: &str, v: String| {
        t.row(vec![k.to_string(), v]);
    };
    kv("clock", format!("{} GHz", sys.clock_ghz));
    kv(
        "pipeline",
        format!("{}-wide, {}-entry ROB", sys.width, sys.rob_entries),
    );
    kv(
        "L1d",
        format!(
            "{}KB {}-way, 64B blocks, {}-cycle, {} MSHRs",
            sys.l1.size_bytes / 1024,
            sys.l1.associativity,
            sys.l1_latency,
            sys.mshrs
        ),
    );
    kv(
        "L2",
        format!(
            "{}MB {}-way, {}-cycle",
            sys.l2.size_bytes / (1024 * 1024),
            sys.l2.associativity,
            sys.l2_latency
        ),
    );
    kv("memory", format!("{} ns", sys.mem_latency_ns));
    kv(
        "interconnect",
        format!("4x4 2D torus, {} ns/hop", sys.hop_latency_ns),
    );
    kv("nodes", format!("{}", sys.nodes));
    let commercial = prefetch_config(Workload::Db2);
    let scientific = prefetch_config(Workload::Em3d);
    kv(
        "stream queues / SVB",
        format!("{} / {}", commercial.stream_queues, commercial.svb_entries),
    );
    kv(
        "lookahead",
        format!(
            "{} commercial / {} scientific",
            commercial.lookahead, scientific.lookahead
        ),
    );
    kv(
        "AGT / PHT / PST",
        format!(
            "{} / {} / {} entries",
            commercial.agt_entries, commercial.pht_entries, commercial.pst_entries
        ),
    );
    kv(
        "CMOB / RMOB",
        format!(
            "{}K / {}K entries",
            commercial.cmob_entries / 1024,
            commercial.rmob_entries / 1024
        ),
    );
    kv(
        "reconstruction",
        format!(
            "{} slots, +-{} search",
            commercial.recon_entries, commercial.recon_search
        ),
    );
    let mut out = t.render();
    out.push('\n');
    let mut apps = Table::new(
        "Table 1: applications",
        &["workload", "category", "lookahead", "inval rate"],
    );
    for w in Workload::all() {
        apps.row(vec![
            w.name().to_string(),
            w.category().to_string(),
            prefetch_config(w).lookahead.to_string(),
            format!("{:.0e}", w.invalidation_rate()),
        ]);
    }
    out.push_str(&apps.render());
    out
}

/// Figure 6: joint TMS/SMS predictability of off-chip read misses.
pub fn fig6(settings: Settings) -> String {
    let sys = system_config(settings.scale);
    let results = per_workload(settings, |_, trace| {
        let misses = filter_trace(trace, &sys).misses;
        joint_analysis(&misses)
    });
    let mut t = Table::new(
        "Figure 6: joint predictability of off-chip read misses",
        &[
            "workload", "both", "TMS only", "SMS only", "neither", "temporal", "spatial", "joint",
        ],
    );
    let mut sums = (0.0, 0.0, 0.0);
    for (w, j) in &results {
        let (b, tms, sms, n) = j.fractions();
        t.row(vec![
            w.name().to_string(),
            pct(b),
            pct(tms),
            pct(sms),
            pct(n),
            pct(j.temporal_fraction()),
            pct(j.spatial_fraction()),
            pct(j.joint_fraction()),
        ]);
        sums.0 += j.temporal_fraction();
        sums.1 += j.spatial_fraction();
        sums.2 += j.joint_fraction();
    }
    let n = results.len() as f64;
    t.row(vec![
        "average".to_string(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        pct(sums.0 / n),
        pct(sums.1 / n),
        pct(sums.2 / n),
    ]);
    format!(
        "{}\npaper: average temporal 32%, spatial 54%, joint 70%; OLTP/web have all four classes \
         significant with 34-38% neither; DSS is spatial-dominated; scientific high on both.\n",
        t.render()
    )
}

/// The per-workload joint breakdowns behind Figure 6 (for tests).
pub fn fig6_data(settings: Settings) -> Vec<(Workload, JointBreakdown)> {
    let sys = system_config(settings.scale);
    per_workload(settings, |_, trace| {
        joint_analysis(&filter_trace(trace, &sys).misses)
    })
}

/// Figure 7: Sequitur repetition of all misses vs spatial triggers.
pub fn fig7(settings: Settings) -> String {
    let sys = system_config(settings.scale);
    let results = per_workload(settings, |_, trace| {
        let out = filter_trace(trace, &sys);
        let all: Vec<u64> = out.misses.iter().map(|m| m.block.get()).collect();
        let triggers: Vec<u64> = out
            .misses
            .iter()
            .filter(|m| m.trigger)
            .map(|m| m.block.get())
            .collect();
        (classify(all), classify(triggers))
    });
    let mut t = Table::new(
        "Figure 7: temporal repetition (Sequitur) of misses and triggers",
        &[
            "workload",
            "series",
            "opportunity",
            "head",
            "new",
            "non-rep",
        ],
    );
    for (w, (all, trig)) in &results {
        for (label, b) in [("All_Addrs", all), ("Triggers", trig)] {
            let (o, h, n, x) = b.fractions();
            t.row(vec![
                w.name().to_string(),
                label.to_string(),
                pct(o),
                pct(h),
                pct(n),
                pct(x),
            ]);
        }
    }
    format!(
        "{}\npaper: ~45% opportunity over all misses vs ~47% at region granularity; triggers \
         5-15% lower in OLTP/web, higher in DSS; heads form a larger share of triggers.\n",
        t.render()
    )
}

/// Figure 8: correlation distance within spatial generations.
pub fn fig8(settings: Settings) -> String {
    let sys = system_config(settings.scale);
    let results = per_workload(settings, |_, trace| {
        correlation_distance(&filter_trace(trace, &sys).generations)
    });
    let mut t = Table::new(
        "Figure 8: correlation distance within generations (cumulative)",
        &[
            "workload", "+1 exact", "|d|<=2", "|d|<=4", "|d|<=6", "pairs", "unstable",
        ],
    );
    for (w, h) in &results {
        let exact = if h.comparable() == 0 {
            0.0
        } else {
            h.at(1) as f64 / h.comparable() as f64
        };
        let unstable = if h.total() == 0 {
            0.0
        } else {
            h.not_found as f64 / h.total() as f64
        };
        t.row(vec![
            w.name().to_string(),
            pct(exact),
            pct(h.within_window(2)),
            pct(h.within_window(4)),
            pct(h.within_window(6)),
            h.comparable().to_string(),
            pct(unstable),
        ]);
    }
    format!(
        "{}\npaper: >=86% within a reordering window of two and >=92% within four \
         (96%/92% excluding Qry16).\n",
        t.render()
    )
}

/// Per-predictor coverage numbers for one workload (Figure 9 row).
#[derive(Clone, Copy, Debug)]
pub struct CoverageRow {
    /// Baseline off-chip read misses (no prefetcher).
    pub baseline: u64,
    /// (covered fraction, overprediction fraction) per predictor in
    /// [`Predictor::STREAMING`] order.
    pub series: [(f64, f64); 3],
}

/// The data behind Figure 9, sharded one workload x predictor cell at a
/// time across the runner's worker threads.
pub fn fig9_data(settings: Settings) -> Vec<(Workload, CoverageRow)> {
    let sys = system_config(settings.scale);
    let cells = [
        Predictor::None,
        Predictor::Tms,
        Predictor::Sms,
        Predictor::Stems,
    ];
    per_workload_predictor(settings, &cells, |w, trace, p| {
        run_coverage(w, p, trace, &sys)
    })
    .into_iter()
    .map(|(w, counters)| {
        let base = counters[0].uncovered;
        let mut series = [(0.0, 0.0); 3];
        for (i, c) in counters[1..].iter().enumerate() {
            series[i] = (c.coverage_vs(base), c.overprediction_vs(base));
        }
        (
            w,
            CoverageRow {
                baseline: base,
                series,
            },
        )
    })
    .collect()
}

/// Figure 9: covered / uncovered / overpredicted per predictor.
pub fn fig9(settings: Settings) -> String {
    let results = fig9_data(settings);
    let mut t = Table::new(
        "Figure 9: coverage and overprediction (fractions of baseline off-chip read misses)",
        &[
            "workload",
            "baseline",
            "TMS cov",
            "TMS over",
            "SMS cov",
            "SMS over",
            "STeMS cov",
            "STeMS over",
        ],
    );
    for (w, row) in &results {
        t.row(vec![
            w.name().to_string(),
            row.baseline.to_string(),
            pct(row.series[0].0),
            pct(row.series[0].1),
            pct(row.series[1].0),
            pct(row.series[1].1),
            pct(row.series[2].0),
            pct(row.series[2].1),
        ]);
    }
    format!(
        "{}\npaper: STeMS covers ~8% more than the best underlying predictor in OLTP/web \
         (50-56%), matches SMS in DSS, lands between SMS and TMS on scientific; STeMS predicts \
         62% of misses and mispredicts 29% on average.\n",
        t.render()
    )
}

/// The data behind Figure 10: improvement % over the stride baseline per
/// predictor in [`Predictor::STREAMING`] order.
pub fn fig10_data(settings: Settings) -> Vec<(Workload, [f64; 3])> {
    let sys = system_config(settings.scale);
    let cells = [
        Predictor::Stride,
        Predictor::Tms,
        Predictor::Sms,
        Predictor::Stems,
    ];
    per_workload_predictor(settings, &cells, |w, trace, p| {
        run_timing(w, p, trace, &sys)
    })
    .into_iter()
    .map(|(w, reports)| {
        let base = &reports[0];
        let mut out = [0.0; 3];
        for (i, r) in reports[1..].iter().enumerate() {
            out[i] = r.improvement_percent_over(base);
        }
        (w, out)
    })
    .collect()
}

/// Figure 10: speedup over the stride baseline.
pub fn fig10(settings: Settings) -> String {
    let results = fig10_data(settings);
    let mut t = Table::new(
        "Figure 10: performance improvement over the stride baseline",
        &["workload", "TMS", "SMS", "STeMS"],
    );
    let mut means = [0.0f64; 3];
    for (w, imps) in &results {
        t.row(vec![
            w.name().to_string(),
            pct_signed(imps[0]),
            pct_signed(imps[1]),
            pct_signed(imps[2]),
        ]);
        for i in 0..3 {
            means[i] += (1.0 + imps[i] / 100.0).ln();
        }
    }
    let n = results.len() as f64;
    t.row(vec![
        "geomean".to_string(),
        pct_signed(((means[0] / n).exp() - 1.0) * 100.0),
        pct_signed(((means[1] / n).exp() - 1.0) * 100.0),
        pct_signed(((means[2] / n).exp() - 1.0) * 100.0),
    ]);
    format!(
        "{}\npaper: STeMS ~31% over baseline on commercial workloads (18%/3% over TMS/SMS); \
         TMS ~4x on em3d/sparse; SMS speedup small on OLTP despite coverage.\n",
        t.render()
    )
}

/// Section 5.5: the naive TMS+SMS hybrid's overpredictions vs STeMS.
pub fn naive_hybrid(settings: Settings) -> String {
    let sys = system_config(settings.scale);
    let cells = [Predictor::None, Predictor::Naive, Predictor::Stems];
    let results: Vec<_> = per_workload_predictor(settings, &cells, |w, trace, p| {
        run_coverage(w, p, trace, &sys)
    })
    .into_iter()
    .map(|(w, c)| (w, (c[0].uncovered, c[1], c[2])))
    .collect();
    let mut t = Table::new(
        "Section 5.5: naive TMS+SMS hybrid vs STeMS",
        &[
            "workload",
            "naive cov",
            "naive over",
            "STeMS cov",
            "STeMS over",
            "over ratio",
        ],
    );
    for (w, (base, naive, stems)) in &results {
        let ratio = if stems.overpredictions == 0 {
            f64::NAN
        } else {
            naive.overpredictions as f64 / stems.overpredictions as f64
        };
        t.row(vec![
            w.name().to_string(),
            pct(naive.coverage_vs(*base)),
            pct(naive.overprediction_vs(*base)),
            pct(stems.coverage_vs(*base)),
            pct(stems.overprediction_vs(*base)),
            format!("{ratio:.2}x"),
        ]);
    }
    format!(
        "{}\npaper: the side-by-side combination approaches joint coverage but generates \
         roughly 2-3x the overpredictions of STeMS in OLTP and web.\n",
        t.render()
    )
}

/// Section 4.3: reconstruction placement accuracy.
pub fn recon_stats(settings: Settings) -> String {
    let scale = settings.scale;
    let results = per_workload(settings, |w, trace| {
        let mut session = stems_core::Session::builder(&system_config(scale))
            .prefetch(&prefetch_config(w))
            .predictor(Predictor::Stems)
            .invalidations(w.invalidation_rate(), 7)
            .build();
        session.run(trace);
        session.recon_stats().expect("a STeMS session has stats")
    });
    let mut t = Table::new(
        "Section 4.3: reconstruction placement accuracy",
        &["workload", "exact", "within +-2", "attempts"],
    );
    let mut total = ReconStats::default();
    for (w, s) in &results {
        total.merge(s);
        t.row(vec![
            w.name().to_string(),
            pct(s.exact_fraction()),
            pct(s.placed_fraction()),
            s.attempts().to_string(),
        ]);
    }
    t.row(vec![
        "all".to_string(),
        pct(total.exact_fraction()),
        pct(total.placed_fraction()),
        total.attempts().to_string(),
    ]);
    format!(
        "{}\npaper: searching at most two elements forward or backward places 99% of \
         addresses, 92% in their original location.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The parallel cell runner must be invisible in the output: every
    /// figure rendered with one worker is byte-identical to the same
    /// figure rendered with many.
    #[test]
    fn parallel_figures_are_byte_identical_to_serial() {
        let serial = Settings {
            scale: 0.004,
            seed: 3,
            threads: 1,
            ..Settings::default()
        };
        let parallel = Settings {
            threads: 7,
            ..serial.clone()
        };
        for (name, f) in [
            ("fig6", fig6 as fn(Settings) -> String),
            ("fig9", fig9),
            ("naive_hybrid", naive_hybrid),
        ] {
            assert_eq!(
                f(serial.clone()),
                f(parallel.clone()),
                "{name}: parallel output must match serial byte-for-byte"
            );
        }
    }
}
