//! The Sequitur hierarchical grammar-inference algorithm
//! (Nevill-Manning & Witten, 1997 — reference 9 of the paper).
//!
//! Sequitur incrementally builds a context-free grammar whose production
//! rules correspond to repeated subsequences of its input, maintaining two
//! invariants: **digram uniqueness** (no pair of adjacent symbols occurs
//! twice in the grammar) and **rule utility** (every rule other than the
//! root is referenced at least twice). The paper uses it (Section 5.3,
//! Figure 7) to quantify temporal repetition in miss-address sequences.

use std::collections::HashMap;

const NIL: u32 = u32::MAX;

/// A grammar symbol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Sym {
    /// A terminal (interned input value).
    Term(u32),
    /// A reference to a rule.
    Rule(u32),
    /// A rule's guard node (sentinel, never part of a digram).
    Guard(u32),
}

#[derive(Clone, Debug)]
struct Node {
    sym: Sym,
    prev: u32,
    next: u32,
}

#[derive(Clone, Debug)]
struct RuleMeta {
    guard: u32,
    /// Node ids currently referencing this rule.
    uses: Vec<u32>,
}

/// Incremental Sequitur grammar builder.
///
/// # Example
///
/// ```
/// use stems_analysis::sequitur::Sequitur;
///
/// let mut s = Sequitur::new();
/// for v in [1u64, 2, 3, 1, 2, 3, 1, 2, 3] {
///     s.push(v);
/// }
/// let g = s.grammar();
/// assert_eq!(g.expand_root(), vec![1, 2, 3, 1, 2, 3, 1, 2, 3]);
/// assert!(g.rule_count() >= 1, "the repeat must become a rule");
/// ```
#[derive(Clone, Debug)]
pub struct Sequitur {
    nodes: Vec<Node>,
    free: Vec<u32>,
    rules: Vec<RuleMeta>,
    digrams: HashMap<(Sym, Sym), u32>,
    terms: Vec<u64>,
    intern: HashMap<u64, u32>,
    /// Rules whose use count dropped to one mid-surgery; inlined at the
    /// next safe point.
    pending_utility: Vec<u32>,
}

impl Default for Sequitur {
    fn default() -> Self {
        Sequitur::new()
    }
}

impl Sequitur {
    /// Creates an empty grammar with just the root rule.
    pub fn new() -> Self {
        let mut s = Sequitur {
            nodes: Vec::new(),
            free: Vec::new(),
            rules: Vec::new(),
            digrams: HashMap::new(),
            terms: Vec::new(),
            intern: HashMap::new(),
            pending_utility: Vec::new(),
        };
        s.new_rule(); // rule 0 = root
        s
    }

    fn alloc(&mut self, sym: Sym) -> u32 {
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = Node {
                sym,
                prev: NIL,
                next: NIL,
            };
            i
        } else {
            self.nodes.push(Node {
                sym,
                prev: NIL,
                next: NIL,
            });
            (self.nodes.len() - 1) as u32
        }
    }

    fn new_rule(&mut self) -> u32 {
        let id = self.rules.len() as u32;
        let guard = self.alloc(Sym::Guard(id));
        self.nodes[guard as usize].prev = guard;
        self.nodes[guard as usize].next = guard;
        self.rules.push(RuleMeta {
            guard,
            uses: Vec::new(),
        });
        id
    }

    fn sym(&self, n: u32) -> Sym {
        self.nodes[n as usize].sym
    }

    fn next(&self, n: u32) -> u32 {
        self.nodes[n as usize].next
    }

    fn prev(&self, n: u32) -> u32 {
        self.nodes[n as usize].prev
    }

    fn is_guard(&self, n: u32) -> bool {
        matches!(self.sym(n), Sym::Guard(_))
    }

    /// Removes the digram starting at `n` from the index (if it is the
    /// registered occurrence).
    fn forget_digram(&mut self, n: u32) {
        if self.is_guard(n) {
            return;
        }
        let m = self.next(n);
        if self.is_guard(m) {
            return;
        }
        let key = (self.sym(n), self.sym(m));
        if self.digrams.get(&key) == Some(&n) {
            self.digrams.remove(&key);
        }
    }

    /// Links `a -> b` (both existing nodes).
    fn join(&mut self, a: u32, b: u32) {
        self.nodes[a as usize].next = b;
        self.nodes[b as usize].prev = a;
    }

    /// Inserts `sym` after node `after`, returning the new node.
    fn insert_after(&mut self, after: u32, sym: Sym) -> u32 {
        let n = self.alloc(sym);
        let b = self.next(after);
        self.forget_digram(after);
        self.join(after, n);
        self.join(n, b);
        if let Sym::Rule(r) = sym {
            self.rules[r as usize].uses.push(n);
        }
        n
    }

    /// Unlinks and frees node `n`.
    fn delete_node(&mut self, n: u32) {
        let (p, x) = (self.prev(n), self.next(n));
        self.forget_digram(p);
        self.forget_digram(n);
        // Triple repair (the special case in classic Sequitur's join()):
        // in a run of equal symbols "aaa", only the first `aa` digram is
        // indexed and the overlapping one is shadowed. If `n` carried the
        // indexed occurrence, re-register the shadowed neighbour so later
        // occurrences still find a partner.
        let sym_n = self.sym(n);
        if !matches!(sym_n, Sym::Guard(_)) {
            let xn = self.next(x);
            if x != n && xn != x && self.sym(x) == sym_n && self.sym(xn) == sym_n {
                self.digrams.entry((sym_n, sym_n)).or_insert(x);
            }
            let pp = self.prev(p);
            if p != n && pp != p && self.sym(p) == sym_n && self.sym(pp) == sym_n {
                self.digrams.entry((sym_n, sym_n)).or_insert(pp);
            }
        }
        self.join(p, x);
        if let Sym::Rule(r) = self.sym(n) {
            let uses = &mut self.rules[r as usize].uses;
            uses.retain(|&u| u != n);
            if uses.len() == 1 {
                self.pending_utility.push(r);
            }
        }
        self.free.push(n);
    }

    /// Appends terminal `value` to the root rule and restores invariants.
    pub fn push(&mut self, value: u64) {
        let term = match self.intern.get(&value) {
            Some(&t) => t,
            None => {
                let t = self.terms.len() as u32;
                self.terms.push(value);
                self.intern.insert(value, t);
                t
            }
        };
        let root_guard = self.rules[0].guard;
        let last = self.prev(root_guard);
        let n = self.insert_after(last, Sym::Term(term));
        if !self.is_guard(self.prev(n)) {
            self.check(self.prev(n));
        }
        // Inline any rules left with a single reference by the cascade.
        while let Some(r) = self.pending_utility.pop() {
            if self.rules[r as usize].uses.len() == 1 {
                self.enforce_utility(Sym::Rule(r));
            }
        }
    }

    /// Enforces digram uniqueness for the digram starting at `a`.
    /// Returns `true` if a substitution happened.
    fn check(&mut self, a: u32) -> bool {
        let b = self.next(a);
        if self.is_guard(a) || self.is_guard(b) {
            return false;
        }
        let key = (self.sym(a), self.sym(b));
        match self.digrams.get(&key) {
            None => {
                self.digrams.insert(key, a);
                false
            }
            Some(&m) if m == a || self.next(m) == a || m == b => {
                // Same or overlapping occurrence (e.g. "aaa"): leave it.
                false
            }
            Some(&m) => {
                self.handle_match(a, m);
                true
            }
        }
    }

    /// `a` and `m` start identical digrams at distinct positions.
    fn handle_match(&mut self, a: u32, m: u32) {
        // If m..next(m) constitutes the whole body of a rule, reuse it.
        let full_rule = {
            let p = self.prev(m);
            let q = self.next(self.next(m));
            match (self.sym(p), self.sym(q)) {
                (Sym::Guard(r1), Sym::Guard(r2)) if r1 == r2 && r1 != 0 => Some(r1),
                _ => None,
            }
        };
        match full_rule {
            Some(r) => {
                self.substitute(a, r);
            }
            None => {
                // Create a new rule from the digram.
                let r = self.new_rule();
                let guard = self.rules[r as usize].guard;
                let s1 = self.sym(m);
                let s2 = self.sym(self.next(m));
                let n1 = self.insert_after(guard, s1);
                let _n2 = self.insert_after(n1, s2);
                // Index the rule's internal digram.
                self.digrams.insert((s1, s2), n1);
                // Replace both occurrences (old first, so the digram map
                // does not resurrect stale positions).
                self.substitute(m, r);
                self.substitute(a, r);
                // Rule utility: if the new rule's body references rules
                // now used only once, inline them.
                self.enforce_utility(s1);
                self.enforce_utility(s2);
            }
        }
    }

    /// Replaces the digram starting at `a` with a reference to rule `r`,
    /// then re-checks the surrounding digrams.
    fn substitute(&mut self, a: u32, r: u32) {
        let b = self.next(a);
        let p = self.prev(a);
        self.delete_node(b);
        self.delete_node(a);
        let n = self.insert_after(p, Sym::Rule(r));
        // Restore invariants around the new symbol; check the left digram
        // first (classic ordering).
        if !self.is_guard(self.prev(n)) && self.check(self.prev(n)) {
            return;
        }
        if !self.is_guard(self.next(n)) {
            self.check(n);
        }
    }

    /// Inlines `sym`'s rule if it is referenced exactly once (rule
    /// utility). The body's node list is *spliced* into the use site, so
    /// all internal digram index entries remain valid; only the two seam
    /// digrams need re-checking.
    fn enforce_utility(&mut self, sym: Sym) {
        let Sym::Rule(r) = sym else {
            return;
        };
        if self.rules[r as usize].uses.len() != 1 {
            return;
        }
        let use_node = self.rules[r as usize].uses[0];
        let guard = self.rules[r as usize].guard;
        let first = self.next(guard);
        let last = self.prev(guard);
        let p = self.prev(use_node);
        let q = self.next(use_node);
        // Detach the use node (forgetting its seam digrams).
        self.forget_digram(p);
        self.forget_digram(use_node);
        self.rules[r as usize].uses.clear();
        self.free.push(use_node);
        if first == guard {
            // Empty body: just close the gap.
            self.join(p, q);
        } else {
            self.join(p, first);
            self.join(last, q);
        }
        // Retire the rule.
        self.nodes[guard as usize].next = guard;
        self.nodes[guard as usize].prev = guard;
        // Re-check the seams, right one first so `p` stays valid.
        if first != guard && !self.is_guard(last) && !self.is_guard(self.next(last)) {
            self.check(last);
        }
        if !self.is_guard(p) && !self.is_guard(self.next(p)) {
            self.check(p);
        }
    }

    /// Extracts an immutable grammar snapshot for analysis.
    pub fn grammar(&self) -> Grammar {
        let mut rules = Vec::with_capacity(self.rules.len());
        for meta in &self.rules {
            let mut body = Vec::new();
            let mut cur = self.next(meta.guard);
            while cur != meta.guard {
                body.push(match self.sym(cur) {
                    Sym::Term(t) => GSym::Term(self.terms[t as usize]),
                    Sym::Rule(r) => GSym::Rule(r as usize),
                    Sym::Guard(_) => unreachable!("guard inside body"),
                });
                cur = self.next(cur);
            }
            rules.push(body);
        }
        Grammar { rules }
    }

    /// Builds a grammar from a complete sequence.
    pub fn build(seq: impl IntoIterator<Item = u64>) -> Grammar {
        let mut s = Sequitur::new();
        for v in seq {
            s.push(v);
        }
        s.grammar()
    }
}

/// A symbol in an extracted [`Grammar`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GSym {
    /// A terminal input value.
    Term(u64),
    /// A rule reference.
    Rule(usize),
}

/// An extracted grammar: rule 0 is the root.
#[derive(Clone, Debug)]
pub struct Grammar {
    rules: Vec<Vec<GSym>>,
}

impl Grammar {
    /// The root rule's body.
    pub fn root(&self) -> &[GSym] {
        &self.rules[0]
    }

    /// A rule's body.
    pub fn rule(&self, r: usize) -> &[GSym] {
        &self.rules[r]
    }

    /// Number of non-root rules with nonempty bodies.
    pub fn rule_count(&self) -> usize {
        self.rules[1..].iter().filter(|b| !b.is_empty()).count()
    }

    /// Expanded length of each rule.
    pub fn expansion_lengths(&self) -> Vec<u64> {
        let mut lens = vec![0u64; self.rules.len()];
        // Rules reference only earlier-created rules? Not guaranteed;
        // resolve with a simple fixpoint (grammars are acyclic).
        fn len(rules: &[Vec<GSym>], memo: &mut [u64], r: usize) -> u64 {
            if memo[r] != 0 {
                return memo[r];
            }
            let mut total = 0;
            for s in &rules[r] {
                total += match s {
                    GSym::Term(_) => 1,
                    GSym::Rule(q) => len(rules, memo, *q),
                };
            }
            memo[r] = total;
            total
        }
        for r in 0..self.rules.len() {
            len(&self.rules, &mut lens, r);
        }
        lens
    }

    /// Fully expands the root back to the input sequence.
    pub fn expand_root(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.expand_into(0, &mut out);
        out
    }

    fn expand_into(&self, r: usize, out: &mut Vec<u64>) {
        for s in &self.rules[r] {
            match s {
                GSym::Term(v) => out.push(*v),
                GSym::Rule(q) => self.expand_into(*q, out),
            }
        }
    }

    /// Verifies the digram-uniqueness invariant (diagnostic).
    ///
    /// Overlapping occurrences are exempt, as in the original algorithm:
    /// in `aaa` the two `aa` digrams share a symbol and cannot be folded.
    pub fn digrams_are_unique(&self) -> bool {
        let mut last: std::collections::HashMap<(GSym, GSym), (usize, usize)> =
            std::collections::HashMap::new();
        for (r, body) in self.rules.iter().enumerate() {
            for (i, w) in body.windows(2).enumerate() {
                let key = (w[0], w[1]);
                if let Some(&(pr, pi)) = last.get(&key) {
                    let overlaps = pr == r && pi + 1 == i && w[0] == w[1];
                    if !overlaps {
                        return false;
                    }
                }
                last.insert(key, (r, i));
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(input: &[u64]) -> Grammar {
        let g = Sequitur::build(input.iter().copied());
        assert_eq!(g.expand_root(), input, "expansion must reproduce input");
        g
    }

    #[test]
    fn empty_and_single() {
        let g = round_trip(&[]);
        assert_eq!(g.rule_count(), 0);
        round_trip(&[7]);
    }

    #[test]
    fn no_repetition_no_rules() {
        let g = round_trip(&[1, 2, 3, 4, 5]);
        assert_eq!(g.rule_count(), 0);
    }

    #[test]
    fn classic_abcabc() {
        let g = round_trip(&[1, 2, 3, 1, 2, 3]);
        assert!(g.rule_count() >= 1);
        assert!(g.digrams_are_unique());
        // Root should be two references to the same rule.
        assert_eq!(g.root().len(), 2);
        assert_eq!(g.root()[0], g.root()[1]);
    }

    #[test]
    fn nested_repetition_forms_hierarchy() {
        // abab abab -> rule for ab, rule for abab.
        let g = round_trip(&[1, 2, 1, 2, 1, 2, 1, 2]);
        assert!(g.rule_count() >= 2, "expected nested rules: {g:?}");
        assert!(g.digrams_are_unique());
    }

    #[test]
    fn overlapping_digrams_aaa() {
        round_trip(&[5, 5, 5]);
        round_trip(&[5, 5, 5, 5]);
        round_trip(&[5, 5, 5, 5, 5, 5, 5, 5, 5]);
    }

    #[test]
    fn utility_inlines_single_use_rules() {
        // Rule bodies must not contain rules used once.
        let g = round_trip(&[1, 2, 3, 4, 1, 2, 3, 4, 9, 1, 2, 3, 4]);
        let mut counts = vec![0usize; g.rules.len()];
        for body in &g.rules {
            for s in body {
                if let GSym::Rule(r) = s {
                    counts[*r] += 1;
                }
            }
        }
        for (r, &c) in counts.iter().enumerate().skip(1) {
            if !g.rules[r].is_empty() {
                assert!(c >= 2, "rule {r} used {c} times: {g:?}");
            }
        }
    }

    #[test]
    fn long_periodic_input_compresses_well() {
        let period: Vec<u64> = (0..50).collect();
        let input: Vec<u64> = (0..20).flat_map(|_| period.clone()).collect();
        let g = round_trip(&input);
        // 1000 symbols of pure repetition: the root must be far shorter.
        assert!(
            g.root().len() < 200,
            "root length {} for periodic input",
            g.root().len()
        );
        assert!(g.digrams_are_unique());
    }

    #[test]
    fn pseudorandom_round_trip_stress() {
        let mut x = 0x12345u64;
        let input: Vec<u64> = (0..3000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % 40 // small alphabet -> plenty of repetition
            })
            .collect();
        let g = round_trip(&input);
        assert!(g.digrams_are_unique());
    }

    #[test]
    fn expansion_lengths_sum_matches() {
        let input = [1u64, 2, 3, 1, 2, 3, 1, 2, 3, 4];
        let g = round_trip(&input);
        let lens = g.expansion_lengths();
        assert_eq!(lens[0] as usize, input.len());
    }
}
