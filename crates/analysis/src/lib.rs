//! Workload-characterization analyses for the STeMS reproduction
//! (the paper's Sections 5.2-5.4).
//!
//! * [`filter`] — extracts the off-chip read-miss sequence and spatial
//!   generation structure from a raw trace (the front end for all
//!   analyses);
//! * [`joint`] — Figure 6: each miss classified by idealized temporal /
//!   spatial predictability;
//! * [`sequitur`] + [`repetition`] — Figure 7: grammar-based temporal
//!   repetition breakdown of miss and trigger sequences;
//! * [`corr`] — Figure 8: correlation distance within spatial
//!   generations.
//!
//! # Example
//!
//! ```
//! use stems_analysis::{filter::filter_trace, joint::joint_analysis};
//! use stems_memsim::SystemConfig;
//! use stems_trace::Trace;
//!
//! let mut t = Trace::new();
//! for pass in 0..2 {
//!     for i in 0..64u64 {
//!         t.read(0x400, (i * 7919 % 512) * 2048 + (1 << 30));
//!     }
//!     let _ = pass;
//! }
//! let misses = filter_trace(&t, &SystemConfig::small()).misses;
//! let joint = joint_analysis(&misses);
//! assert!(joint.temporal_fraction() > 0.3); // the second pass repeats
//! ```

pub mod corr;
pub mod filter;
pub mod joint;
pub mod repetition;
pub mod sequitur;

pub use corr::{correlation_distance, CorrDistanceHist};
pub use filter::{filter_trace, FilterOutput, GenerationRecord, MissRecord};
pub use joint::{joint_analysis, JointBreakdown};
pub use repetition::{classify, classify_grammar, RepetitionBreakdown};
pub use sequitur::{GSym, Grammar, Sequitur};
