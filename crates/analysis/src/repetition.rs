//! Figure 7: Sequitur-based temporal-repetition classification.
//!
//! Each element of an address sequence is classified as:
//!
//! * **non-repetitive** — not part of any repeated subsequence;
//! * **new** — part of the first occurrence of a repeated subsequence;
//! * **head** — the first element of a later occurrence (the element a
//!   temporal stream must miss on to locate the sequence);
//! * **opportunity** — the remaining elements of later occurrences (what
//!   temporal streaming can prefetch).

use crate::sequitur::{GSym, Grammar, Sequitur};

/// Element counts per repetition class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepetitionBreakdown {
    /// Elements outside any repeated subsequence.
    pub non_repetitive: u64,
    /// Elements of first occurrences.
    pub new: u64,
    /// First elements of repeat occurrences.
    pub head: u64,
    /// Non-head elements of repeat occurrences.
    pub opportunity: u64,
}

impl RepetitionBreakdown {
    /// Total classified elements.
    pub fn total(&self) -> u64 {
        self.non_repetitive + self.new + self.head + self.opportunity
    }

    /// The fraction of elements in each class, ordered as
    /// `(opportunity, head, new, non_repetitive)` — the stacking order of
    /// Figure 7.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let t = self.total().max(1) as f64;
        (
            self.opportunity as f64 / t,
            self.head as f64 / t,
            self.new as f64 / t,
            self.non_repetitive as f64 / t,
        )
    }
}

/// Classifies `sequence` by building its Sequitur grammar and walking the
/// root rule: rule references are repeated subsequences (first occurrence
/// = new, later = head + opportunity); top-level terminals are
/// non-repetitive.
pub fn classify(sequence: impl IntoIterator<Item = u64>) -> RepetitionBreakdown {
    let grammar = Sequitur::build(sequence);
    classify_grammar(&grammar)
}

/// Classifies an already-built grammar (see [`classify`]).
///
/// The walk recurses into the *first* occurrence of each rule so nested
/// repetition is credited: inside a first occurrence, later occurrences of
/// inner rules still count as head + opportunity, and only genuinely
/// first-seen elements count as new.
pub fn classify_grammar(grammar: &Grammar) -> RepetitionBreakdown {
    let lens = grammar.expansion_lengths();
    let mut seen = vec![false; lens.len()];
    let mut out = RepetitionBreakdown::default();
    walk(grammar, &lens, &mut seen, grammar.root(), true, &mut out);
    out
}

fn walk(
    grammar: &Grammar,
    lens: &[u64],
    seen: &mut [bool],
    body: &[GSym],
    top: bool,
    out: &mut RepetitionBreakdown,
) {
    for sym in body {
        match sym {
            GSym::Term(_) => {
                if top {
                    out.non_repetitive += 1;
                } else {
                    out.new += 1;
                }
            }
            GSym::Rule(r) => {
                if seen[*r] {
                    out.head += 1;
                    out.opportunity += lens[*r] - 1;
                } else {
                    seen[*r] = true;
                    walk(grammar, lens, seen, grammar.rule(*r), false, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_repetition_is_mostly_opportunity() {
        let seq: Vec<u64> = (0..10).cycle().take(100).collect();
        let b = classify(seq);
        assert_eq!(b.total(), 100);
        assert!(
            b.opportunity > 60,
            "periodic input should be dominated by opportunity: {b:?}"
        );
        assert_eq!(b.non_repetitive, 0);
    }

    #[test]
    fn unique_elements_are_non_repetitive() {
        let seq: Vec<u64> = (0..100).collect();
        let b = classify(seq);
        assert_eq!(b.non_repetitive, 100);
        assert_eq!(b.opportunity, 0);
    }

    #[test]
    fn first_occurrence_counts_as_new() {
        // abcabc: first abc = new (3), second = head(1) + opportunity(2).
        let b = classify([1u64, 2, 3, 1, 2, 3]);
        assert_eq!(b.total(), 6);
        assert_eq!(b.new, 3);
        assert_eq!(b.head, 1);
        assert_eq!(b.opportunity, 2);
        assert_eq!(b.non_repetitive, 0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let b = classify([1u64, 2, 3, 1, 2, 3, 9, 10, 11]);
        let (o, h, n, x) = b.fractions();
        assert!((o + h + n + x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sequence() {
        let b = classify(std::iter::empty());
        assert_eq!(b.total(), 0);
        let (o, ..) = b.fractions();
        assert_eq!(o, 0.0);
    }
}
