//! The trace-analysis front end: extracts the off-chip read-miss sequence,
//! generation structure, and idealized-SMS annotations from a raw trace.
//!
//! The paper's workload-characterization results (Figures 6-8) are
//! computed over memory traces collected without prefetching
//! (Section 5.1). This pass replays a trace through one node's L1/L2
//! hierarchy and an SMS-style active generation table, emitting:
//!
//! * the sequence of off-chip read misses, each annotated with whether it
//!   is a *spatial trigger* (the first miss of its generation) and whether
//!   an idealized SMS would have predicted it;
//! * each completed generation's within-region first-touch sequence,
//!   keyed by its spatial prediction index (for Figure 8).

use std::collections::HashMap;

use stems_core::sms::spatial_index;
use stems_core::util::LruTable;
use stems_memsim::{Hierarchy, Level, SystemConfig};
use stems_trace::Trace;
use stems_types::{BlockAddr, Pc, RegionAddr, SpatialPattern};

/// One off-chip read miss in program order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MissRecord {
    /// PC of the miss instruction.
    pub pc: Pc,
    /// Missing block.
    pub block: BlockAddr,
    /// First off-chip read miss of its spatial generation.
    pub trigger: bool,
    /// An idealized (unbounded-table) SMS would have prefetched it.
    pub sms_predictable: bool,
}

/// One completed spatial generation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenerationRecord {
    /// Spatial prediction index (trigger PC + offset).
    pub index: u64,
    /// Block offsets in first-touch order (trigger first).
    pub offsets: Vec<u8>,
}

/// Output of [`filter_trace`].
#[derive(Clone, Debug, Default)]
pub struct FilterOutput {
    /// Off-chip read misses in order.
    pub misses: Vec<MissRecord>,
    /// Completed generations in completion order.
    pub generations: Vec<GenerationRecord>,
}

#[derive(Clone, Debug)]
struct GenState {
    index: u64,
    offsets: Vec<u8>,
    touched: SpatialPattern,
    predicted: SpatialPattern,
    had_miss: bool,
    first_access_block: BlockAddr,
}

impl Default for GenState {
    fn default() -> Self {
        GenState {
            index: 0,
            offsets: Vec::new(),
            touched: SpatialPattern::empty(),
            predicted: SpatialPattern::empty(),
            had_miss: false,
            first_access_block: BlockAddr::new(0),
        }
    }
}

/// Replays `trace` through an un-prefetched hierarchy, producing the miss
/// and generation structure (see module docs).
pub fn filter_trace(trace: &Trace, system: &SystemConfig) -> FilterOutput {
    let mut hierarchy = Hierarchy::new(system);
    let mut agt: LruTable<RegionAddr, GenState> = LruTable::new(64);
    // Idealized SMS history: unbounded, most-recent pattern per index.
    let mut pht: HashMap<u64, SpatialPattern> = HashMap::new();
    let mut out = FilterOutput::default();

    let end_generation = |agt: &mut LruTable<RegionAddr, GenState>,
                          pht: &mut HashMap<u64, SpatialPattern>,
                          out: &mut FilterOutput,
                          region: RegionAddr| {
        if let Some(gen) = agt.remove(&region) {
            pht.insert(gen.index, gen.touched);
            if !gen.offsets.is_empty() {
                out.generations.push(GenerationRecord {
                    index: gen.index,
                    offsets: gen.offsets,
                });
            }
        }
    };

    for access in trace.iter() {
        let block = access.addr.block();
        let region = block.region();
        let offset = block.offset_in_region();
        let outcome = hierarchy.access(block, !access.is_read());
        for evicted in &outcome.l1_evicted {
            let evicted_region = evicted.region();
            let ends = agt
                .peek(&evicted_region)
                .is_some_and(|g| g.touched.contains(evicted.offset_in_region()));
            if ends {
                end_generation(&mut agt, &mut pht, &mut out, evicted_region);
            }
        }
        let in_generation = agt.contains(&region);
        if !in_generation {
            // Trigger access: open a generation (prediction snapshot).
            let index = spatial_index(access.pc, offset);
            let predicted = pht.get(&index).copied().unwrap_or_default();
            let mut touched = SpatialPattern::empty();
            touched.set(offset);
            let state = GenState {
                index,
                offsets: vec![offset.get()],
                touched,
                predicted,
                had_miss: false,
                first_access_block: block,
            };
            if let Some((victim_region, victim)) = agt.insert(region, state) {
                // Capacity eviction completes the victim's generation.
                let _ = victim_region;
                pht.insert(victim.index, victim.touched);
                if !victim.offsets.is_empty() {
                    out.generations.push(GenerationRecord {
                        index: victim.index,
                        offsets: victim.offsets,
                    });
                }
            }
        } else if let Some(gen) = agt.get(&region) {
            if !gen.touched.contains(offset) {
                gen.touched.set(offset);
                gen.offsets.push(offset.get());
            }
        }

        if access.is_read() && outcome.level == Level::Memory {
            let gen = agt.get(&region).expect("generation opened above");
            let trigger = !gen.had_miss;
            gen.had_miss = true;
            // SMS covers pattern blocks other than the one that began the
            // generation (nothing is in flight for the first access).
            let sms_predictable = gen.predicted.contains(offset) && gen.first_access_block != block;
            out.misses.push(MissRecord {
                pc: access.pc,
                block,
                trigger,
                sms_predictable,
            });
        }
    }
    // Flush generations still open at end of trace.
    let open_regions: Vec<RegionAddr> = agt.iter().map(|(&r, _)| r).collect();
    for region in open_regions {
        end_generation(&mut agt, &mut pht, &mut out, region);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SystemConfig {
        SystemConfig::small()
    }

    #[test]
    fn every_cold_miss_is_recorded_with_triggers() {
        let mut t = Trace::new();
        // Two regions, two blocks each, all cold.
        t.read(0x1, 0); // region 0 trigger
        t.read(0x2, 320); // region 0, offset 5
        t.read(0x3, 1 << 20); // region 512 trigger
        let out = filter_trace(&t, &sys());
        assert_eq!(out.misses.len(), 3);
        assert!(out.misses[0].trigger);
        assert!(!out.misses[1].trigger);
        assert!(out.misses[2].trigger);
    }

    #[test]
    fn repeated_layout_becomes_sms_predictable() {
        let mut t = Trace::new();
        for r in 0..20u64 {
            let base = (1 << 30) + r * 2048;
            t.read(0x10, base); // trigger, offset 0
            t.read(0x11, base + 4 * 64); // offset 4
        }
        let out = filter_trace(&t, &sys());
        // After the first generation trains, the offset-4 misses are
        // predictable; triggers never are.
        let offset4: Vec<&MissRecord> = out
            .misses
            .iter()
            .filter(|m| m.block.offset_in_region().get() == 4)
            .collect();
        assert!(offset4.len() >= 10);
        assert!(!offset4[0].sms_predictable, "nothing learned yet");
        assert!(offset4[5].sms_predictable);
        assert!(out
            .misses
            .iter()
            .filter(|m| m.trigger)
            .all(|m| { m.block.offset_in_region().get() != 4 || !m.sms_predictable }));
    }

    #[test]
    fn generations_capture_first_touch_order() {
        let mut t = Trace::new();
        let base = 1 << 30;
        t.read(0x1, base + 3 * 64);
        t.read(0x2, base + 9 * 64);
        t.read(0x3, base + 64);
        t.read(0x3, base + 9 * 64); // re-touch: not recorded twice
        let out = filter_trace(&t, &sys());
        assert_eq!(out.generations.len(), 1);
        assert_eq!(out.generations[0].offsets, vec![3, 9, 1]);
    }

    #[test]
    fn l1_hits_do_not_create_misses() {
        let mut t = Trace::new();
        t.read(0x1, 4096);
        t.read(0x1, 4096);
        let out = filter_trace(&t, &sys());
        assert_eq!(out.misses.len(), 1);
    }
}
