//! Figure 6: joint classification of off-chip read misses by idealized
//! temporal and spatial predictability (both / TMS-only / SMS-only /
//! neither).
//!
//! A miss is **temporally** predictable when following the recorded miss
//! order from the previous miss's most recent prior occurrence would have
//! predicted it (the successor relation TMS replays, Section 2.2). It is
//! **spatially** predictable when the idealized SMS annotation from the
//! filter pass says the generation's trigger lookup covered its offset.

use std::collections::HashMap;

use stems_types::BlockAddr;

use crate::filter::MissRecord;

/// Counts of misses per joint class (the four stacks of Figure 6).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JointBreakdown {
    /// Predictable by both techniques.
    pub both: u64,
    /// Only temporally predictable.
    pub tms_only: u64,
    /// Only spatially predictable.
    pub sms_only: u64,
    /// Predictable by neither.
    pub neither: u64,
}

impl JointBreakdown {
    /// Total classified misses.
    pub fn total(&self) -> u64 {
        self.both + self.tms_only + self.sms_only + self.neither
    }

    /// Fractions in stack order `(both, tms_only, sms_only, neither)`.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let t = self.total().max(1) as f64;
        (
            self.both as f64 / t,
            self.tms_only as f64 / t,
            self.sms_only as f64 / t,
            self.neither as f64 / t,
        )
    }

    /// Fraction predictable temporally (both + TMS-only).
    pub fn temporal_fraction(&self) -> f64 {
        let (b, t, ..) = self.fractions();
        b + t
    }

    /// Fraction predictable spatially (both + SMS-only).
    pub fn spatial_fraction(&self) -> f64 {
        let (b, _, s, _) = self.fractions();
        b + s
    }

    /// Fraction predictable by at least one technique.
    pub fn joint_fraction(&self) -> f64 {
        1.0 - self.fractions().3
    }
}

/// Classifies each miss of `misses` (see module docs).
pub fn joint_analysis(misses: &[MissRecord]) -> JointBreakdown {
    let mut last_occurrence: HashMap<BlockAddr, usize> = HashMap::new();
    let mut out = JointBreakdown::default();
    for i in 0..misses.len() {
        let tms = i > 0
            && last_occurrence
                .get(&misses[i - 1].block)
                .map(|&p| p + 1 < misses.len() && misses[p + 1].block == misses[i].block)
                .unwrap_or(false);
        let sms = misses[i].sms_predictable;
        match (tms, sms) {
            (true, true) => out.both += 1,
            (true, false) => out.tms_only += 1,
            (false, true) => out.sms_only += 1,
            (false, false) => out.neither += 1,
        }
        if i > 0 {
            last_occurrence.insert(misses[i - 1].block, i - 1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_types::Pc;

    fn miss(block: u64, sms: bool) -> MissRecord {
        MissRecord {
            pc: Pc::new(0),
            block: BlockAddr::new(block),
            trigger: false,
            sms_predictable: sms,
        }
    }

    #[test]
    fn repeated_pair_sequence_is_temporal() {
        // Sequence abc abc: second occurrence of b and c follows known
        // successors.
        let misses: Vec<MissRecord> = [1u64, 2, 3, 1, 2, 3]
            .iter()
            .map(|&b| miss(b, false))
            .collect();
        let out = joint_analysis(&misses);
        assert_eq!(out.tms_only, 2); // the second b and c
        assert_eq!(out.neither, 4);
    }

    #[test]
    fn fresh_addresses_are_never_temporal() {
        let misses: Vec<MissRecord> = (0..10).map(|b| miss(b, false)).collect();
        let out = joint_analysis(&misses);
        assert_eq!(out.temporal_fraction(), 0.0);
        assert_eq!(out.neither, 10);
    }

    #[test]
    fn sms_annotation_flows_through() {
        let misses = vec![miss(1, true), miss(2, false), miss(3, true)];
        let out = joint_analysis(&misses);
        assert_eq!(out.sms_only, 2);
        assert!((out.spatial_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn both_requires_both_signals() {
        let misses: Vec<MissRecord> = [1u64, 2, 1, 2].iter().map(|&b| miss(b, true)).collect();
        let out = joint_analysis(&misses);
        // Miss 3 (block 2) is temporally predicted (1->2 seen) and SMS-
        // annotated.
        assert_eq!(out.both, 1);
        assert_eq!(out.sms_only, 3);
        assert!((out.joint_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let out = joint_analysis(&[]);
        assert_eq!(out.total(), 0);
    }
}
