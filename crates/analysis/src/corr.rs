//! Figure 8: correlation distance within spatial generations.
//!
//! For each completed generation, compare its access sequence with the
//! *prior* occurrence of the same spatial index: for every pair of
//! consecutive offsets in the new sequence, the correlation distance is
//! the positional distance between those two offsets in the prior
//! sequence. A distance of +1 is perfect repetition; anything else is a
//! reordering jump. The paper reports >=86% of accesses within a
//! reordering window of two and >=92% within four (Section 5.4).

use std::collections::HashMap;

use crate::filter::GenerationRecord;

/// Maximum tracked |distance|; the paper plots ±6 (96% of accesses).
pub const MAX_DISTANCE: i32 = 6;

/// Histogram of correlation distances (−6..−1, +1..+6, plus out-of-range
/// and not-found buckets).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CorrDistanceHist {
    counts: HashMap<i32, u64>,
    /// Pairs whose distance exceeded ±MAX_DISTANCE.
    pub beyond: u64,
    /// Pairs with an offset absent from the prior sequence.
    pub not_found: u64,
}

impl CorrDistanceHist {
    /// Records one distance observation.
    pub fn record(&mut self, distance: i32) {
        if distance.abs() > MAX_DISTANCE {
            self.beyond += 1;
        } else {
            *self.counts.entry(distance).or_default() += 1;
        }
    }

    /// Count at a specific distance.
    pub fn at(&self, distance: i32) -> u64 {
        self.counts.get(&distance).copied().unwrap_or(0)
    }

    /// Total observations (including beyond/not-found diagnostics).
    pub fn total(&self) -> u64 {
        self.comparable() + self.not_found
    }

    /// Comparable pairs: both offsets recurred, so a distance exists.
    /// This is the denominator of the paper's Figure 8, which measures
    /// how *spatially predictable* accesses recur.
    pub fn comparable(&self) -> u64 {
        self.counts.values().sum::<u64>() + self.beyond
    }

    /// Fraction of comparable pairs with |distance| <= `window` (the
    /// paper's "reordering window").
    pub fn within_window(&self, window: i32) -> f64 {
        let total = self.comparable();
        if total == 0 {
            return 0.0;
        }
        let mut inside = 0;
        for d in -window..=window {
            if d != 0 {
                inside += self.at(d);
            }
        }
        inside as f64 / total as f64
    }

    /// Cumulative fractions at distances −6..−1,1..6 in plot order
    /// (the series of Figure 8).
    pub fn cumulative_series(&self) -> Vec<(i32, f64)> {
        let total = self.comparable().max(1) as f64;
        let mut acc = 0u64;
        let mut out = Vec::new();
        for d in (-MAX_DISTANCE..=MAX_DISTANCE).filter(|&d| d != 0) {
            acc += self.at(d);
            out.push((d, acc as f64 / total));
        }
        out
    }
}

/// Computes the correlation-distance histogram over a stream of completed
/// generations: each is compared against the previous occurrence of its
/// index, then becomes the stored occurrence.
///
/// Following the paper, the comparison is over the *spatially
/// predictable* accesses: both sequences are first restricted to their
/// common offsets (an offset present in only one occurrence is unstable
/// and cannot recur at any distance; it is tallied in `not_found`).
/// Positions are measured within the restricted sequences, so perfect
/// repetition of the stable pattern yields a distance of +1.
pub fn correlation_distance(generations: &[GenerationRecord]) -> CorrDistanceHist {
    let mut hist = CorrDistanceHist::default();
    let mut prior: HashMap<u64, Vec<u8>> = HashMap::new();
    for gen in generations {
        if let Some(prev) = prior.get(&gen.index) {
            let in_prev: std::collections::HashSet<u8> = prev.iter().copied().collect();
            let in_new: std::collections::HashSet<u8> = gen.offsets.iter().copied().collect();
            let prev_common: Vec<u8> = prev
                .iter()
                .copied()
                .filter(|o| in_new.contains(o))
                .collect();
            let new_common: Vec<u8> = gen
                .offsets
                .iter()
                .copied()
                .filter(|o| in_prev.contains(o))
                .collect();
            hist.not_found += (gen.offsets.len() - new_common.len()) as u64;
            let pos: HashMap<u8, usize> = prev_common
                .iter()
                .enumerate()
                .map(|(i, &o)| (o, i))
                .collect();
            for pair in new_common.windows(2) {
                let a = pos[&pair[0]];
                let b = pos[&pair[1]];
                hist.record(b as i32 - a as i32);
            }
        }
        prior.insert(gen.index, gen.offsets.clone());
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(index: u64, offsets: &[u8]) -> GenerationRecord {
        GenerationRecord {
            index,
            offsets: offsets.to_vec(),
        }
    }

    #[test]
    fn perfect_repetition_is_all_plus_one() {
        let gens = vec![gen(1, &[0, 3, 7, 9]), gen(1, &[0, 3, 7, 9])];
        let h = correlation_distance(&gens);
        assert_eq!(h.at(1), 3);
        assert_eq!(h.total(), 3);
        assert!((h.within_window(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_produces_symmetric_jumps() {
        // Prior 0,3,7; new 0,7,3: (0,7) -> +2, (7,3) -> -1.
        let gens = vec![gen(1, &[0, 3, 7]), gen(1, &[0, 7, 3])];
        let h = correlation_distance(&gens);
        assert_eq!(h.at(2), 1);
        assert_eq!(h.at(-1), 1);
    }

    #[test]
    fn first_occurrence_is_not_compared() {
        let gens = vec![gen(1, &[0, 1]), gen(2, &[0, 1])];
        let h = correlation_distance(&gens);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn missing_offsets_counted_separately() {
        let gens = vec![gen(1, &[0, 3]), gen(1, &[0, 9])];
        let h = correlation_distance(&gens);
        assert_eq!(h.not_found, 1);
        // The surviving common subsequence is just [0]: no pairs.
        assert_eq!(h.comparable(), 0);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn unstable_offsets_do_not_distort_stable_distances() {
        // Stable pattern 0,3,7 with a different noise offset in each
        // occurrence: the stable pairs must still measure +1.
        let gens = vec![gen(1, &[0, 14, 3, 7]), gen(1, &[0, 3, 21, 7])];
        let h = correlation_distance(&gens);
        assert_eq!(h.at(1), 2);
        assert_eq!(h.not_found, 1); // offset 21
    }

    #[test]
    fn comparison_is_against_most_recent_occurrence() {
        let gens = vec![
            gen(1, &[0, 3, 7]),
            gen(1, &[0, 7, 3]), // vs first
            gen(1, &[0, 7, 3]), // vs second: perfect
        ];
        let h = correlation_distance(&gens);
        assert_eq!(h.at(1), 2); // the third generation's two pairs
    }

    #[test]
    fn cumulative_series_is_monotonic() {
        let gens = vec![gen(1, &[0, 3, 7, 9, 11]), gen(1, &[0, 7, 3, 11, 9])];
        let h = correlation_distance(&gens);
        let series = h.cumulative_series();
        assert_eq!(series.len(), 12);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }
}
