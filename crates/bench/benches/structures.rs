//! Microbenchmarks of the predictor substrates: these are the per-access
//! hot paths of the simulator, so their throughput bounds every
//! experiment's runtime.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use stems_analysis::Sequitur;
use stems_core::engine::{CoverageSim, NullPrefetcher};
use stems_core::util::{LruTable, OrderBuffer};
use stems_core::{PrefetchConfig, SmsPrefetcher, StemsPrefetcher, TmsPrefetcher};
use stems_memsim::{Cache, CacheConfig, SystemConfig};
use stems_types::BlockAddr;
use stems_workloads::Workload;

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("setassoc_access_10k", |b| {
        let cfg = CacheConfig {
            size_bytes: 64 * 1024,
            associativity: 2,
        };
        b.iter(|| {
            let mut cache = Cache::new(&cfg);
            for i in 0..10_000u64 {
                cache.access(BlockAddr::new((i * 7919) % 4096), false);
            }
            black_box(cache.misses())
        })
    });
    g.finish();
}

fn bench_hierarchy_probe(c: &mut Criterion) {
    use stems_memsim::Hierarchy;

    let sys = SystemConfig::small();
    let mut g = c.benchmark_group("hierarchy");
    g.throughput(Throughput::Elements(10_000));
    // The single-pass pipeline vs the retained scalar two-call path over
    // an identical L1-hit-heavy mix: the difference is the per-access
    // overhead the probe rewrite removes.
    g.bench_function("probe_10k", |b| {
        b.iter(|| {
            let mut h = Hierarchy::new(&sys);
            let mut evicted = Vec::new();
            for i in 0..10_000u64 {
                let block = BlockAddr::new((i * 29) % 96);
                evicted.clear();
                black_box(h.probe(block, false, || false, &mut evicted));
            }
            black_box(h.l1_misses())
        })
    });
    g.bench_function("scalar_10k", |b| {
        b.iter(|| {
            let mut h = Hierarchy::new(&sys);
            let mut evicted = Vec::new();
            for i in 0..10_000u64 {
                let block = BlockAddr::new((i * 29) % 96);
                evicted.clear();
                if !h.access_l1_hit(block, false) {
                    black_box(h.access_after_l1_miss(block, false, &mut evicted));
                }
            }
            black_box(h.l1_misses())
        })
    });
    g.finish();
}

fn bench_lru(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru_table");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("insert_get_10k", |b| {
        b.iter(|| {
            let mut t: LruTable<u64, u64> = LruTable::new(1024);
            for i in 0..10_000u64 {
                t.insert(i % 2048, i);
                black_box(t.get(&(i % 1024)));
            }
            t.len()
        })
    });
    g.finish();
}

fn bench_order_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("order_buffer");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("append_lookup_10k", |b| {
        b.iter(|| {
            let mut buf: OrderBuffer<BlockAddr> = OrderBuffer::new(4096);
            for i in 0..10_000u64 {
                buf.append(BlockAddr::new(i % 3000));
                black_box(buf.lookup(BlockAddr::new((i * 13) % 3000)));
            }
            buf.appended()
        })
    });
    g.finish();
}

fn bench_sequitur(c: &mut Criterion) {
    let mut g = c.benchmark_group("sequitur");
    g.throughput(Throughput::Elements(20_000));
    g.bench_function("build_20k_periodic", |b| {
        let input: Vec<u64> = (0..20_000).map(|i| (i % 173) as u64).collect();
        b.iter(|| Sequitur::build(input.iter().copied()))
    });
    g.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_generation");
    for w in [Workload::Db2, Workload::Qry2, Workload::Em3d] {
        g.bench_function(w.name(), |b| {
            b.iter(|| black_box(w.generate_scaled(0.01, 1)).len())
        });
    }
    g.finish();
}

/// Bitmap-ring vs retained-deque reconstruction placement (PR 5): an
/// identical RMOB/PST stream is expanded and drained through both window
/// implementations, so the win from mask-and-shift slot probes and
/// set-bit drains is measurable in isolation from the rest of STeMS.
fn bench_recon_window(c: &mut Criterion) {
    use stems_core::sms::spatial_index;
    use stems_core::stems::recon::oracle::DequeReconstructor;
    use stems_core::stems::{Pst, Reconstructor, Rmob, RmobEntry};
    use stems_types::{BlockOffset, Delta, Pc, RegionAddr};

    // A sparse skeleton: large temporal deltas leave long empty-slot runs
    // between placements, so the drain path (set-bit walk vs per-slot
    // pops) and slot probing dominate over PST expansion overhead, while
    // the clustered spatial sequences still force ±search probing.
    let mut rmob = Rmob::new(8192);
    for i in 0..4000u64 {
        rmob.append(RmobEntry {
            block: RegionAddr::new(i % 97).block_at(BlockOffset::new((i * 7 % 32) as u8)),
            pc: Pc::new(1 + i % 5),
            delta: Delta::from((11 + (i % 3) * 17) as u8),
        });
    }
    let mut pst = Pst::new(256);
    for i in 0..5u64 {
        for o in 0..32u8 {
            let seq: stems_types::SpatialSequence = (0..4)
                .map(|k| (BlockOffset::new((o + 5 * k + 1) % 32), Delta::from(k % 2)))
                .collect();
            for _ in 0..2 {
                pst.train(spatial_index(Pc::new(1 + i), BlockOffset::new(o)), &seq);
            }
        }
    }
    let mut g = c.benchmark_group("recon_window");
    g.throughput(Throughput::Elements(4000));
    g.bench_function("bitmap_ring_place_drain", |b| {
        let mut out = std::collections::VecDeque::new();
        b.iter(|| {
            let mut r = Reconstructor::new(0, 256, 2);
            out.clear();
            while r.produce_into(64, &rmob, &mut pst, |_, _| {}, &mut out) > 0 {
                out.clear();
            }
            black_box(r.stats.attempts())
        })
    });
    g.bench_function("deque_place_drain", |b| {
        let mut out = std::collections::VecDeque::new();
        b.iter(|| {
            let mut r = DequeReconstructor::new(0, 256, 2);
            out.clear();
            while r.produce_into(64, &rmob, &mut pst, |_, _| {}, &mut out) > 0 {
                out.clear();
            }
            black_box(r.stats.attempts())
        })
    });
    g.finish();
}

/// Open-addressed PST vs the retained `LruTable`-backed oracle (PR 6)
/// under a reconstruction-expansion key distribution: spatial indices
/// from a handful of trigger PCs crossed with the 32 region offsets, a
/// hit-heavy mix with a miss tail, probed scalar and batched. The
/// batched variant does the full expansion-path work — `lookup_regions`
/// over 8-index batches plus a deferred `touch` per hit — so its row is
/// directly the per-expansion cost the Reconstructor pays.
fn bench_pst_probe(c: &mut Criterion) {
    use stems_core::sms::spatial_index;
    use stems_core::stems::pst::{oracle::LruPst, Pst, PST_MISS};
    use stems_types::{BlockOffset, Delta, Pc};

    // Figure-run scale: a few thousand resident sequences (48 trigger
    // PCs x 32 offsets), so probes walk memory the way em3d's do rather
    // than hitting a cache-resident toy table.
    let trained_pcs = 48u64;
    let mut open = Pst::new(4096);
    let mut lru = LruPst::new(4096);
    for pc in 0..trained_pcs {
        for o in 0..32u8 {
            let seq: stems_types::SpatialSequence = (0..4)
                .map(|k| (BlockOffset::new((o + 5 * k + 1) % 32), Delta::from(k % 2)))
                .collect();
            for _ in 0..2 {
                open.train(spatial_index(Pc::new(1 + pc), BlockOffset::new(o)), &seq);
                lru.train(spatial_index(Pc::new(1 + pc), BlockOffset::new(o)), &seq);
            }
        }
    }
    // ~3/4 hits (trained PCs), ~1/4 misses (PCs never trained), with the
    // offset walking the way consecutive RMOB triggers do.
    let keys: Vec<u64> = (0..10_000u64)
        .map(|i| {
            let pc = 1 + (i * 17) % (trained_pcs + 16);
            spatial_index(Pc::new(pc), BlockOffset::new((i * 7 % 32) as u8))
        })
        .collect();
    let mut g = c.benchmark_group("pst_probe");
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("open_addressed_lookup_10k", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &k in &keys {
                hits += open.lookup(k).is_some() as u64;
            }
            black_box(hits)
        })
    });
    g.bench_function("open_addressed_batched_10k", |b| {
        let mut ids = Vec::new();
        b.iter(|| {
            let mut hits = 0u64;
            for chunk in keys.chunks(8) {
                open.lookup_regions(chunk, &mut ids);
                for &id in &ids {
                    if id != PST_MISS {
                        open.touch(id);
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        })
    });
    g.bench_function("lru_table_lookup_10k", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &k in &keys {
                hits += lru.lookup(k).is_some() as u64;
            }
            black_box(hits)
        })
    });
    g.finish();
}

fn bench_prefetcher_throughput(c: &mut Criterion) {
    let trace = Workload::Db2.generate_scaled(0.02, 7);
    let sys = SystemConfig::small();
    let cfg = PrefetchConfig::commercial();
    let mut g = c.benchmark_group("engine_steps");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.sample_size(10);
    g.bench_function("baseline", |b| {
        b.iter(|| CoverageSim::new(&sys, &cfg, NullPrefetcher).run(&trace))
    });
    g.bench_function("tms", |b| {
        b.iter(|| CoverageSim::new(&sys, &cfg, TmsPrefetcher::new(&cfg)).run(&trace))
    });
    g.bench_function("sms", |b| {
        b.iter(|| CoverageSim::new(&sys, &cfg, SmsPrefetcher::new(&cfg)).run(&trace))
    });
    g.bench_function("stems", |b| {
        b.iter(|| CoverageSim::new(&sys, &cfg, StemsPrefetcher::new(&cfg)).run(&trace))
    });
    g.finish();
}

criterion_group! {
    name = structures;
    config = Criterion::default().sample_size(20);
    targets = bench_cache, bench_hierarchy_probe, bench_lru, bench_order_buffer,
              bench_pst_probe, bench_recon_window, bench_sequitur,
              bench_workload_generation, bench_prefetcher_throughput
}
criterion_main!(structures);
