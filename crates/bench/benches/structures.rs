//! Microbenchmarks of the predictor substrates: these are the per-access
//! hot paths of the simulator, so their throughput bounds every
//! experiment's runtime.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use stems_analysis::Sequitur;
use stems_core::engine::{CoverageSim, NullPrefetcher};
use stems_core::util::{LruTable, OrderBuffer};
use stems_core::{PrefetchConfig, SmsPrefetcher, StemsPrefetcher, TmsPrefetcher};
use stems_memsim::{Cache, CacheConfig, SystemConfig};
use stems_types::BlockAddr;
use stems_workloads::Workload;

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("setassoc_access_10k", |b| {
        let cfg = CacheConfig {
            size_bytes: 64 * 1024,
            associativity: 2,
        };
        b.iter(|| {
            let mut cache = Cache::new(&cfg);
            for i in 0..10_000u64 {
                cache.access(BlockAddr::new((i * 7919) % 4096), false);
            }
            black_box(cache.misses())
        })
    });
    g.finish();
}

fn bench_hierarchy_probe(c: &mut Criterion) {
    use stems_memsim::Hierarchy;

    let sys = SystemConfig::small();
    let mut g = c.benchmark_group("hierarchy");
    g.throughput(Throughput::Elements(10_000));
    // The single-pass pipeline vs the retained scalar two-call path over
    // an identical L1-hit-heavy mix: the difference is the per-access
    // overhead the probe rewrite removes.
    g.bench_function("probe_10k", |b| {
        b.iter(|| {
            let mut h = Hierarchy::new(&sys);
            let mut evicted = Vec::new();
            for i in 0..10_000u64 {
                let block = BlockAddr::new((i * 29) % 96);
                evicted.clear();
                black_box(h.probe(block, false, || false, &mut evicted));
            }
            black_box(h.l1_misses())
        })
    });
    g.bench_function("scalar_10k", |b| {
        b.iter(|| {
            let mut h = Hierarchy::new(&sys);
            let mut evicted = Vec::new();
            for i in 0..10_000u64 {
                let block = BlockAddr::new((i * 29) % 96);
                evicted.clear();
                if !h.access_l1_hit(block, false) {
                    black_box(h.access_after_l1_miss(block, false, &mut evicted));
                }
            }
            black_box(h.l1_misses())
        })
    });
    g.finish();
}

fn bench_lru(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru_table");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("insert_get_10k", |b| {
        b.iter(|| {
            let mut t: LruTable<u64, u64> = LruTable::new(1024);
            for i in 0..10_000u64 {
                t.insert(i % 2048, i);
                black_box(t.get(&(i % 1024)));
            }
            t.len()
        })
    });
    g.finish();
}

fn bench_order_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("order_buffer");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("append_lookup_10k", |b| {
        b.iter(|| {
            let mut buf: OrderBuffer<BlockAddr> = OrderBuffer::new(4096);
            for i in 0..10_000u64 {
                buf.append(BlockAddr::new(i % 3000));
                black_box(buf.lookup(BlockAddr::new((i * 13) % 3000)));
            }
            buf.appended()
        })
    });
    g.finish();
}

fn bench_sequitur(c: &mut Criterion) {
    let mut g = c.benchmark_group("sequitur");
    g.throughput(Throughput::Elements(20_000));
    g.bench_function("build_20k_periodic", |b| {
        let input: Vec<u64> = (0..20_000).map(|i| (i % 173) as u64).collect();
        b.iter(|| Sequitur::build(input.iter().copied()))
    });
    g.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_generation");
    for w in [Workload::Db2, Workload::Qry2, Workload::Em3d] {
        g.bench_function(w.name(), |b| {
            b.iter(|| black_box(w.generate_scaled(0.01, 1)).len())
        });
    }
    g.finish();
}

fn bench_prefetcher_throughput(c: &mut Criterion) {
    let trace = Workload::Db2.generate_scaled(0.02, 7);
    let sys = SystemConfig::small();
    let cfg = PrefetchConfig::commercial();
    let mut g = c.benchmark_group("engine_steps");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.sample_size(10);
    g.bench_function("baseline", |b| {
        b.iter(|| CoverageSim::new(&sys, &cfg, NullPrefetcher).run(&trace))
    });
    g.bench_function("tms", |b| {
        b.iter(|| CoverageSim::new(&sys, &cfg, TmsPrefetcher::new(&cfg)).run(&trace))
    });
    g.bench_function("sms", |b| {
        b.iter(|| CoverageSim::new(&sys, &cfg, SmsPrefetcher::new(&cfg)).run(&trace))
    });
    g.bench_function("stems", |b| {
        b.iter(|| CoverageSim::new(&sys, &cfg, StemsPrefetcher::new(&cfg)).run(&trace))
    });
    g.finish();
}

criterion_group! {
    name = structures;
    config = Criterion::default().sample_size(20);
    targets = bench_cache, bench_hierarchy_probe, bench_lru, bench_order_buffer,
              bench_sequitur, bench_workload_generation, bench_prefetcher_throughput
}
criterion_main!(structures);
