//! One benchmark per reproduced table/figure (DESIGN.md §4), at reduced
//! scale so `cargo bench` terminates quickly. Each benchmark runs the
//! same pipeline as the corresponding `stems-harness` binary.

use criterion::{criterion_group, criterion_main, Criterion};

use stems_harness::figs;
use stems_harness::runner::Settings;

const SCALE: f64 = 0.02;

fn settings() -> Settings {
    Settings {
        scale: SCALE,
        seed: 2009,
        threads: 0,
        ..Settings::default()
    }
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_parameters", |b| b.iter(|| figs::table1(settings())));
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6_joint_analysis", |b| {
        b.iter(|| figs::fig6_data(settings()))
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_sequitur_repetition", |b| {
        b.iter(|| figs::fig7(settings()))
    });
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8_correlation_distance", |b| {
        b.iter(|| figs::fig8(settings()))
    });
}

fn bench_fig9(c: &mut Criterion) {
    c.bench_function("fig9_coverage_comparison", |b| {
        b.iter(|| figs::fig9_data(settings()))
    });
}

fn bench_fig10(c: &mut Criterion) {
    c.bench_function("fig10_speedup", |b| b.iter(|| figs::fig10_data(settings())));
}

fn bench_naive_hybrid(c: &mut Criterion) {
    c.bench_function("naive_hybrid_comparison", |b| {
        b.iter(|| figs::naive_hybrid(settings()))
    });
}

fn bench_recon_stats(c: &mut Criterion) {
    c.bench_function("recon_placement_stats", |b| {
        b.iter(|| figs::recon_stats(settings()))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_fig6, bench_fig7, bench_fig8, bench_fig9,
              bench_fig10, bench_naive_hybrid, bench_recon_stats
}
criterion_main!(figures);
