//! Benchmark-only crate: see `benches/figures.rs` (one benchmark per
//! reproduced table/figure) and `benches/structures.rs` (microbenchmarks
//! of the predictor data structures). Run with `cargo bench`.
