//! The two-level private cache hierarchy of one node.
//!
//! Models an inclusive L1d + unified L2 pair: fills populate both levels,
//! and an L2 eviction back-invalidates the L1 copy. L1 evictions (demand,
//! inclusion, or coherence) are reported because they terminate spatial
//! generations (Section 2.4).

use stems_types::BlockAddr;

use crate::cache::Cache;
use crate::config::SystemConfig;

/// The level of the hierarchy that satisfied an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Level {
    /// L1 data cache hit.
    #[default]
    L1,
    /// L1 miss, L2 hit.
    L2,
    /// Off-chip: missed both levels. These are the misses every prefetcher
    /// in the paper targets.
    Memory,
}

/// Result of a demand access through the hierarchy.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HierarchyOutcome {
    /// Where the access was satisfied.
    pub level: Level,
    /// Blocks removed from the L1 by this access (demand eviction plus any
    /// inclusion-driven back-invalidations). Ends spatial generations.
    pub l1_evicted: Vec<BlockAddr>,
}

/// Where a single-pass [`Hierarchy::probe`] resolved the access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProbeLevel {
    /// L1 data cache hit.
    L1,
    /// L1 miss satisfied by the caller's interposed buffer (the streamed
    /// value buffer in the engine): the block was filled into both levels
    /// without counting demand traffic.
    Svb,
    /// L1 miss, L2 hit.
    L2,
    /// Off-chip: missed the L1, the interposed buffer, and the L2.
    Memory,
}

/// One node's L1d + L2.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
}

impl Hierarchy {
    /// Creates an empty hierarchy from a system configuration.
    pub fn new(config: &SystemConfig) -> Self {
        Hierarchy {
            l1: Cache::new(&config.l1),
            l2: Cache::new(&config.l2),
        }
    }

    /// Performs a demand access; allocates into both levels on miss.
    pub fn access(&mut self, block: BlockAddr, is_write: bool) -> HierarchyOutcome {
        let mut l1_evicted = Vec::new();
        let level = match self.probe(block, is_write, || false, &mut l1_evicted) {
            ProbeLevel::L1 => Level::L1,
            ProbeLevel::L2 => Level::L2,
            ProbeLevel::Memory => Level::Memory,
            ProbeLevel::Svb => unreachable!("no interposed buffer was offered"),
        };
        HierarchyOutcome { level, l1_evicted }
    }

    /// Single-pass demand probe: resolves L1-hit / interposed-buffer hit /
    /// L1-miss+L2-hit / full-miss in one call, with **one** L1 tag/set
    /// computation and caller-owned eviction scratch.
    ///
    /// `svb_take` is invoked exactly once, only after the L1 probe
    /// missed; returning `true` means the caller's interposed buffer (the
    /// streamed value buffer in the engine) held the block and consumed
    /// it, so the hierarchy installs it into both levels as a prefetch
    /// fill (no demand counters) instead of performing the L2 demand
    /// access. Evicted L1 blocks (demand or inclusion victims) are
    /// appended to `l1_evicted`.
    ///
    /// Behavior is pinned byte-identical to the retained scalar pair
    /// [`Hierarchy::access_l1_hit`] + [`Hierarchy::access_after_l1_miss`]
    /// (or + [`Hierarchy::fill_into`] when `svb_take` fires) by the
    /// differential-oracle property tests in `tests/probe_differential.rs`.
    #[inline]
    pub fn probe(
        &mut self,
        block: BlockAddr,
        is_write: bool,
        svb_take: impl FnOnce() -> bool,
        l1_evicted: &mut Vec<BlockAddr>,
    ) -> ProbeLevel {
        self.probe_at(
            self.l1.set_base(block),
            block,
            is_write,
            svb_take,
            l1_evicted,
        )
    }

    /// The L1 way-array base for `block`, for a per-access pre-decode:
    /// compute up front, redeem with [`Hierarchy::probe_at`].
    #[inline]
    pub fn l1_set_base(&self, block: BlockAddr) -> usize {
        self.l1.set_base(block)
    }

    /// [`Hierarchy::probe`] with the L1 set base already computed (by
    /// [`Hierarchy::l1_set_base`]); behavior is otherwise identical.
    #[inline]
    pub fn probe_at(
        &mut self,
        l1_base: usize,
        block: BlockAddr,
        is_write: bool,
        svb_take: impl FnOnce() -> bool,
        l1_evicted: &mut Vec<BlockAddr>,
    ) -> ProbeLevel {
        let Some(missed) = self.l1.probe_at(l1_base, block, is_write) else {
            return ProbeLevel::L1;
        };
        if svb_take() {
            // Prefetch consumption: the block moves from the caller's
            // buffer into both levels without counting demand traffic.
            if let Some(e) = self.l1.fill_at(missed, block) {
                l1_evicted.push(e.block);
            }
            if let Some(e) = self.l2.fill(block) {
                if self.l1.invalidate(e.block) {
                    l1_evicted.push(e.block);
                }
            }
            return ProbeLevel::Svb;
        }
        if let Some(e) = self.l1.miss_fill_at(missed, block, is_write) {
            l1_evicted.push(e.block);
        }
        let l2 = self.l2.access(block, is_write);
        if let Some(e) = l2.evicted {
            // Inclusive hierarchy: an L2 victim may not stay in L1.
            if self.l1.invalidate(e.block) {
                l1_evicted.push(e.block);
            }
        }
        if l2.hit {
            ProbeLevel::L2
        } else {
            ProbeLevel::Memory
        }
    }

    /// The L1-hit half of [`Hierarchy::access`]: one set scan, counting
    /// the hit and refreshing recency on success, side-effect-free on
    /// miss. Pair with [`Hierarchy::access_after_l1_miss`].
    pub fn access_l1_hit(&mut self, block: BlockAddr, is_write: bool) -> bool {
        self.l1.access_hit(block, is_write)
    }

    /// Completes a demand access whose L1 probe already missed,
    /// appending evicted L1 blocks to `l1_evicted` instead of
    /// allocating. Returns the satisfying level (never [`Level::L1`]).
    pub fn access_after_l1_miss(
        &mut self,
        block: BlockAddr,
        is_write: bool,
        l1_evicted: &mut Vec<BlockAddr>,
    ) -> Level {
        if let Some(e) = self.l1.miss_fill(block, is_write) {
            l1_evicted.push(e.block);
        }
        let l2 = self.l2.access(block, is_write);
        if let Some(e) = l2.evicted {
            // Inclusive hierarchy: an L2 victim may not stay in L1.
            if self.l1.invalidate(e.block) {
                l1_evicted.push(e.block);
            }
        }
        if l2.hit {
            Level::L2
        } else {
            Level::Memory
        }
    }

    /// Installs `block` into both levels without counting demand traffic
    /// (prefetch fill or streamed-value-buffer consumption).
    ///
    /// Returns the blocks removed from the L1 (demand eviction plus any
    /// inclusion-driven back-invalidation), as [`Hierarchy::access`] does.
    pub fn fill(&mut self, block: BlockAddr) -> Vec<BlockAddr> {
        let mut l1_evicted = Vec::new();
        self.fill_into(block, &mut l1_evicted);
        l1_evicted
    }

    /// Like [`Hierarchy::fill`], but appends evicted L1 blocks to a
    /// caller-provided buffer instead of allocating (the per-fill path of
    /// every prefetch once the caches are warm).
    pub fn fill_into(&mut self, block: BlockAddr, l1_evicted: &mut Vec<BlockAddr>) {
        if let Some(e) = self.l1.fill(block) {
            l1_evicted.push(e.block);
        }
        if let Some(e) = self.l2.fill(block) {
            if self.l1.invalidate(e.block) {
                l1_evicted.push(e.block);
            }
        }
    }

    /// Whether `block` is in the L1 (no recency update).
    pub fn in_l1(&self, block: BlockAddr) -> bool {
        self.l1.contains(block)
    }

    /// Whether `block` is in the L2 (no recency update).
    pub fn in_l2(&self, block: BlockAddr) -> bool {
        self.l2.contains(block)
    }

    /// Coherence invalidation of `block` from both levels.
    ///
    /// Returns whether the block was present in the L1 (which would end a
    /// spatial generation covering it).
    pub fn invalidate(&mut self, block: BlockAddr) -> bool {
        let was_in_l1 = self.l1.invalidate(block);
        self.l2.invalidate(block);
        was_in_l1
    }

    /// Demand L1 misses so far.
    pub fn l1_misses(&self) -> u64 {
        self.l1.misses()
    }

    /// Demand off-chip misses so far (L2 misses).
    pub fn l2_misses(&self) -> u64 {
        self.l2.misses()
    }

    /// Access to the raw L1 (for structural tests).
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// Access to the raw L2 (for structural tests).
    pub fn l2(&self) -> &Cache {
        &self.l2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Hierarchy {
        Hierarchy::new(&SystemConfig::small())
    }

    #[test]
    fn miss_levels_in_order() {
        let mut h = small();
        let b = BlockAddr::new(77);
        assert_eq!(h.access(b, false).level, Level::Memory);
        assert_eq!(h.access(b, false).level, Level::L1);
        // Evict from L1 only (L1 is 4KB 2-way = 32 sets; same set = +32*k).
        let conflict1 = BlockAddr::new(77 + 32);
        let conflict2 = BlockAddr::new(77 + 64);
        h.access(conflict1, false);
        h.access(conflict2, false);
        assert!(!h.in_l1(b));
        assert!(h.in_l2(b));
        assert_eq!(h.access(b, false).level, Level::L2);
    }

    #[test]
    fn l1_eviction_is_reported() {
        let mut h = small();
        let b0 = BlockAddr::new(0);
        h.access(b0, false);
        h.access(BlockAddr::new(32), false);
        let out = h.access(BlockAddr::new(64), false);
        assert!(out.l1_evicted.contains(&b0));
    }

    #[test]
    fn inclusion_back_invalidates_l1() {
        let cfg = SystemConfig {
            l1: crate::CacheConfig {
                size_bytes: 4 * 1024,
                associativity: 2,
            },
            // Tiny L2: 2 sets x 1 way so conflicts are easy to force.
            l2: crate::CacheConfig {
                size_bytes: 2 * 64,
                associativity: 1,
            },
            ..SystemConfig::default()
        };
        let mut h = Hierarchy::new(&cfg);
        let b = BlockAddr::new(0);
        h.access(b, false);
        assert!(h.in_l1(b));
        // Block 2 maps to the same L2 set (even), evicting b from L2 and,
        // by inclusion, from L1.
        let out = h.access(BlockAddr::new(2), false);
        assert!(out.l1_evicted.contains(&b));
        assert!(!h.in_l1(b));
        assert!(!h.in_l2(b));
    }

    #[test]
    fn invalidate_clears_both_levels() {
        let mut h = small();
        let b = BlockAddr::new(9);
        h.access(b, false);
        assert!(h.invalidate(b));
        assert!(!h.in_l1(b));
        assert!(!h.in_l2(b));
        assert!(!h.invalidate(b));
    }

    #[test]
    fn fill_installs_without_demand_counters() {
        let mut h = small();
        let b = BlockAddr::new(123);
        let evicted = h.fill(b);
        assert!(evicted.is_empty());
        assert!(h.in_l1(b));
        assert!(h.in_l2(b));
        assert_eq!(h.l1_misses(), 0);
        assert_eq!(h.l2_misses(), 0);
        assert_eq!(h.access(b, false).level, Level::L1);
    }

    #[test]
    fn probe_interposes_between_l1_and_l2() {
        let mut h = small();
        let b = BlockAddr::new(321);
        let mut evicted = Vec::new();
        // Cold probe with an SVB hit: installed as a fill — no demand
        // counters — and resident in both levels afterwards.
        let level = h.probe(b, false, || true, &mut evicted);
        assert_eq!(level, ProbeLevel::Svb);
        assert!(evicted.is_empty());
        assert!(h.in_l1(b) && h.in_l2(b));
        assert_eq!(h.l1_misses(), 0);
        assert_eq!(h.l2_misses(), 0);
        // Resident now: the interposer must not even be consulted.
        let level = h.probe(b, false, || panic!("L1 hit asks no one"), &mut evicted);
        assert_eq!(level, ProbeLevel::L1);
    }

    #[test]
    fn probe_consults_interposer_exactly_once_on_miss() {
        let mut h = small();
        let mut evicted = Vec::new();
        let mut asked = 0u32;
        let level = h.probe(
            BlockAddr::new(7),
            false,
            || {
                asked += 1;
                false
            },
            &mut evicted,
        );
        assert_eq!(level, ProbeLevel::Memory);
        assert_eq!(asked, 1);
        assert_eq!(h.l1_misses(), 1);
        assert_eq!(h.l2_misses(), 1);
    }

    #[test]
    fn probe_matches_scalar_access_on_levels() {
        let mut probe_h = small();
        let mut scalar_h = small();
        // A short conflict-heavy mix: every level outcome occurs.
        let blocks = [77u64, 77, 109, 141, 77, 9, 77, 141];
        for (i, &raw) in blocks.iter().enumerate() {
            let b = BlockAddr::new(raw);
            let is_write = i % 3 == 2;
            let mut evicted = Vec::new();
            let level = probe_h.probe(b, is_write, || false, &mut evicted);
            // Scalar oracle: drive the retained two-call path explicitly
            // (access() itself is a wrapper over probe now).
            let mut scalar_evicted = Vec::new();
            let want = if scalar_h.access_l1_hit(b, is_write) {
                ProbeLevel::L1
            } else {
                match scalar_h.access_after_l1_miss(b, is_write, &mut scalar_evicted) {
                    Level::L2 => ProbeLevel::L2,
                    Level::Memory => ProbeLevel::Memory,
                    Level::L1 => unreachable!(),
                }
            };
            assert_eq!(level, want, "step {i}");
            assert_eq!(evicted, scalar_evicted, "step {i}");
        }
        assert_eq!(probe_h.l1_misses(), scalar_h.l1_misses());
        assert_eq!(probe_h.l2_misses(), scalar_h.l2_misses());
    }

    #[test]
    fn miss_counters_accumulate() {
        let mut h = small();
        for i in 0..10 {
            h.access(BlockAddr::new(i * 1000), false);
        }
        assert_eq!(h.l1_misses(), 10);
        assert_eq!(h.l2_misses(), 10);
    }
}
