//! A full-map MSI directory at cache-block granularity.
//!
//! The paper's testbed is a 16-node directory-based shared-memory
//! multiprocessor. The directory tracks, per 64B block, which nodes hold a
//! copy and whether one holds it modified. Reads join the sharer set
//! (downgrading a modified owner); writes invalidate all other copies.
//! Invalidations are surfaced to the caller because they terminate spatial
//! generations and evict streamed-value-buffer entries at the victims.

use std::collections::HashMap;

use stems_types::BlockAddr;

/// Identifies one of the processors (0-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct DirEntry {
    /// Bitmask of nodes holding a copy.
    sharers: u64,
    /// Node holding the block modified, if any (then `sharers` has exactly
    /// that bit set).
    owner: Option<NodeId>,
}

/// Where a miss's data came from, which determines its latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataSource {
    /// From DRAM at the home node.
    Memory,
    /// Forwarded from another node's cache (dirty or shared intervention).
    RemoteCache(NodeId),
}

/// Result of a directory read request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Where the data came from.
    pub source: DataSource,
    /// An owner that was downgraded from modified to shared, if any.
    pub downgraded: Option<NodeId>,
}

/// Result of a directory write (read-exclusive) request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Where the data came from.
    pub source: DataSource,
    /// Nodes whose copies were invalidated.
    pub invalidated: Vec<NodeId>,
}

/// The full-map directory.
///
/// # Example
///
/// ```
/// use stems_memsim::{Directory, NodeId};
/// use stems_types::BlockAddr;
///
/// let mut dir = Directory::new(4);
/// let b = BlockAddr::new(10);
/// dir.read(NodeId(0), b);
/// let w = dir.write(NodeId(1), b);
/// assert_eq!(w.invalidated, vec![NodeId(0)]);
/// ```
#[derive(Clone, Debug)]
pub struct Directory {
    entries: HashMap<BlockAddr, DirEntry>,
    nodes: usize,
}

impl Directory {
    /// Creates a directory for `nodes` processors.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `nodes > 64` (full-map bitmask width).
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0 && nodes <= 64, "nodes must be in 1..=64");
        Directory {
            entries: HashMap::new(),
            nodes,
        }
    }

    fn check_node(&self, node: NodeId) {
        assert!(node.0 < self.nodes, "node {node} out of range");
    }

    /// Handles a read miss from `node`.
    pub fn read(&mut self, node: NodeId, block: BlockAddr) -> ReadOutcome {
        self.check_node(node);
        let entry = self.entries.entry(block).or_default();
        let mut downgraded = None;
        let source = match entry.owner {
            Some(owner) if owner != node => {
                // Dirty remote copy: forward and downgrade to shared.
                entry.owner = None;
                downgraded = Some(owner);
                DataSource::RemoteCache(owner)
            }
            Some(_) => DataSource::Memory, // re-read by the owner itself
            None => {
                if entry.sharers != 0 && entry.sharers != (1 << node.0) {
                    let first = entry.sharers.trailing_zeros() as usize;
                    if first == node.0 {
                        // Pick a sharer other than the requester.
                        let rest = entry.sharers & !(1u64 << node.0);
                        if rest != 0 {
                            DataSource::RemoteCache(NodeId(rest.trailing_zeros() as usize))
                        } else {
                            DataSource::Memory
                        }
                    } else {
                        DataSource::RemoteCache(NodeId(first))
                    }
                } else {
                    DataSource::Memory
                }
            }
        };
        entry.sharers |= 1 << node.0;
        ReadOutcome { source, downgraded }
    }

    /// Handles a write (read-exclusive / upgrade) from `node`.
    pub fn write(&mut self, node: NodeId, block: BlockAddr) -> WriteOutcome {
        self.check_node(node);
        let entry = self.entries.entry(block).or_default();
        let mut invalidated = Vec::new();
        let source = if let Some(owner) = entry.owner.filter(|&o| o != node) {
            invalidated.push(owner);
            DataSource::RemoteCache(owner)
        } else if entry.sharers & !(1u64 << node.0) != 0 {
            let others = entry.sharers & !(1u64 << node.0);
            for n in 0..self.nodes {
                if others & (1 << n) != 0 {
                    invalidated.push(NodeId(n));
                }
            }
            DataSource::RemoteCache(NodeId(others.trailing_zeros() as usize))
        } else {
            DataSource::Memory
        };
        entry.sharers = 1 << node.0;
        entry.owner = Some(node);
        WriteOutcome {
            source,
            invalidated,
        }
    }

    /// Records that `node` silently dropped its copy (cache eviction).
    pub fn evict(&mut self, node: NodeId, block: BlockAddr) {
        self.check_node(node);
        if let Some(entry) = self.entries.get_mut(&block) {
            entry.sharers &= !(1u64 << node.0);
            if entry.owner == Some(node) {
                entry.owner = None;
            }
            if entry.sharers == 0 {
                self.entries.remove(&block);
            }
        }
    }

    /// Nodes currently holding `block`.
    pub fn sharers(&self, block: BlockAddr) -> Vec<NodeId> {
        match self.entries.get(&block) {
            None => Vec::new(),
            Some(e) => (0..self.nodes)
                .filter(|&n| e.sharers & (1 << n) != 0)
                .map(NodeId)
                .collect(),
        }
    }

    /// The modified-state owner of `block`, if any.
    pub fn owner(&self, block: BlockAddr) -> Option<NodeId> {
        self.entries.get(&block).and_then(|e| e.owner)
    }

    /// Number of blocks with directory state.
    pub fn tracked_blocks(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_read_comes_from_memory() {
        let mut dir = Directory::new(4);
        let out = dir.read(NodeId(0), BlockAddr::new(5));
        assert_eq!(out.source, DataSource::Memory);
        assert_eq!(dir.sharers(BlockAddr::new(5)), vec![NodeId(0)]);
    }

    #[test]
    fn read_after_remote_write_forwards_and_downgrades() {
        let mut dir = Directory::new(4);
        let b = BlockAddr::new(5);
        dir.write(NodeId(2), b);
        let out = dir.read(NodeId(0), b);
        assert_eq!(out.source, DataSource::RemoteCache(NodeId(2)));
        assert_eq!(out.downgraded, Some(NodeId(2)));
        assert_eq!(dir.owner(b), None);
        assert_eq!(dir.sharers(b), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn write_invalidates_all_sharers() {
        let mut dir = Directory::new(4);
        let b = BlockAddr::new(7);
        dir.read(NodeId(0), b);
        dir.read(NodeId(1), b);
        dir.read(NodeId(3), b);
        let out = dir.write(NodeId(2), b);
        assert_eq!(out.invalidated, vec![NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(dir.owner(b), Some(NodeId(2)));
        assert_eq!(dir.sharers(b), vec![NodeId(2)]);
    }

    #[test]
    fn write_by_existing_owner_invalidates_nothing() {
        let mut dir = Directory::new(4);
        let b = BlockAddr::new(7);
        dir.write(NodeId(2), b);
        let out = dir.write(NodeId(2), b);
        assert!(out.invalidated.is_empty());
    }

    #[test]
    fn shared_read_forwards_from_a_sharer() {
        let mut dir = Directory::new(4);
        let b = BlockAddr::new(9);
        dir.read(NodeId(1), b);
        let out = dir.read(NodeId(3), b);
        assert_eq!(out.source, DataSource::RemoteCache(NodeId(1)));
        assert_eq!(out.downgraded, None);
    }

    #[test]
    fn evict_clears_state() {
        let mut dir = Directory::new(4);
        let b = BlockAddr::new(11);
        dir.write(NodeId(0), b);
        dir.evict(NodeId(0), b);
        assert_eq!(dir.owner(b), None);
        assert!(dir.sharers(b).is_empty());
        assert_eq!(dir.tracked_blocks(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_bounds_are_enforced() {
        let mut dir = Directory::new(2);
        dir.read(NodeId(2), BlockAddr::new(0));
    }
}
