//! System parameters (Table 1) and latency conversion.

use stems_types::BLOCK_BYTES;

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: usize,
}

impl CacheConfig {
    /// Number of sets implied by the capacity, associativity, and the
    /// global 64B block size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways or fewer than one
    /// set) or the set count is not a power of two.
    pub fn num_sets(&self) -> usize {
        assert!(self.associativity > 0, "associativity must be nonzero");
        let lines = self.size_bytes / BLOCK_BYTES;
        let sets = lines as usize / self.associativity;
        assert!(sets > 0, "cache must have at least one set");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

/// Table 1 system parameters relevant to trace-driven simulation, plus the
/// derived cycle latencies used by the timing model.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// L1 data cache (64KB 2-way in the paper).
    pub l1: CacheConfig,
    /// Unified L2 (8MB 8-way in the paper).
    pub l2: CacheConfig,
    /// Core clock in GHz (4 GHz).
    pub clock_ghz: f64,
    /// L1 load-to-use latency in cycles (2).
    pub l1_latency: u64,
    /// L2 hit latency in cycles (25).
    pub l2_latency: u64,
    /// DRAM access latency in nanoseconds (40).
    pub mem_latency_ns: f64,
    /// Per-hop torus latency in nanoseconds (25).
    pub hop_latency_ns: f64,
    /// Number of processors (16, arranged 4x4).
    pub nodes: usize,
    /// Reorder-buffer entries (96).
    pub rob_entries: usize,
    /// Dispatch/retire width (4).
    pub width: usize,
    /// L1 miss-status handling registers (32) — bounds outstanding misses.
    pub mshrs: usize,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            l1: CacheConfig {
                size_bytes: 64 * 1024,
                associativity: 2,
            },
            l2: CacheConfig {
                size_bytes: 8 * 1024 * 1024,
                associativity: 8,
            },
            clock_ghz: 4.0,
            l1_latency: 2,
            l2_latency: 25,
            mem_latency_ns: 40.0,
            hop_latency_ns: 25.0,
            nodes: 16,
            rob_entries: 96,
            width: 4,
            mshrs: 32,
        }
    }
}

impl SystemConfig {
    /// A scaled-down configuration for fast unit tests and benches: 4KB L1,
    /// 64KB L2, 4 nodes. Miss behaviour is exercised with small footprints.
    pub fn small() -> Self {
        SystemConfig {
            l1: CacheConfig {
                size_bytes: 4 * 1024,
                associativity: 2,
            },
            l2: CacheConfig {
                size_bytes: 64 * 1024,
                associativity: 4,
            },
            nodes: 4,
            ..SystemConfig::default()
        }
    }

    /// Converts nanoseconds to core cycles at the configured clock.
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns * self.clock_ghz).round() as u64
    }

    /// DRAM latency in cycles (160 at the default 4 GHz / 40 ns).
    pub fn mem_latency_cycles(&self) -> u64 {
        self.ns_to_cycles(self.mem_latency_ns)
    }

    /// Latency of one interconnect hop in cycles (100 at defaults).
    pub fn hop_latency_cycles(&self) -> u64 {
        self.ns_to_cycles(self.hop_latency_ns)
    }

    /// End-to-end off-chip miss latency in cycles for a round trip over
    /// `hops` torus hops each way plus one DRAM access.
    ///
    /// At the defaults with the torus-average ~2 hops this is in the
    /// "hundreds of cycles" regime the paper describes (Section 1).
    pub fn off_chip_latency_cycles(&self, hops: u32) -> u64 {
        self.mem_latency_cycles() + 2 * hops as u64 * self.hop_latency_cycles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_1() {
        let c = SystemConfig::default();
        assert_eq!(c.l1.num_sets(), 512); // 64KB / 64B / 2-way
        assert_eq!(c.l2.num_sets(), 16384); // 8MB / 64B / 8-way
        assert_eq!(c.mem_latency_cycles(), 160);
        assert_eq!(c.hop_latency_cycles(), 100);
        assert_eq!(c.nodes, 16);
    }

    #[test]
    fn off_chip_latency_is_hundreds_of_cycles() {
        let c = SystemConfig::default();
        let lat = c.off_chip_latency_cycles(2);
        assert!((300..=800).contains(&lat), "latency {lat} out of regime");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let c = CacheConfig {
            size_bytes: 3 * 64,
            associativity: 1,
        };
        let _ = c.num_sets();
    }
}
