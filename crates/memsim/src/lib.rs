//! Cache and memory-system simulator substrate for the STeMS reproduction.
//!
//! The paper evaluates on a 16-processor directory-based shared-memory
//! multiprocessor (Table 1): per-node split L1 caches (we model the data
//! side, where all predictors observe), a unified 8MB L2, a directory
//! protocol, and a 4x4 2D torus interconnect. This crate implements those
//! substrates:
//!
//! * [`Cache`] — set-associative, LRU, write-back, with eviction reporting
//!   (evictions terminate spatial generations, Section 2.4);
//! * [`Hierarchy`] — an inclusive L1d + L2 pair with back-invalidation;
//! * [`Directory`] — an MSI-style full-map directory at 64B grain;
//! * [`Torus`] — wrap-around Manhattan hop distances and latency;
//! * [`SystemConfig`] — Table 1 parameters with latency conversion.
//!
//! # Example
//!
//! ```
//! use stems_memsim::{Hierarchy, Level, SystemConfig};
//! use stems_types::BlockAddr;
//!
//! let cfg = SystemConfig::default();
//! let mut h = Hierarchy::new(&cfg);
//! let b = BlockAddr::new(42);
//! assert_eq!(h.access(b, false).level, Level::Memory); // cold miss
//! assert_eq!(h.access(b, false).level, Level::L1);     // now cached
//! ```

pub mod cache;
pub mod config;
pub mod directory;
pub mod hierarchy;
pub mod torus;

pub use cache::{Cache, CacheOutcome, Evicted, MissedSet};
pub use config::{CacheConfig, SystemConfig};
pub use directory::{Directory, NodeId, ReadOutcome, WriteOutcome};
pub use hierarchy::{Hierarchy, HierarchyOutcome, Level, ProbeLevel};
pub use torus::Torus;
