//! The 4x4 2D torus interconnect latency model (Table 1).
//!
//! Nodes are arranged row-major on a `dim x dim` grid with wrap-around
//! links; message latency is the wrap-around Manhattan hop count times the
//! per-hop latency. Each block has a *home node* (address-interleaved)
//! whose directory and memory serve it.

use stems_types::BlockAddr;

use crate::directory::NodeId;

/// A square 2D torus of `dim * dim` nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Torus {
    dim: usize,
}

impl Torus {
    /// Creates a `dim x dim` torus.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "torus dimension must be nonzero");
        Torus { dim }
    }

    /// The paper's 4x4 configuration.
    pub fn paper() -> Self {
        Torus::new(4)
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.dim * self.dim
    }

    fn coords(&self, node: NodeId) -> (usize, usize) {
        assert!(node.0 < self.nodes(), "node {node} out of range");
        (node.0 / self.dim, node.0 % self.dim)
    }

    fn ring_distance(&self, a: usize, b: usize) -> usize {
        let d = a.abs_diff(b);
        d.min(self.dim - d)
    }

    /// Wrap-around Manhattan hop count between two nodes.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let (ar, ac) = self.coords(a);
        let (br, bc) = self.coords(b);
        (self.ring_distance(ar, br) + self.ring_distance(ac, bc)) as u32
    }

    /// The home node of a block (address-interleaved across nodes).
    pub fn home(&self, block: BlockAddr) -> NodeId {
        NodeId((block.get() % self.nodes() as u64) as usize)
    }

    /// Average hop count from a node to a uniformly random other node —
    /// the expected one-way distance for directory/memory traffic.
    pub fn average_hops(&self) -> f64 {
        let n = self.nodes();
        let total: u32 = (0..n)
            .flat_map(|a| (0..n).map(move |b| (a, b)))
            .map(|(a, b)| self.hops(NodeId(a), NodeId(b)))
            .sum();
        total as f64 / (n * n) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_on_4x4() {
        let t = Torus::paper();
        assert_eq!(t.nodes(), 16);
        assert_eq!(t.hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(t.hops(NodeId(0), NodeId(1)), 1);
        // Wrap-around: node 0 (0,0) to node 3 (0,3) is one hop, not three.
        assert_eq!(t.hops(NodeId(0), NodeId(3)), 1);
        // Opposite corner (2,2) is the diameter: 2 + 2 = 4.
        assert_eq!(t.hops(NodeId(0), NodeId(10)), 4);
    }

    #[test]
    fn hops_are_symmetric() {
        let t = Torus::paper();
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(t.hops(NodeId(a), NodeId(b)), t.hops(NodeId(b), NodeId(a)));
            }
        }
    }

    #[test]
    fn home_is_stable_and_in_range() {
        let t = Torus::paper();
        let b = BlockAddr::new(12345);
        let h = t.home(b);
        assert_eq!(t.home(b), h);
        assert!(h.0 < 16);
    }

    #[test]
    fn average_hops_is_two_on_4x4() {
        // Each ring of size 4 averages (0+1+2+1)/4 = 1 per dimension.
        let t = Torus::paper();
        assert!((t.average_hops() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_rejected() {
        Torus::new(2).hops(NodeId(0), NodeId(4));
    }
}
