//! A set-associative, write-back, LRU cache model.
//!
//! Evictions are reported to the caller because they drive predictor
//! behaviour: a spatial generation ends when one of its accessed blocks is
//! evicted or invalidated from the L1 (Section 2.4).

use stems_types::BlockAddr;

use crate::config::CacheConfig;

/// A block evicted by an allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted block.
    pub block: BlockAddr,
    /// Whether it was dirty (would be written back).
    pub dirty: bool,
}

/// Result of a demand access or fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Whether the block was already present.
    pub hit: bool,
    /// Block evicted to make room (misses only; `None` if a free way).
    pub evicted: Option<Evicted>,
}

#[derive(Clone, Copy, Debug)]
struct Line {
    block: BlockAddr,
    dirty: bool,
}

/// A set-associative cache with true-LRU replacement.
///
/// Stores block presence and dirtiness only — a trace-driven simulator has
/// no data values. All operations are O(associativity).
///
/// # Example
///
/// ```
/// use stems_memsim::{Cache, CacheConfig};
/// use stems_types::BlockAddr;
///
/// let mut c = Cache::new(&CacheConfig { size_bytes: 128, associativity: 2 });
/// assert!(!c.access(BlockAddr::new(1), false).hit);
/// assert!(c.access(BlockAddr::new(1), false).hit);
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    /// Per-set lines ordered MRU-first.
    sets: Vec<Vec<Line>>,
    set_mask: u64,
    associativity: usize,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (see [`CacheConfig::num_sets`]).
    pub fn new(config: &CacheConfig) -> Self {
        let num_sets = config.num_sets();
        Cache {
            sets: vec![Vec::with_capacity(config.associativity); num_sets],
            set_mask: num_sets as u64 - 1,
            associativity: config.associativity,
            hits: 0,
            misses: 0,
        }
    }

    fn set_index(&self, block: BlockAddr) -> usize {
        (block.get() & self.set_mask) as usize
    }

    /// Performs a demand access, allocating on miss.
    ///
    /// On hit the line moves to MRU (and is dirtied by writes). On miss the
    /// block is inserted; if the set was full, the LRU line is evicted and
    /// reported.
    pub fn access(&mut self, block: BlockAddr, is_write: bool) -> CacheOutcome {
        if self.access_hit(block, is_write) {
            return CacheOutcome {
                hit: true,
                evicted: None,
            };
        }
        CacheOutcome {
            hit: false,
            evicted: self.miss_fill(block, is_write),
        }
    }

    /// The hit half of [`Cache::access`]: if `block` is resident, move it
    /// to MRU (dirtying on write), count the hit, and return `true`. A
    /// miss has no side effects — pair with [`Cache::miss_fill`] to
    /// complete the access without re-scanning the set.
    pub fn access_hit(&mut self, block: BlockAddr, is_write: bool) -> bool {
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|l| l.block == block) {
            let mut line = set.remove(pos);
            line.dirty |= is_write;
            set.insert(0, line);
            self.hits += 1;
            return true;
        }
        false
    }

    /// The miss half of [`Cache::access`]: allocates `block` at MRU,
    /// counting the miss and evicting the LRU line if the set is full.
    /// The caller must already know the block is absent (via
    /// [`Cache::access_hit`] returning `false`).
    pub fn miss_fill(&mut self, block: BlockAddr, is_write: bool) -> Option<Evicted> {
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        debug_assert!(
            set.iter().all(|l| l.block != block),
            "miss_fill on a resident block"
        );
        self.misses += 1;
        let evicted = if set.len() == self.associativity {
            let victim = set.pop().expect("full set has a victim");
            Some(Evicted {
                block: victim.block,
                dirty: victim.dirty,
            })
        } else {
            None
        };
        set.insert(
            0,
            Line {
                block,
                dirty: is_write,
            },
        );
        evicted
    }

    /// Inserts a block without counting a demand hit/miss (prefetch fill).
    ///
    /// Returns the eviction if one occurred. If the block is already
    /// present it is refreshed to MRU and `None` is returned.
    pub fn fill(&mut self, block: BlockAddr) -> Option<Evicted> {
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|l| l.block == block) {
            let line = set.remove(pos);
            set.insert(0, line);
            return None;
        }
        let evicted = if set.len() == self.associativity {
            let victim = set.pop().expect("full set has a victim");
            Some(Evicted {
                block: victim.block,
                dirty: victim.dirty,
            })
        } else {
            None
        };
        set.insert(
            0,
            Line {
                block,
                dirty: false,
            },
        );
        evicted
    }

    /// Whether `block` is present (no recency update).
    pub fn contains(&self, block: BlockAddr) -> bool {
        let idx = self.set_index(block);
        self.sets[idx].iter().any(|l| l.block == block)
    }

    /// Removes `block` if present; returns whether it was present.
    pub fn invalidate(&mut self, block: BlockAddr) -> bool {
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|l| l.block == block) {
            set.remove(pos);
            true
        } else {
            false
        }
    }

    /// Demand hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Total line capacity.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.associativity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways.
        Cache::new(&CacheConfig {
            size_bytes: 4 * 64,
            associativity: 2,
        })
    }

    #[test]
    fn hit_after_miss() {
        let mut c = tiny();
        let b = BlockAddr::new(4);
        assert!(!c.access(b, false).hit);
        assert!(c.access(b, false).hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent_in_set() {
        let mut c = tiny();
        // Blocks 0, 2, 4 all map to set 0 (even numbers).
        c.access(BlockAddr::new(0), false);
        c.access(BlockAddr::new(2), false);
        c.access(BlockAddr::new(0), false); // refresh 0; LRU is now 2
        let out = c.access(BlockAddr::new(4), false);
        assert_eq!(
            out.evicted,
            Some(Evicted {
                block: BlockAddr::new(2),
                dirty: false
            })
        );
        assert!(c.contains(BlockAddr::new(0)));
        assert!(!c.contains(BlockAddr::new(2)));
    }

    #[test]
    fn writes_dirty_lines_and_eviction_reports_it() {
        let mut c = tiny();
        c.access(BlockAddr::new(0), true);
        c.access(BlockAddr::new(2), false);
        let out = c.access(BlockAddr::new(4), false); // evicts 0 (LRU)
        assert_eq!(
            out.evicted,
            Some(Evicted {
                block: BlockAddr::new(0),
                dirty: true
            })
        );
    }

    #[test]
    fn fill_does_not_count_demand_traffic() {
        let mut c = tiny();
        c.fill(BlockAddr::new(0));
        assert_eq!(c.misses(), 0);
        assert!(c.access(BlockAddr::new(0), false).hit);
    }

    #[test]
    fn fill_of_resident_block_refreshes_without_eviction() {
        let mut c = tiny();
        c.access(BlockAddr::new(0), false);
        c.access(BlockAddr::new(2), false);
        assert_eq!(c.fill(BlockAddr::new(0)), None);
        // 2 is now LRU; a new block evicts it, not 0.
        let e = c.fill(BlockAddr::new(4)).unwrap();
        assert_eq!(e.block, BlockAddr::new(2));
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c = tiny();
        c.access(BlockAddr::new(6), false);
        assert!(c.invalidate(BlockAddr::new(6)));
        assert!(!c.contains(BlockAddr::new(6)));
        assert!(!c.invalidate(BlockAddr::new(6)));
    }

    #[test]
    fn occupancy_tracks_contents() {
        let mut c = tiny();
        assert_eq!(c.capacity(), 4);
        c.access(BlockAddr::new(0), false);
        c.access(BlockAddr::new(1), false);
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = tiny();
        // Odd blocks map to set 1.
        c.access(BlockAddr::new(0), false);
        c.access(BlockAddr::new(1), false);
        c.access(BlockAddr::new(3), false);
        c.access(BlockAddr::new(5), false); // evicts 1, not 0
        assert!(c.contains(BlockAddr::new(0)));
        assert!(!c.contains(BlockAddr::new(1)));
    }
}
