//! A set-associative, write-back, LRU cache model.
//!
//! Evictions are reported to the caller because they drive predictor
//! behaviour: a spatial generation ends when one of its accessed blocks is
//! evicted or invalidated from the L1 (Section 2.4).

use stems_types::BlockAddr;

use crate::config::CacheConfig;

/// A block evicted by an allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted block.
    pub block: BlockAddr,
    /// Whether it was dirty (would be written back).
    pub dirty: bool,
}

/// Result of a demand access or fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Whether the block was already present.
    pub hit: bool,
    /// Block evicted to make room (misses only; `None` if a free way).
    pub evicted: Option<Evicted>,
}

/// Proof that a [`Cache::probe`] missed, carrying the probed set's way
/// base so the follow-up install reuses the probe's tag/set computation
/// instead of re-deriving it. Redeem with [`Cache::miss_fill_at`] or
/// [`Cache::fill_at`], against the same cache and block that produced it
/// (the token is deliberately not `Copy`/`Clone`: one probe, one install).
#[derive(Debug)]
pub struct MissedSet {
    base: usize,
}

/// Recency rank marking an unoccupied way. Real ranks are `0..assoc`,
/// so `new` asserts `assoc < u16::MAX`.
const FREE_WAY: u16 = u16::MAX;

/// Block value stored in unoccupied ways. No demand access can name it:
/// it would require a byte address of at least 2^70.
const SENTINEL_BLOCK: BlockAddr = BlockAddr::new(u64::MAX);

/// A set-associative cache with true-LRU replacement.
///
/// Stores block presence and dirtiness only — a trace-driven simulator has
/// no data values. All operations are O(associativity).
///
/// Sets are fixed-capacity windows of flat per-field arrays (blocks,
/// recency ranks, dirty bits), with recency an intrusive per-way age
/// rank — 0 = MRU, `occupancy - 1` = LRU. Touching a way adjusts ranks
/// in place instead of memmoving an MRU-first Vec, so a 16-way touch
/// never shifts 15 lines. Unoccupied ways hold a sentinel block that no
/// demand access can name, so the hot residency scan is an unconditional
/// pass over one contiguous fixed-width `u64` window — no occupancy
/// load, no validity branches.
///
/// # Example
///
/// ```
/// use stems_memsim::{Cache, CacheConfig};
/// use stems_types::BlockAddr;
///
/// let mut c = Cache::new(&CacheConfig { size_bytes: 128, associativity: 2 });
/// assert!(!c.access(BlockAddr::new(1), false).hit);
/// assert!(c.access(BlockAddr::new(1), false).hit);
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    /// Resident blocks, `associativity` consecutive ways per set;
    /// unoccupied ways hold [`SENTINEL_BLOCK`].
    blocks: Box<[BlockAddr]>,
    /// Recency rank per way: 0 = MRU; [`FREE_WAY`] marks an empty way.
    ages: Box<[u16]>,
    /// Dirty bit per way.
    dirty: Box<[bool]>,
    set_mask: u64,
    associativity: usize,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (see [`CacheConfig::num_sets`])
    /// or the associativity exceeds the `u16` rank range.
    pub fn new(config: &CacheConfig) -> Self {
        let num_sets = config.num_sets();
        assert!(
            config.associativity < FREE_WAY as usize,
            "associativity exceeds rank range"
        );
        let ways = num_sets * config.associativity;
        Cache {
            blocks: vec![SENTINEL_BLOCK; ways].into_boxed_slice(),
            ages: vec![FREE_WAY; ways].into_boxed_slice(),
            dirty: vec![false; ways].into_boxed_slice(),
            set_mask: num_sets as u64 - 1,
            associativity: config.associativity,
            hits: 0,
            misses: 0,
        }
    }

    fn set_index(&self, block: BlockAddr) -> usize {
        (block.get() & self.set_mask) as usize
    }

    /// Way-array base of the set holding `block`. Public so a batched
    /// caller can pre-decode set bases for a whole chunk of accesses and
    /// redeem them through [`Cache::probe_at`]; the value is only
    /// meaningful for this cache instance.
    #[inline]
    pub fn set_base(&self, block: BlockAddr) -> usize {
        self.set_index(block) * self.associativity
    }

    /// Branch-free scan of a compile-time-width window of ways,
    /// accumulating the compare results into one bit mask. With `N` known
    /// the loop fully unrolls into chunked `u64` compares the
    /// autovectorizer turns into SIMD-width packed compares plus a
    /// movemask — no per-way branches, no early exit (resident blocks are
    /// unique in a set, so at most one bit is ever set).
    #[inline]
    fn find_fixed<const N: usize>(ways: &[BlockAddr], block: BlockAddr) -> Option<usize> {
        let ways: &[BlockAddr; N] = ways.try_into().expect("window narrower than declared");
        let mut mask = 0u32;
        for (w, &b) in ways.iter().enumerate() {
            mask |= ((b == block) as u32) << w;
        }
        (mask != 0).then(|| mask.trailing_zeros() as usize)
    }

    /// Position of `block` among the set's ways: one scan of a
    /// contiguous sentinel-padded window (free ways hold the unmatchable
    /// sentinel, so there is no occupancy branch). The scan is
    /// specialized by associativity: at width 1/2 two direct compares
    /// beat any reduction (measured — the mask-and-movemask form was a
    /// ~7% regression on the 2-way L1 microbench), while 4/8/16 dispatch
    /// to fixed-width windows ([`Cache::find_fixed`]) whose unrolled
    /// chunked `u64` compares the autovectorizer packs into SIMD lanes;
    /// other geometries fall back to a generic reduction.
    #[inline]
    fn find(&self, base: usize, block: BlockAddr) -> Option<usize> {
        let ways = &self.blocks[base..base + self.associativity];
        match self.associativity {
            1 => (ways[0] == block).then_some(0),
            2 => {
                if ways[0] == block {
                    Some(0)
                } else if ways[1] == block {
                    Some(1)
                } else {
                    None
                }
            }
            4 => Self::find_fixed::<4>(ways, block),
            8 => Self::find_fixed::<8>(ways, block),
            16 => Self::find_fixed::<16>(ways, block),
            _ => {
                let mut found = usize::MAX;
                for (w, &b) in ways.iter().enumerate() {
                    if b == block {
                        found = w;
                    }
                }
                (found != usize::MAX).then_some(found)
            }
        }
    }

    /// Promotes way `base + w` to MRU by bumping every younger way's
    /// rank. Free ways (rank [`FREE_WAY`]) are never younger.
    fn touch(&mut self, base: usize, w: usize) {
        let age = self.ages[base + w];
        if age == 0 {
            return;
        }
        for a in &mut self.ages[base..base + self.associativity] {
            if *a < age {
                *a += 1;
            }
        }
        self.ages[base + w] = 0;
    }

    /// Installs `block` in the first free way of the set at `base`, or in
    /// the LRU way when the set is full (reporting the victim). New lines
    /// enter at MRU.
    fn install_at(&mut self, base: usize, block: BlockAddr, is_dirty: bool) -> Option<Evicted> {
        let assoc = self.associativity;
        let ages = &self.ages[base..base + assoc];
        let lru_rank = (assoc - 1) as u16;
        let mut way = None; // first free way, else the LRU way
        for (w, &a) in ages.iter().enumerate() {
            if a == FREE_WAY {
                way = Some((w, false));
                break;
            }
            if a == lru_rank {
                way = Some((w, true));
                // A free way further right may still exist; keep looking.
            }
        }
        let (w, full) = way.expect("a set always has a free or an LRU way");
        let evicted = full.then(|| Evicted {
            block: self.blocks[base + w],
            dirty: self.dirty[base + w],
        });
        // Bump every resident rank; the chosen way is then written at
        // rank 0, keeping ranks a permutation of 0..occupancy.
        for a in &mut self.ages[base..base + assoc] {
            if *a != FREE_WAY {
                *a += 1;
            }
        }
        self.blocks[base + w] = block;
        self.ages[base + w] = 0;
        self.dirty[base + w] = is_dirty;
        evicted
    }

    /// Performs a demand access, allocating on miss.
    ///
    /// On hit the line moves to MRU (and is dirtied by writes). On miss the
    /// block is inserted; if the set was full, the LRU line is evicted and
    /// reported.
    pub fn access(&mut self, block: BlockAddr, is_write: bool) -> CacheOutcome {
        if self.access_hit(block, is_write) {
            return CacheOutcome {
                hit: true,
                evicted: None,
            };
        }
        CacheOutcome {
            hit: false,
            evicted: self.miss_fill(block, is_write),
        }
    }

    /// Single-pass demand probe: the hit half of [`Cache::access`] with a
    /// reusable miss token. On hit the line moves to MRU (dirtying on
    /// write), the hit is counted, and `None` is returned. On miss there
    /// are no side effects; the returned [`MissedSet`] carries the set
    /// location so [`Cache::miss_fill_at`] / [`Cache::fill_at`] complete
    /// the access without recomputing the tag or re-scanning for the
    /// block.
    #[inline]
    pub fn probe(&mut self, block: BlockAddr, is_write: bool) -> Option<MissedSet> {
        self.probe_at(self.set_base(block), block, is_write)
    }

    /// [`Cache::probe`] with the set base already computed (by
    /// [`Cache::set_base`]): the tag/set arithmetic is skipped,
    /// everything else is identical.
    #[inline]
    pub fn probe_at(&mut self, base: usize, block: BlockAddr, is_write: bool) -> Option<MissedSet> {
        debug_assert_eq!(base, self.set_base(block), "pre-decoded base mismatch");
        if let Some(w) = self.find(base, block) {
            self.dirty[base + w] |= is_write;
            self.touch(base, w);
            self.hits += 1;
            return None;
        }
        Some(MissedSet { base })
    }

    /// The hit half of [`Cache::access`]: if `block` is resident, move it
    /// to MRU (dirtying on write), count the hit, and return `true`. A
    /// miss has no side effects — pair with [`Cache::miss_fill`] to
    /// complete the access without re-scanning the set.
    pub fn access_hit(&mut self, block: BlockAddr, is_write: bool) -> bool {
        self.probe(block, is_write).is_none()
    }

    /// The miss half of [`Cache::access`]: allocates `block` at MRU,
    /// counting the miss and evicting the LRU line if the set is full.
    /// The caller must already know the block is absent (via
    /// [`Cache::access_hit`] returning `false`).
    pub fn miss_fill(&mut self, block: BlockAddr, is_write: bool) -> Option<Evicted> {
        debug_assert!(
            self.find(self.set_base(block), block).is_none(),
            "miss_fill on a resident block"
        );
        self.miss_fill_at(
            MissedSet {
                base: self.set_base(block),
            },
            block,
            is_write,
        )
    }

    /// Completes a probed demand miss: allocates `block` at MRU in the
    /// probed set, counting the miss and evicting the LRU line if the set
    /// is full.
    pub fn miss_fill_at(
        &mut self,
        at: MissedSet,
        block: BlockAddr,
        is_write: bool,
    ) -> Option<Evicted> {
        debug_assert_eq!(
            at.base,
            self.set_base(block),
            "MissedSet redeemed for a block in a different set"
        );
        debug_assert!(
            self.find(at.base, block).is_none(),
            "miss_fill_at on a resident block"
        );
        self.misses += 1;
        self.install_at(at.base, block, is_write)
    }

    /// Completes a probed miss as a prefetch-consumption fill: allocates
    /// `block` clean at MRU in the probed set without counting demand
    /// traffic.
    pub fn fill_at(&mut self, at: MissedSet, block: BlockAddr) -> Option<Evicted> {
        debug_assert_eq!(
            at.base,
            self.set_base(block),
            "MissedSet redeemed for a block in a different set"
        );
        debug_assert!(
            self.find(at.base, block).is_none(),
            "fill_at on a resident block"
        );
        self.install_at(at.base, block, false)
    }

    /// Inserts a block without counting a demand hit/miss (prefetch fill).
    ///
    /// Returns the eviction if one occurred. If the block is already
    /// present it is refreshed to MRU and `None` is returned.
    pub fn fill(&mut self, block: BlockAddr) -> Option<Evicted> {
        let base = self.set_base(block);
        if let Some(w) = self.find(base, block) {
            self.touch(base, w);
            return None;
        }
        self.install_at(base, block, false)
    }

    /// Whether `block` is present (no recency update).
    ///
    /// Unlike `Cache::find` this needs no way position, so the
    /// specialized widths reduce with branch-free ORs: the dominant
    /// caller is the prefetch residency filter, whose answer is usually
    /// "absent" — a short-circuit scan there is a chain of mispredicted
    /// branches, while the OR-fold is straight-line compares.
    #[inline]
    pub fn contains(&self, block: BlockAddr) -> bool {
        let base = self.set_base(block);
        let ways = &self.blocks[base..base + self.associativity];
        match self.associativity {
            1 => ways[0] == block,
            2 => (ways[0] == block) | (ways[1] == block),
            4 => Self::any_match::<4>(ways, block),
            8 => Self::any_match::<8>(ways, block),
            16 => Self::any_match::<16>(ways, block),
            _ => ways.contains(&block),
        }
    }

    /// Branch-free any-way match over a compile-time-width window: the
    /// unrolled compare-and-OR chain vectorizes like
    /// [`Cache::find_fixed`] without the movemask.
    #[inline]
    fn any_match<const N: usize>(ways: &[BlockAddr], block: BlockAddr) -> bool {
        let ways: &[BlockAddr; N] = ways.try_into().expect("window narrower than declared");
        let mut any = false;
        for &b in ways {
            any |= b == block;
        }
        any
    }

    /// Removes `block` if present; returns whether it was present.
    /// Older ranks close up over the departed one.
    pub fn invalidate(&mut self, block: BlockAddr) -> bool {
        let base = self.set_base(block);
        if let Some(w) = self.find(base, block) {
            let age = self.ages[base + w];
            self.blocks[base + w] = SENTINEL_BLOCK;
            self.ages[base + w] = FREE_WAY;
            self.dirty[base + w] = false;
            for a in &mut self.ages[base..base + self.associativity] {
                if *a != FREE_WAY && *a > age {
                    *a -= 1;
                }
            }
            true
        } else {
            false
        }
    }

    /// Demand hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.ages.iter().filter(|&&a| a != FREE_WAY).count()
    }

    /// Total line capacity.
    pub fn capacity(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways.
        Cache::new(&CacheConfig {
            size_bytes: 4 * 64,
            associativity: 2,
        })
    }

    #[test]
    fn hit_after_miss() {
        let mut c = tiny();
        let b = BlockAddr::new(4);
        assert!(!c.access(b, false).hit);
        assert!(c.access(b, false).hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent_in_set() {
        let mut c = tiny();
        // Blocks 0, 2, 4 all map to set 0 (even numbers).
        c.access(BlockAddr::new(0), false);
        c.access(BlockAddr::new(2), false);
        c.access(BlockAddr::new(0), false); // refresh 0; LRU is now 2
        let out = c.access(BlockAddr::new(4), false);
        assert_eq!(
            out.evicted,
            Some(Evicted {
                block: BlockAddr::new(2),
                dirty: false
            })
        );
        assert!(c.contains(BlockAddr::new(0)));
        assert!(!c.contains(BlockAddr::new(2)));
    }

    #[test]
    fn writes_dirty_lines_and_eviction_reports_it() {
        let mut c = tiny();
        c.access(BlockAddr::new(0), true);
        c.access(BlockAddr::new(2), false);
        let out = c.access(BlockAddr::new(4), false); // evicts 0 (LRU)
        assert_eq!(
            out.evicted,
            Some(Evicted {
                block: BlockAddr::new(0),
                dirty: true
            })
        );
    }

    #[test]
    fn fill_does_not_count_demand_traffic() {
        let mut c = tiny();
        c.fill(BlockAddr::new(0));
        assert_eq!(c.misses(), 0);
        assert!(c.access(BlockAddr::new(0), false).hit);
    }

    #[test]
    fn fill_of_resident_block_refreshes_without_eviction() {
        let mut c = tiny();
        c.access(BlockAddr::new(0), false);
        c.access(BlockAddr::new(2), false);
        assert_eq!(c.fill(BlockAddr::new(0)), None);
        // 2 is now LRU; a new block evicts it, not 0.
        let e = c.fill(BlockAddr::new(4)).unwrap();
        assert_eq!(e.block, BlockAddr::new(2));
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c = tiny();
        c.access(BlockAddr::new(6), false);
        assert!(c.invalidate(BlockAddr::new(6)));
        assert!(!c.contains(BlockAddr::new(6)));
        assert!(!c.invalidate(BlockAddr::new(6)));
    }

    #[test]
    fn occupancy_tracks_contents() {
        let mut c = tiny();
        assert_eq!(c.capacity(), 4);
        c.access(BlockAddr::new(0), false);
        c.access(BlockAddr::new(1), false);
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = tiny();
        // Odd blocks map to set 1.
        c.access(BlockAddr::new(0), false);
        c.access(BlockAddr::new(1), false);
        c.access(BlockAddr::new(3), false);
        c.access(BlockAddr::new(5), false); // evicts 1, not 0
        assert!(c.contains(BlockAddr::new(0)));
        assert!(!c.contains(BlockAddr::new(1)));
    }

    #[test]
    fn invalidate_in_the_middle_preserves_lru_order() {
        // 4 ways in one set: fill, invalidate a middle-recency line, then
        // check the eviction order of the survivors is unchanged.
        let mut c = Cache::new(&CacheConfig {
            size_bytes: 4 * 64,
            associativity: 4,
        });
        for b in [0u64, 4, 8, 12] {
            c.access(BlockAddr::new(b), false);
        }
        // Recency now (MRU..LRU): 12, 8, 4, 0.
        assert!(c.invalidate(BlockAddr::new(8)));
        // A new block fills the free way without evicting.
        assert_eq!(c.access(BlockAddr::new(16), false).evicted, None);
        // Next allocation evicts 0 (still LRU), then 4.
        let e = c.access(BlockAddr::new(20), false).evicted.unwrap();
        assert_eq!(e.block, BlockAddr::new(0));
        let e = c.access(BlockAddr::new(24), false).evicted.unwrap();
        assert_eq!(e.block, BlockAddr::new(4));
    }
}
