//! Property-based tests of the memory-system substrate: the cache is
//! checked against a naive reference model, the directory against
//! protocol invariants, and the torus against metric-space laws.

use proptest::prelude::*;

use stems_memsim::{Cache, CacheConfig, Directory, Hierarchy, NodeId, SystemConfig, Torus};
use stems_types::BlockAddr;

/// A naive, obviously-correct set-associative LRU model.
struct RefCache {
    sets: Vec<Vec<u64>>, // MRU-first
    assoc: usize,
    mask: u64,
}

impl RefCache {
    fn new(sets: usize, assoc: usize) -> Self {
        RefCache {
            sets: vec![Vec::new(); sets],
            assoc,
            mask: sets as u64 - 1,
        }
    }

    fn access(&mut self, block: u64) -> bool {
        let set = &mut self.sets[(block & self.mask) as usize];
        if let Some(pos) = set.iter().position(|&b| b == block) {
            set.remove(pos);
            set.insert(0, block);
            true
        } else {
            if set.len() == self.assoc {
                set.pop();
            }
            set.insert(0, block);
            false
        }
    }
}

proptest! {
    /// The production cache agrees with the reference model on every
    /// hit/miss outcome under arbitrary access interleavings.
    #[test]
    fn cache_matches_reference_model(
        blocks in proptest::collection::vec(0u64..128, 1..500),
    ) {
        let cfg = CacheConfig { size_bytes: 16 * 64, associativity: 4 }; // 4 sets x 4 ways
        let mut cache = Cache::new(&cfg);
        let mut reference = RefCache::new(4, 4);
        for &b in &blocks {
            let got = cache.access(BlockAddr::new(b), false).hit;
            let want = reference.access(b);
            prop_assert_eq!(got, want, "divergence at block {}", b);
        }
    }

    /// Directory invariant: after any operation sequence, a modified
    /// owner is the sole sharer, and sharers never exceed the node count.
    #[test]
    fn directory_protocol_invariants(
        ops in proptest::collection::vec((0usize..4, 0u64..8, any::<bool>()), 1..300),
    ) {
        let mut dir = Directory::new(4);
        for &(node, block, write) in &ops {
            let block = BlockAddr::new(block);
            if write {
                let out = dir.write(NodeId(node), block);
                prop_assert!(!out.invalidated.contains(&NodeId(node)));
                prop_assert_eq!(dir.owner(block), Some(NodeId(node)));
                prop_assert_eq!(dir.sharers(block), vec![NodeId(node)]);
            } else {
                dir.read(NodeId(node), block);
                prop_assert!(dir.sharers(block).contains(&NodeId(node)));
            }
            prop_assert!(dir.sharers(block).len() <= 4);
            if let Some(owner) = dir.owner(block) {
                prop_assert_eq!(dir.sharers(block), vec![owner]);
            }
        }
    }

    /// The torus hop count is a metric: symmetric, zero iff equal, and
    /// satisfies the triangle inequality.
    #[test]
    fn torus_is_a_metric(a in 0usize..16, b in 0usize..16, c in 0usize..16) {
        let t = Torus::paper();
        let (a, b, c) = (NodeId(a), NodeId(b), NodeId(c));
        prop_assert_eq!(t.hops(a, b), t.hops(b, a));
        prop_assert_eq!(t.hops(a, a), 0);
        if a != b {
            prop_assert!(t.hops(a, b) > 0);
        }
        prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
        prop_assert!(t.hops(a, b) <= 4, "4x4 torus diameter is 4");
    }

    /// Inclusive hierarchy invariant: every L1-resident block is also
    /// L2-resident, under arbitrary demand/fill/invalidate mixes.
    #[test]
    fn hierarchy_is_inclusive(
        ops in proptest::collection::vec((0u64..512, 0u8..3), 1..400),
    ) {
        let mut h = Hierarchy::new(&SystemConfig::small());
        let mut touched = Vec::new();
        for &(block, op) in &ops {
            let block = BlockAddr::new(block);
            match op {
                0 => {
                    h.access(block, false);
                }
                1 => {
                    h.fill(block);
                }
                _ => {
                    h.invalidate(block);
                }
            }
            touched.push(block);
            if touched.len() % 16 == 0 {
                for &b in touched.iter().rev().take(16) {
                    if h.in_l1(b) {
                        prop_assert!(h.in_l2(b), "L1 block {b:?} missing from L2");
                    }
                }
            }
        }
    }
}
