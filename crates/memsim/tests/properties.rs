//! Property-based tests of the memory-system substrate: the cache is
//! checked against a naive reference model, the directory against
//! protocol invariants, and the torus against metric-space laws.

use proptest::prelude::*;

use stems_memsim::{Cache, CacheConfig, Directory, Hierarchy, NodeId, SystemConfig, Torus};
use stems_types::BlockAddr;

/// A naive, obviously-correct set-associative LRU model.
struct RefCache {
    sets: Vec<Vec<u64>>, // MRU-first
    assoc: usize,
    mask: u64,
}

impl RefCache {
    fn new(sets: usize, assoc: usize) -> Self {
        RefCache {
            sets: vec![Vec::new(); sets],
            assoc,
            mask: sets as u64 - 1,
        }
    }

    /// Returns `(hit, evicted)`.
    fn access(&mut self, block: u64) -> (bool, Option<u64>) {
        let set = &mut self.sets[(block & self.mask) as usize];
        if let Some(pos) = set.iter().position(|&b| b == block) {
            set.remove(pos);
            set.insert(0, block);
            (true, None)
        } else {
            let evicted = if set.len() == self.assoc {
                set.pop()
            } else {
                None
            };
            set.insert(0, block);
            (false, evicted)
        }
    }

    fn fill(&mut self, block: u64) -> Option<u64> {
        let set = &mut self.sets[(block & self.mask) as usize];
        if let Some(pos) = set.iter().position(|&b| b == block) {
            let b = set.remove(pos);
            set.insert(0, b);
            return None;
        }
        let evicted = if set.len() == self.assoc {
            set.pop()
        } else {
            None
        };
        set.insert(0, block);
        evicted
    }

    fn invalidate(&mut self, block: u64) -> bool {
        let set = &mut self.sets[(block & self.mask) as usize];
        if let Some(pos) = set.iter().position(|&b| b == block) {
            set.remove(pos);
            true
        } else {
            false
        }
    }
}

/// Drives the production cache and the MRU-first Vec reference through an
/// identical op sequence at the given associativity, asserting identical
/// hit/miss outcomes and identical eviction order. Returns the compat
/// `prop_assert*` error string so callers inside `proptest!` can `?` it.
fn check_against_reference(assoc: usize, ops: &[(u64, u8)]) -> Result<(), String> {
    let sets = 4usize;
    let cfg = CacheConfig {
        size_bytes: (sets * assoc * 64) as u64,
        associativity: assoc,
    };
    let mut cache = Cache::new(&cfg);
    let mut reference = RefCache::new(sets, assoc);
    for &(b, op) in ops {
        let block = BlockAddr::new(b);
        match op {
            0 => {
                let got = cache.access(block, false);
                let (want_hit, want_evicted) = reference.access(b);
                prop_assert_eq!(got.hit, want_hit, "hit/miss diverged at block {}", b);
                prop_assert_eq!(
                    got.evicted.map(|e| e.block.get()),
                    want_evicted,
                    "eviction order diverged at block {} (assoc {})",
                    b,
                    assoc
                );
            }
            1 => {
                let got = cache.fill(block);
                let want = reference.fill(b);
                prop_assert_eq!(
                    got.map(|e| e.block.get()),
                    want,
                    "fill eviction diverged at block {} (assoc {})",
                    b,
                    assoc
                );
            }
            _ => {
                prop_assert_eq!(
                    cache.invalidate(block),
                    reference.invalidate(b),
                    "invalidate diverged at block {} (assoc {})",
                    b,
                    assoc
                );
            }
        }
        prop_assert_eq!(cache.occupancy(), reference.sets.iter().map(Vec::len).sum());
    }
    Ok(())
}

proptest! {
    /// The production cache agrees with the reference model on every
    /// hit/miss outcome under arbitrary access interleavings.
    #[test]
    fn cache_matches_reference_model(
        blocks in proptest::collection::vec(0u64..128, 1..500),
    ) {
        let cfg = CacheConfig { size_bytes: 16 * 64, associativity: 4 }; // 4 sets x 4 ways
        let mut cache = Cache::new(&cfg);
        let mut reference = RefCache::new(4, 4);
        for &b in &blocks {
            let got = cache.access(BlockAddr::new(b), false).hit;
            let (want, _) = reference.access(b);
            prop_assert_eq!(got, want, "divergence at block {}", b);
        }
    }

    /// The array-backed set storage matches the MRU-first Vec oracle —
    /// hit/miss, eviction order, fill refresh, and invalidation — at the
    /// degenerate (direct-mapped), mid, and high associativities the
    /// intrusive age ranks were introduced for.
    #[test]
    fn cache_matches_reference_model_at_assoc_1(
        ops in proptest::collection::vec((0u64..256, 0u8..3), 1..400),
    ) {
        check_against_reference(1, &ops)?;
    }

    #[test]
    fn cache_matches_reference_model_at_assoc_8(
        ops in proptest::collection::vec((0u64..256, 0u8..3), 1..400),
    ) {
        check_against_reference(8, &ops)?;
    }

    #[test]
    fn cache_matches_reference_model_at_assoc_16(
        ops in proptest::collection::vec((0u64..256, 0u8..3), 1..400),
    ) {
        check_against_reference(16, &ops)?;
    }

    /// Directory invariant: after any operation sequence, a modified
    /// owner is the sole sharer, and sharers never exceed the node count.
    #[test]
    fn directory_protocol_invariants(
        ops in proptest::collection::vec((0usize..4, 0u64..8, any::<bool>()), 1..300),
    ) {
        let mut dir = Directory::new(4);
        for &(node, block, write) in &ops {
            let block = BlockAddr::new(block);
            if write {
                let out = dir.write(NodeId(node), block);
                prop_assert!(!out.invalidated.contains(&NodeId(node)));
                prop_assert_eq!(dir.owner(block), Some(NodeId(node)));
                prop_assert_eq!(dir.sharers(block), vec![NodeId(node)]);
            } else {
                dir.read(NodeId(node), block);
                prop_assert!(dir.sharers(block).contains(&NodeId(node)));
            }
            prop_assert!(dir.sharers(block).len() <= 4);
            if let Some(owner) = dir.owner(block) {
                prop_assert_eq!(dir.sharers(block), vec![owner]);
            }
        }
    }

    /// The torus hop count is a metric: symmetric, zero iff equal, and
    /// satisfies the triangle inequality.
    #[test]
    fn torus_is_a_metric(a in 0usize..16, b in 0usize..16, c in 0usize..16) {
        let t = Torus::paper();
        let (a, b, c) = (NodeId(a), NodeId(b), NodeId(c));
        prop_assert_eq!(t.hops(a, b), t.hops(b, a));
        prop_assert_eq!(t.hops(a, a), 0);
        if a != b {
            prop_assert!(t.hops(a, b) > 0);
        }
        prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
        prop_assert!(t.hops(a, b) <= 4, "4x4 torus diameter is 4");
    }

    /// Inclusive hierarchy invariant: every L1-resident block is also
    /// L2-resident, under arbitrary demand/fill/invalidate mixes.
    #[test]
    fn hierarchy_is_inclusive(
        ops in proptest::collection::vec((0u64..512, 0u8..3), 1..400),
    ) {
        let mut h = Hierarchy::new(&SystemConfig::small());
        let mut touched = Vec::new();
        for &(block, op) in &ops {
            let block = BlockAddr::new(block);
            match op {
                0 => {
                    h.access(block, false);
                }
                1 => {
                    h.fill(block);
                }
                _ => {
                    h.invalidate(block);
                }
            }
            touched.push(block);
            if touched.len() % 16 == 0 {
                for &b in touched.iter().rev().take(16) {
                    if h.in_l1(b) {
                        prop_assert!(h.in_l2(b), "L1 block {b:?} missing from L2");
                    }
                }
            }
        }
    }
}
