//! Differential oracle for the single-pass probe pipeline.
//!
//! `Hierarchy::probe` collapses the per-access SVB/L1/L2 resolution into
//! one call; the scalar pair `access_l1_hit` + `access_after_l1_miss`
//! (plus `fill_into` for interposed prefetch consumption) is retained as
//! the reference path. These properties drive both through identical
//! random access/invalidation/fill sequences — including interposed
//! (SVB-hit) accesses — and require the satisfying level, the eviction
//! lists, every demand counter, and the final residency to match exactly
//! at L1 associativities 1, 2, 4, 8, and 16 (the fixed-width specialized
//! set scans) plus 3 (the generic fallback scan).

use proptest::prelude::*;

use stems_memsim::{CacheConfig, Hierarchy, Level, ProbeLevel, SystemConfig};
use stems_types::BlockAddr;

/// A small, conflict-prone geometry: 8 L1 sets, 32 L2 sets at the given
/// associativities, so short random sequences exercise every path
/// (free-way fill, LRU eviction, inclusion back-invalidation).
fn config(l1_assoc: usize, l2_assoc: usize) -> SystemConfig {
    SystemConfig {
        l1: CacheConfig {
            size_bytes: (8 * l1_assoc * 64) as u64,
            associativity: l1_assoc,
        },
        l2: CacheConfig {
            size_bytes: (32 * l2_assoc * 64) as u64,
            associativity: l2_assoc,
        },
        ..SystemConfig::default()
    }
}

/// One step of the scalar reference path, mirroring what the engine's
/// pre-pipeline hot loop did call by call.
fn scalar_step(
    h: &mut Hierarchy,
    block: BlockAddr,
    is_write: bool,
    svb_has_block: bool,
    l1_evicted: &mut Vec<BlockAddr>,
) -> ProbeLevel {
    if h.access_l1_hit(block, is_write) {
        return ProbeLevel::L1;
    }
    if svb_has_block {
        h.fill_into(block, l1_evicted);
        return ProbeLevel::Svb;
    }
    match h.access_after_l1_miss(block, is_write, l1_evicted) {
        Level::L2 => ProbeLevel::L2,
        Level::Memory => ProbeLevel::Memory,
        Level::L1 => unreachable!("the L1 probe above missed"),
    }
}

/// Drives the probe pipeline and the scalar oracle through an identical
/// op sequence, asserting equality after every operation. Ops: 0 = read,
/// 1 = write, 2 = read with the interposed buffer holding the block
/// (SVB hit on L1 miss), 3 = coherence invalidation, 4 = prefetch fill.
fn check_differential(l1_assoc: usize, l2_assoc: usize, ops: &[(u64, u8)]) -> Result<(), String> {
    let cfg = config(l1_assoc, l2_assoc);
    let mut pipeline = Hierarchy::new(&cfg);
    let mut scalar = Hierarchy::new(&cfg);
    let mut pipe_evicted = Vec::new();
    let mut ref_evicted = Vec::new();
    for (i, &(raw, op)) in ops.iter().enumerate() {
        let block = BlockAddr::new(raw);
        match op {
            0..=2 => {
                let is_write = op == 1;
                let svb_has_block = op == 2;
                pipe_evicted.clear();
                ref_evicted.clear();
                let got = pipeline.probe(block, is_write, || svb_has_block, &mut pipe_evicted);
                let want = scalar_step(
                    &mut scalar,
                    block,
                    is_write,
                    svb_has_block,
                    &mut ref_evicted,
                );
                prop_assert_eq!(
                    got,
                    want,
                    "level diverged at op {} (block {}, assoc {}/{})",
                    i,
                    raw,
                    l1_assoc,
                    l2_assoc
                );
                prop_assert_eq!(
                    &pipe_evicted,
                    &ref_evicted,
                    "eviction list diverged at op {} (block {})",
                    i,
                    raw
                );
            }
            3 => {
                prop_assert_eq!(
                    pipeline.invalidate(block),
                    scalar.invalidate(block),
                    "invalidate diverged at op {} (block {})",
                    i,
                    raw
                );
            }
            _ => {
                pipe_evicted.clear();
                ref_evicted.clear();
                pipeline.fill_into(block, &mut pipe_evicted);
                scalar.fill_into(block, &mut ref_evicted);
                prop_assert_eq!(
                    &pipe_evicted,
                    &ref_evicted,
                    "fill eviction diverged at op {} (block {})",
                    i,
                    raw
                );
            }
        }
        // All demand counters must track exactly, every step.
        prop_assert_eq!(
            pipeline.l1().hits(),
            scalar.l1().hits(),
            "L1 hits, op {}",
            i
        );
        prop_assert_eq!(
            pipeline.l1_misses(),
            scalar.l1_misses(),
            "L1 misses, op {}",
            i
        );
        prop_assert_eq!(
            pipeline.l2().hits(),
            scalar.l2().hits(),
            "L2 hits, op {}",
            i
        );
        prop_assert_eq!(
            pipeline.l2_misses(),
            scalar.l2_misses(),
            "L2 misses, op {}",
            i
        );
        prop_assert_eq!(
            pipeline.l1().occupancy(),
            scalar.l1().occupancy(),
            "L1 occupancy, op {}",
            i
        );
        prop_assert_eq!(
            pipeline.l2().occupancy(),
            scalar.l2().occupancy(),
            "L2 occupancy, op {}",
            i
        );
        prop_assert_eq!(
            pipeline.in_l1(block),
            scalar.in_l1(block),
            "L1 residency, op {}",
            i
        );
        prop_assert_eq!(
            pipeline.in_l2(block),
            scalar.in_l2(block),
            "L2 residency, op {}",
            i
        );
    }
    Ok(())
}

proptest! {
    #[test]
    fn probe_matches_scalar_path_at_assoc_1(
        l2_assoc in 1usize..=4,
        ops in proptest::collection::vec((0u64..192, 0u8..5), 1..400),
    ) {
        check_differential(1, l2_assoc, &ops)?;
    }

    #[test]
    fn probe_matches_scalar_path_at_assoc_2(
        l2_assoc in 1usize..=8,
        ops in proptest::collection::vec((0u64..192, 0u8..5), 1..400),
    ) {
        check_differential(2, l2_assoc, &ops)?;
    }

    #[test]
    fn probe_matches_scalar_path_at_assoc_4(
        l2_assoc in 1usize..=8,
        ops in proptest::collection::vec((0u64..192, 0u8..5), 1..400),
    ) {
        check_differential(4, l2_assoc, &ops)?;
    }

    /// Associativity 3 is not one of the fixed-width specializations, so
    /// this pins the generic fallback scan against the scalar oracle too.
    #[test]
    fn probe_matches_scalar_path_at_assoc_3_generic_fallback(
        l2_assoc in 1usize..=8,
        ops in proptest::collection::vec((0u64..192, 0u8..5), 1..400),
    ) {
        check_differential(3, l2_assoc, &ops)?;
    }

    #[test]
    fn probe_matches_scalar_path_at_assoc_8(
        l2_assoc in 1usize..=8,
        ops in proptest::collection::vec((0u64..192, 0u8..5), 1..400),
    ) {
        check_differential(8, l2_assoc, &ops)?;
    }

    #[test]
    fn probe_matches_scalar_path_at_assoc_16(
        l2_assoc in 1usize..=16,
        ops in proptest::collection::vec((0u64..384, 0u8..5), 1..400),
    ) {
        check_differential(16, l2_assoc, &ops)?;
    }
}
