//! Loopback observability: a real `Server` on an ephemeral port, real
//! clients over TCP, and the wire scrape as the oracle — the counters a
//! `Metrics` request reports must equal what the client actually fed
//! (chunk for chunk, access for access), tenants must appear and
//! disappear with their sessions, and the drained event log must tell
//! the same story.

use std::net::SocketAddr;
use std::thread;

use stems_client::Client;
use stems_core::protocol::OpenRequest;
use stems_core::{Predictor, PrefetchConfig};
use stems_memsim::SystemConfig;
use stems_server::{Server, ServerConfig};
use stems_trace::store::{TraceReader, TraceWriter};
use stems_trace::Trace;
use stems_workloads::Workload;

/// Records per store frame — small, so even the tiny test trace spans
/// many chunk messages and the chunk counters have something to count.
const FRAME: usize = 512;

fn start_server() -> (SocketAddr, thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

fn test_trace() -> Trace {
    Workload::Db2.generate_scaled(0.01, 2009)
}

fn store_bytes(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = TraceWriter::new(&mut buf)
        .expect("writer")
        .with_frame_capacity(FRAME);
    for a in trace.iter() {
        w.push(*a).expect("push");
    }
    w.finish().expect("finish");
    drop(w);
    buf
}

fn open_request(predictor: Predictor) -> OpenRequest {
    OpenRequest {
        system: SystemConfig::small(),
        prefetch: PrefetchConfig::small(),
        predictor,
        invalidations: Some((0.01, 42)),
    }
}

/// The client-side ground truth: how many chunks and accesses a stream
/// of this store will feed (one wire chunk per store frame).
fn client_side_counts(bytes: &[u8]) -> (u64, u64) {
    let mut reader = TraceReader::new(bytes).expect("reader");
    let (mut chunks, mut accesses) = (0u64, 0u64);
    while let Some(chunk) = reader.next_chunk().expect("chunk") {
        chunks += 1;
        accesses += chunk.len() as u64;
    }
    (chunks, accesses)
}

/// Extracts the value of the unlabeled sample `name` from a text
/// exposition (`name value` — exact match, so `name{labels} value`
/// tenant rows never alias it).
fn sample(exposition: &str, name: &str) -> u64 {
    let line = exposition
        .lines()
        .find(|l| l.strip_prefix(name).is_some_and(|r| r.starts_with(' ')))
        .unwrap_or_else(|| panic!("no sample {name:?} in scrape:\n{exposition}"));
    line[name.len() + 1..]
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("unparseable sample line {line:?}"))
}

/// The acceptance bar for the observability subsystem: counters scraped
/// over the wire — from a *separate* monitoring connection — equal the
/// feeding client's own chunk/access counts exactly, per tenant and
/// process-wide; the tenant vanishes on close while process totals
/// survive; and the drained event log records the same lifecycle.
#[test]
fn scraped_counters_match_client_side_feed() {
    let bytes = store_bytes(&test_trace());
    let (expected_chunks, expected_accesses) = client_side_counts(&bytes);
    assert!(expected_chunks > 1, "test store must span several chunks");

    let (addr, handle) = start_server();
    let mut feeder = Client::connect(addr).expect("connect feeder");
    let mut monitor = Client::connect(addr).expect("connect monitor");

    let session = feeder.open(&open_request(Predictor::Stems)).expect("open");
    let mut reader = TraceReader::new(bytes.as_slice()).expect("reader");
    let (fed, _) = feeder.stream(session, &mut reader, 4).expect("stream");
    assert_eq!(fed, expected_accesses, "stream must feed the whole store");

    // Mid-session scrape from the monitoring connection: the live
    // tenant's rows carry its session id and predictor, and both views
    // (tenant and process-wide) agree with the client-side counts.
    let live = monitor.metrics(false).expect("scrape");
    assert_eq!(sample(&live.exposition, "stems_accesses_total"), fed);
    assert_eq!(
        sample(&live.exposition, "stems_chunks_total"),
        expected_chunks
    );
    let tenant_row =
        format!("stems_accesses_total{{session=\"{session}\",predictor=\"STeMS\"}} {fed}");
    assert!(
        live.exposition.contains(&tenant_row),
        "missing tenant row {tenant_row:?} in scrape:\n{}",
        live.exposition
    );
    assert_eq!(sample(&live.exposition, "stems_sessions_opened_total"), 1);
    assert_eq!(sample(&live.exposition, "stems_sessions_open"), 1);
    assert_eq!(sample(&live.exposition, "stems_wire_errors_total"), 0);
    // The chunk-latency histogram saw exactly one observation per chunk.
    assert_eq!(
        sample(&live.exposition, "stems_chunk_nanos_count"),
        expected_chunks
    );
    assert_eq!(
        sample(&live.exposition, "stems_chunk_records_sum"),
        expected_accesses
    );
    assert!(live.events.is_empty(), "no drain requested");

    // Close the session: its tenant leaves the scrape, the process-wide
    // totals survive, and the drained events narrate the lifecycle.
    let summary = feeder.close(session).expect("close");
    assert_eq!(summary.accesses_fed, fed);
    let after = monitor.metrics(true).expect("scrape after close");
    assert_eq!(sample(&after.exposition, "stems_sessions_open"), 0);
    assert_eq!(sample(&after.exposition, "stems_sessions_closed_total"), 1);
    assert_eq!(sample(&after.exposition, "stems_accesses_total"), fed);
    assert!(
        !after.exposition.contains("session=\""),
        "closed tenants must leave the scrape"
    );
    assert!(after.events.contains("\"event\":\"session_open\""));
    assert!(after.events.contains("\"event\":\"session_close\""));
    assert!(after.events.contains(&format!("\"accesses\":{fed}")));
    // Draining is destructive: a second drain starts empty.
    assert!(monitor.metrics(true).expect("rescrape").events.is_empty());

    assert!(monitor.shutdown_server().expect("shutdown").is_empty());
    handle.join().unwrap().expect("server run");
}

/// Two tenants with different predictors feed different amounts; the
/// scrape keeps their per-tenant rows separate while the process-wide
/// totals sum them.
#[test]
fn per_tenant_rows_stay_separate_and_process_totals_sum() {
    let trace = test_trace();
    let bytes = store_bytes(&trace);
    let (_, expected_accesses) = client_side_counts(&bytes);

    let (addr, handle) = start_server();
    let mut client = Client::connect(addr).expect("connect");

    // Tenant 1 (STeMS) gets the whole store; tenant 2 (TMS) one chunk.
    let full = client.open(&open_request(Predictor::Stems)).expect("open");
    let mut reader = TraceReader::new(bytes.as_slice()).expect("reader");
    let (fed_full, _) = client.stream(full, &mut reader, 4).expect("stream");
    let partial = client.open(&open_request(Predictor::Tms)).expect("open");
    let first: Vec<_> = trace.as_slice()[..FRAME.min(trace.len())].to_vec();
    client.send_chunk(partial, &first).expect("send_chunk");

    let scrape = client.metrics(false).expect("scrape");
    let full_row =
        format!("stems_accesses_total{{session=\"{full}\",predictor=\"STeMS\"}} {fed_full}");
    let partial_row = format!(
        "stems_accesses_total{{session=\"{partial}\",predictor=\"TMS\"}} {}",
        first.len()
    );
    assert!(
        scrape.exposition.contains(&full_row),
        "{full_row:?} missing"
    );
    assert!(
        scrape.exposition.contains(&partial_row),
        "{partial_row:?} missing"
    );
    assert_eq!(
        sample(&scrape.exposition, "stems_accesses_total"),
        expected_accesses + first.len() as u64,
        "process-wide total must sum the tenants"
    );
    assert_eq!(sample(&scrape.exposition, "stems_sessions_open"), 2);

    client.close(full).expect("close full");
    client.close(partial).expect("close partial");
    assert!(client.shutdown_server().expect("shutdown").is_empty());
    handle.join().unwrap().expect("server run");
}
