//! Loopback integration: a real `Server` on an ephemeral port, a real
//! `Client` over TCP, and the acceptance bar from the service design —
//! counters streamed back from the server must be **identical** to an
//! in-memory `Session::replay` of the same persisted trace, for every
//! predictor, under both golden configurations, including with many
//! tenant sessions interleaved on one server, and a `Shutdown` drain
//! must summarize every open session before the daemon exits cleanly.

use std::net::SocketAddr;
use std::thread;

use stems_client::Client;
use stems_core::protocol::{OpenRequest, SessionSummary};
use stems_core::{Predictor, PrefetchConfig, Session};
use stems_memsim::{CacheConfig, SystemConfig};
use stems_server::{Server, ServerConfig};
use stems_trace::store::{TraceReader, TraceWriter};
use stems_trace::Trace;
use stems_workloads::Workload;

/// Records per store frame — small, so even the tiny test trace spans
/// many chunk messages.
const FRAME: usize = 512;

fn start_server() -> (SocketAddr, thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

fn test_trace() -> Trace {
    Workload::Db2.generate_scaled(0.01, 2009)
}

fn store_bytes(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = TraceWriter::new(&mut buf)
        .expect("writer")
        .with_frame_capacity(FRAME);
    for a in trace.iter() {
        w.push(*a).expect("push");
    }
    w.finish().expect("finish");
    drop(w);
    buf
}

/// The two golden configurations from `engine::sim`: the default small
/// geometry and the 1KB 2-way L1 / 16KB L2 pressure geometry.
fn golden_configs() -> [(&'static str, SystemConfig, PrefetchConfig, (f64, u64)); 2] {
    let pressure = SystemConfig {
        l1: CacheConfig {
            size_bytes: 1024,
            associativity: 2,
        },
        l2: CacheConfig {
            size_bytes: 16 * 1024,
            associativity: 4,
        },
        ..SystemConfig::default()
    };
    [
        (
            "default",
            SystemConfig::small(),
            PrefetchConfig::small(),
            (0.01, 42),
        ),
        ("pressure", pressure, PrefetchConfig::small(), (0.02, 7)),
    ]
}

fn open_request(
    sys: &SystemConfig,
    cfg: &PrefetchConfig,
    predictor: Predictor,
    inval: (f64, u64),
) -> OpenRequest {
    OpenRequest {
        system: sys.clone(),
        prefetch: cfg.clone(),
        predictor,
        invalidations: Some(inval),
    }
}

/// The in-memory oracle: replay the same store bytes through a local
/// session and finalize, exactly as the server does.
fn local_summary(open: &OpenRequest, bytes: &[u8]) -> SessionSummary {
    let mut b = Session::builder(&open.system)
        .prefetch(&open.prefetch)
        .predictor(open.predictor);
    if let Some((rate, seed)) = open.invalidations {
        b = b.invalidations(rate, seed);
    }
    let mut session = b.build();
    let mut reader = TraceReader::new(bytes).expect("reader");
    let fed = session.replay(&mut reader).expect("replay");
    let recon = session.recon_stats();
    let pst_probes = session.pst_probes();
    let counters = session.finalize();
    SessionSummary {
        session: 0, // caller compares everything but the id
        accesses_fed: fed,
        counters,
        recon,
        pst_probes,
    }
}

fn assert_summaries_match(remote: &SessionSummary, local: &SessionSummary, what: &str) {
    assert_eq!(
        remote.accesses_fed, local.accesses_fed,
        "{what}: accesses fed diverged"
    );
    assert_eq!(
        remote.counters, local.counters,
        "{what}: counters diverged from in-memory replay"
    );
    assert_eq!(remote.recon, local.recon, "{what}: recon stats diverged");
    assert_eq!(
        remote.pst_probes, local.pst_probes,
        "{what}: pst probes diverged"
    );
}

/// Every predictor, both golden configurations, one session at a time:
/// streamed counters equal the in-memory replay's, byte for byte.
#[test]
fn streamed_counters_match_in_memory_replay() {
    let bytes = store_bytes(&test_trace());
    let (addr, handle) = start_server();
    let mut client = Client::connect(addr).expect("connect");
    for (config_name, sys, cfg, inval) in golden_configs() {
        for predictor in Predictor::all() {
            let open = open_request(&sys, &cfg, predictor, inval);
            let session = client.open(&open).expect("open");
            let mut reader = TraceReader::new(bytes.as_slice()).expect("reader");
            let (fed, last) = client.stream(session, &mut reader, 4).expect("stream");
            let last = last.expect("at least one chunk");
            assert_eq!(last.accesses_fed, fed, "last snapshot is cumulative");
            let remote = client.close(session).expect("close");
            let local = local_summary(&open, &bytes);
            assert_summaries_match(
                &remote,
                &local,
                &format!("{config_name}/{}", predictor.name()),
            );
        }
    }
    assert!(client.shutdown_server().expect("shutdown").is_empty());
    handle.join().unwrap().expect("server run");
}

/// Six tenant sessions (one per predictor) open simultaneously on one
/// server, chunks interleaved round-robin on a single connection: each
/// session's summary still equals its in-memory oracle.
#[test]
fn interleaved_tenant_sessions_stay_isolated() {
    let bytes = store_bytes(&test_trace());
    let (addr, handle) = start_server();
    let mut client = Client::connect(addr).expect("connect");
    let (_, sys, cfg, inval) = golden_configs().into_iter().next().unwrap();

    let opens: Vec<OpenRequest> = Predictor::all()
        .into_iter()
        .map(|p| open_request(&sys, &cfg, p, inval))
        .collect();
    let ids: Vec<u32> = opens
        .iter()
        .map(|o| client.open(o).expect("open"))
        .collect();
    assert!(
        ids.len() >= 4,
        "acceptance asks for >= 4 concurrent tenants"
    );

    // One reader per session, drained round-robin so every chunk of
    // every tenant interleaves with every other tenant's.
    let mut readers: Vec<TraceReader<&[u8]>> = ids
        .iter()
        .map(|_| TraceReader::new(bytes.as_slice()).expect("reader"))
        .collect();
    let mut done = vec![false; ids.len()];
    while !done.iter().all(|d| *d) {
        for (i, reader) in readers.iter_mut().enumerate() {
            if done[i] {
                continue;
            }
            match reader.next_chunk().expect("chunk") {
                Some(chunk) => {
                    let chunk = chunk.to_vec();
                    client.send_chunk(ids[i], &chunk).expect("send_chunk");
                }
                None => done[i] = true,
            }
        }
    }
    for (i, open) in opens.iter().enumerate() {
        let remote = client.close(ids[i]).expect("close");
        let local = local_summary(open, &bytes);
        assert_summaries_match(&remote, &local, open.predictor.name());
    }
    assert!(client.shutdown_server().expect("shutdown").is_empty());
    handle.join().unwrap().expect("server run");
}

/// Four client threads, each with its own connection and session,
/// streaming concurrently — exercises the checkout/checkin discipline
/// under real parallelism.
#[test]
fn parallel_connections_stream_concurrently() {
    let bytes = store_bytes(&test_trace());
    let (addr, handle) = start_server();
    let (_, sys, cfg, inval) = golden_configs().into_iter().next().unwrap();
    let predictors = [
        Predictor::Stride,
        Predictor::Tms,
        Predictor::Sms,
        Predictor::Stems,
    ];
    thread::scope(|s| {
        let workers: Vec<_> = predictors
            .iter()
            .map(|&p| {
                let bytes = &bytes;
                let open = open_request(&sys, &cfg, p, inval);
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let session = client.open(&open).expect("open");
                    let mut reader = TraceReader::new(bytes.as_slice()).expect("reader");
                    client.stream(session, &mut reader, 4).expect("stream");
                    let remote = client.close(session).expect("close");
                    let local = local_summary(&open, bytes);
                    assert_summaries_match(&remote, &local, open.predictor.name());
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker");
        }
    });
    let mut client = Client::connect(addr).expect("connect");
    assert!(client.shutdown_server().expect("shutdown").is_empty());
    handle.join().unwrap().expect("server run");
}

/// Shutdown with sessions still open: the drain finalizes each one,
/// streams back one summary per session (matching a local replay of
/// the same records), acknowledges with the drained count, and the
/// accept loop exits cleanly.
#[test]
fn shutdown_drains_open_sessions_with_summaries() {
    let bytes = store_bytes(&test_trace());
    let (addr, handle) = start_server();
    let (_, sys, cfg, inval) = golden_configs().into_iter().next().unwrap();

    // Feed the full store into two sessions but do NOT close them.
    let mut feeder = Client::connect(addr).expect("connect");
    let opens = [
        open_request(&sys, &cfg, Predictor::Tms, inval),
        open_request(&sys, &cfg, Predictor::Sms, inval),
    ];
    let mut ids = Vec::new();
    for open in &opens {
        let id = feeder.open(open).expect("open");
        let mut reader = TraceReader::new(bytes.as_slice()).expect("reader");
        feeder.stream(id, &mut reader, 4).expect("stream");
        ids.push(id);
    }

    // A second connection requests the drain.
    let mut admin = Client::connect(addr).expect("connect");
    let summaries = admin.shutdown_server().expect("shutdown");
    assert_eq!(summaries.len(), 2, "one summary per open session");
    for (open, id) in opens.iter().zip(&ids) {
        let remote = summaries
            .iter()
            .find(|s| s.session == *id)
            .expect("summary for session");
        let local = local_summary(open, &bytes);
        assert_summaries_match(remote, &local, open.predictor.name());
    }
    handle.join().unwrap().expect("server run");
}
