//! Chaos loopback: a real server, a real resilient client, and a
//! fault-injection proxy between them. The acceptance bar from the
//! fault-tolerance design: a full DB2 replay through the proxy at a
//! double-digit fault rate must complete with counters **byte-identical**
//! to a fault-free run, with zero panics or hangs, and with every
//! injected fault accounted for — the client's reconnect count equals
//! the proxy's fired fatal-fault count, and the server's scraped
//! `stems_sessions_resumed_total` equals the client's resume count.

use std::net::SocketAddr;
use std::thread;
use std::time::Duration;

use stems_client::{Client, ResilientClient, RetryPolicy};
use stems_core::protocol::{OpenRequest, SessionSummary};
use stems_core::{Predictor, Session};
use stems_memsim::SystemConfig;
use stems_server::chaos::{ChaosConfig, ChaosProxy};
use stems_server::{Server, ServerConfig};
use stems_trace::store::{TraceReader, TraceWriter};
use stems_trace::Trace;
use stems_workloads::Workload;

/// Small frames so the test trace spans many chunk messages — more
/// in-flight frames, more fault surface per connection.
const FRAME: usize = 512;

fn start_server() -> (SocketAddr, thread::JoinHandle<std::io::Result<()>>) {
    let config = ServerConfig {
        // Bound how long a wedged read can stall the run; every other
        // knob stays at the production default.
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

fn test_trace() -> Trace {
    Workload::Db2.generate_scaled(0.01, 2009)
}

fn store_bytes(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = TraceWriter::new(&mut buf)
        .expect("writer")
        .with_frame_capacity(FRAME);
    for a in trace.iter() {
        w.push(*a).expect("push");
    }
    w.finish().expect("finish");
    drop(w);
    buf
}

fn open_request(predictor: Predictor) -> OpenRequest {
    OpenRequest {
        system: SystemConfig::small(),
        prefetch: stems_core::PrefetchConfig::small(),
        predictor,
        invalidations: Some((0.01, 42)),
    }
}

/// The fault-free oracle: an in-memory replay of the same store bytes.
fn local_summary(open: &OpenRequest, bytes: &[u8]) -> SessionSummary {
    let mut b = Session::builder(&open.system)
        .prefetch(&open.prefetch)
        .predictor(open.predictor);
    if let Some((rate, seed)) = open.invalidations {
        b = b.invalidations(rate, seed);
    }
    let mut session = b.build();
    let mut reader = TraceReader::new(bytes).expect("reader");
    let fed = session.replay(&mut reader).expect("replay");
    let recon = session.recon_stats();
    let pst_probes = session.pst_probes();
    let counters = session.finalize();
    SessionSummary {
        session: 0,
        accesses_fed: fed,
        counters,
        recon,
        pst_probes,
    }
}

/// A retry policy tuned for a hostile loopback: fast backoff so the
/// test finishes quickly, a short read deadline so a swallowed reply
/// cannot stall a pipeline for long, and enough retries that even an
/// unlucky chain of per-connection faults cannot exhaust it (each
/// success resets the attempt counter; at fault rate 0.5 a 32-failure
/// streak has probability 2^-32).
fn chaos_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: 32,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(50),
        jitter_seed: seed,
        connect_timeout: Duration::from_secs(5),
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(5),
    }
}

/// Pulls one counter's value out of the metrics text exposition.
fn scraped(exposition: &str, name: &str) -> u64 {
    exposition
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("{name} missing from exposition"))
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("{name} value not a u64"))
}

/// The tentpole acceptance test: full DB2 replay through the fault
/// proxy at a 50% per-connection fatal-fault rate (plus delays and
/// splits), byte-identical counters, every fault accounted.
#[test]
fn chaos_replay_is_byte_identical_and_every_fault_accounted() {
    let bytes = store_bytes(&test_trace());
    let (server_addr, handle) = start_server();
    let chaos = ChaosConfig {
        seed: 2046,
        fault_rate: 0.9,
        delay_rate: 0.02,
        delay: Duration::from_millis(2),
        split_rate: 0.2,
        verbose: false,
    };
    let mut proxy =
        ChaosProxy::spawn("127.0.0.1:0", server_addr.to_string(), chaos).expect("spawn proxy");
    let proxy_addr = proxy.local_addr();

    let open = open_request(Predictor::Stems);
    let mut client = ResilientClient::new(proxy_addr.to_string(), chaos_policy(7));
    let session = client.open(&open).expect("open through chaos");
    let mut reader = TraceReader::new(bytes.as_slice()).expect("reader");
    let (fed, last) = client
        .stream(session, &mut reader, 4)
        .expect("stream through chaos");
    let last = last.expect("at least one chunk");
    assert_eq!(last.accesses_fed, fed, "last snapshot is cumulative");
    let remote = client.close(session).expect("close through chaos");

    // Byte-identical to the fault-free oracle: the replay lost nothing
    // and duplicated nothing, no matter what the proxy did.
    let local = local_summary(&open, &bytes);
    assert_eq!(remote.accesses_fed, local.accesses_fed);
    assert_eq!(fed, local.accesses_fed, "every record was fed exactly once");
    assert_eq!(remote.counters, local.counters, "counters diverged");
    assert_eq!(remote.recon, local.recon, "recon stats diverged");
    assert_eq!(remote.pst_probes, local.pst_probes, "pst probes diverged");

    // Every fault accounted: each fired fatal fault forced exactly one
    // client teardown, and each successful resume was counted by the
    // server. (The scrape goes direct, not through the proxy.)
    let stats = client.stats();
    let log = proxy.log();
    assert_eq!(
        stats.reconnects,
        log.fatal_faults(),
        "client teardowns must reconcile with the proxy's fired fatal faults \
         (stats {stats:?}, log {log:?})"
    );
    assert!(
        log.fatal_faults() >= 1,
        "seed 2046 at rate 0.9 must actually injure the run (log {log:?})"
    );
    let mut admin = Client::connect(server_addr).expect("connect direct");
    let reply = admin.metrics(false).expect("scrape");
    assert_eq!(
        scraped(&reply.exposition, "stems_sessions_resumed_total"),
        stats.resumes,
        "server-counted resumes must equal client-counted resumes"
    );
    assert_eq!(
        scraped(&reply.exposition, "stems_busy_total"),
        stats.busy_retries,
        "every Busy the server sent, the client retried"
    );

    proxy.stop();
    // A retried Open whose first reply was eaten can leak an idle
    // server-side session, so the drain may summarize stragglers —
    // that is the documented cost of keeping Open retryable.
    admin.shutdown_server().expect("shutdown");
    handle.join().unwrap().expect("server run");
}

/// A second predictor under a different chaos seed: the oracle match is
/// not a property of one lucky schedule.
#[test]
fn chaos_replay_matches_oracle_for_another_predictor_and_seed() {
    let bytes = store_bytes(&test_trace());
    let (server_addr, handle) = start_server();
    let chaos = ChaosConfig {
        seed: 77,
        fault_rate: 0.4,
        ..ChaosConfig::default()
    };
    let mut proxy =
        ChaosProxy::spawn("127.0.0.1:0", server_addr.to_string(), chaos).expect("proxy");
    let open = open_request(Predictor::Sms);
    let mut client = ResilientClient::new(proxy.local_addr().to_string(), chaos_policy(3));
    let session = client.open(&open).expect("open");
    let mut reader = TraceReader::new(bytes.as_slice()).expect("reader");
    let (fed, _) = client.stream(session, &mut reader, 4).expect("stream");
    let summary = client.close(session).expect("close");
    let local = local_summary(&open, &bytes);
    assert_eq!(fed, local.accesses_fed);
    assert_eq!(summary.counters, local.counters, "counters diverged");
    assert_eq!(
        client.stats().reconnects,
        proxy.log().fatal_faults(),
        "every fired fault reconciled"
    );
    proxy.stop();
    let mut admin = Client::connect(server_addr).expect("connect direct");
    admin.shutdown_server().expect("shutdown");
    handle.join().unwrap().expect("server run");
}

/// The kill-mid-stream pin, scripted rather than probabilistic: feed
/// half the sequenced chunks, kill the connection without closing the
/// session, resume from a *stale* acknowledgment on a fresh connection
/// (the server's journal is ahead — exactly what a died-before-ack
/// fault leaves behind), and finish. The summary must be byte-identical
/// to the oracle: the journal dedupes what was already applied.
#[test]
fn kill_mid_stream_then_resume_replays_byte_identically() {
    let bytes = store_bytes(&test_trace());
    let (addr, handle) = start_server();
    let open = open_request(Predictor::Stems);

    // Collect the frames once so the kill point is exact.
    let mut frames: Vec<Vec<stems_trace::Access>> = Vec::new();
    let mut reader = TraceReader::new(bytes.as_slice()).expect("reader");
    while let Some(chunk) = reader.next_chunk().expect("chunk") {
        frames.push(chunk.to_vec());
    }
    assert!(frames.len() >= 4, "need a meaningful mid-stream kill point");
    let kill_at = frames.len() / 2;

    let mut first = Client::connect(addr).expect("connect");
    let session = first.open(&open).expect("open");
    for (i, frame) in frames[..kill_at].iter().enumerate() {
        first
            .write_seq_chunk(session, (i + 1) as u64, frame)
            .expect("send");
        first.read_stats().expect("stats");
    }
    // Kill: drop the connection with the session un-closed and pretend
    // the last two acknowledgments were lost in flight.
    drop(first);
    let stale_ack = (kill_at as u64).saturating_sub(2);

    let mut second = Client::connect(addr).expect("reconnect");
    let info = second.resume(session, stale_ack).expect("resume");
    assert_eq!(
        info.last_seq, kill_at as u64,
        "journal answers with its true position, ahead of the stale ack"
    );
    for (i, frame) in frames.iter().enumerate().skip(info.last_seq as usize) {
        second
            .write_seq_chunk(session, (i + 1) as u64, frame)
            .expect("send");
        second.read_stats().expect("stats");
    }
    let remote = second.close(session).expect("close");
    let local = local_summary(&open, &bytes);
    assert_eq!(remote.accesses_fed, local.accesses_fed);
    assert_eq!(remote.counters, local.counters, "counters diverged");
    assert_eq!(remote.recon, local.recon);
    assert_eq!(remote.pst_probes, local.pst_probes);

    assert!(second.shutdown_server().expect("shutdown").is_empty());
    handle.join().unwrap().expect("server run");
}
