//! Property tests for the session protocol and the live service:
//! arbitrary records survive the full client → TCP → server → session
//! round trip at any chunking, and hostile payloads fed to the typed
//! message decoders are rejected — never panics, never garbage.

use proptest::prelude::*;

use stems_client::Client;
use stems_core::protocol::{OpenRequest, Request, Response};
use stems_core::{Predictor, PrefetchConfig, Session};
use stems_memsim::SystemConfig;
use stems_server::{Server, ServerConfig};
use stems_trace::{Access, AccessKind, Dependence, Trace};
use stems_types::{Addr, Pc};

fn access(pc: u64, addr: u64, write: bool, dep: bool, work: u16) -> Access {
    Access {
        pc: Pc::new(pc),
        addr: Addr::new(addr),
        kind: if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
        dep: if dep {
            Dependence::OnPrevAccess
        } else {
            Dependence::Independent
        },
        work_before: work,
    }
}

fn open_request(predictor: Predictor) -> OpenRequest {
    OpenRequest {
        system: SystemConfig::small(),
        prefetch: PrefetchConfig::small(),
        predictor,
        invalidations: Some((0.01, 42)),
    }
}

/// Pins the worked example in `docs/WIRE_PROTOCOL.md` byte for byte: a
/// `Chunk` feeding session 7 two reads, whose inner 10 payload bytes
/// are the trace store spec's frame payload for the same records.
#[test]
fn chunk_worked_example_is_byte_exact() {
    let records = [
        access(0x400, 0x1000, false, false, 0),
        access(0x404, 0x1040, false, false, 0),
    ];
    let mut out = Vec::new();
    let mut scratch = Vec::new();
    stems_core::protocol::encode_chunk(&mut out, &mut scratch, 7, &records);
    let expected: &[u8] = &[
        0x02, // kind = Chunk
        0x0c, 0x00, 0x00, 0x00, // payload_len = 12
        0x07, // session = 7
        0x02, // count = 2
        0x80, 0x10, 0x08, // pc deltas
        0x80, 0x40, 0x80, 0x01, // addr deltas
        0x00, // flags: two reads, independent
        0x00, 0x00, // work: 0, 0
        0x50, 0x85, 0x31, 0x81, // CRC-32 (0x81318550) over the 17 bytes above
    ];
    assert_eq!(
        out, expected,
        "docs/WIRE_PROTOCOL.md worked example drifted"
    );

    // And it decodes back to the same request.
    let (kind, payload, n) = stems_types::wire::decode_message(&out).unwrap();
    assert_eq!(n, out.len());
    match Request::decode(kind, payload).unwrap() {
        Request::Chunk {
            session,
            records: decoded,
        } => {
            assert_eq!(session, 7);
            assert_eq!(decoded, records);
        }
        other => panic!("expected Chunk, decoded {other:?}"),
    }
}

proptest! {
    /// Any record sequence, delivered in chunks of any size over a real
    /// loopback connection, finalizes to exactly the counters a local
    /// session produces from the same records — chunk boundaries are
    /// invisible to the simulation.
    #[test]
    fn loopback_replay_is_chunking_invariant(
        records in proptest::collection::vec(
            (any::<u64>(), 0u64..(1 << 20), any::<bool>(), any::<bool>(), any::<u16>()),
            1..120,
        ),
        chunk in 1usize..48,
        predictor_ix in 0usize..6,
    ) {
        let trace: Trace = records
            .iter()
            .map(|&(pc, addr, w, d, work)| access(pc, addr, w, d, work))
            .collect();
        let predictor = Predictor::all()[predictor_ix % Predictor::all().len()];
        let open = open_request(predictor);

        // Local oracle.
        let mut local = Session::builder(&open.system)
            .prefetch(&open.prefetch)
            .predictor(open.predictor)
            .invalidations(0.01, 42)
            .build();
        local.run_chunk(trace.as_slice());
        let expected = local.finalize();

        // Remote run, chunked at `chunk` records per message.
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());
        let mut client = Client::connect(addr).unwrap();
        let session = client.open(&open).unwrap();
        for piece in trace.as_slice().chunks(chunk) {
            let stats = client.send_chunk(session, piece).unwrap();
            prop_assert_eq!(stats.session, session);
        }
        let summary = client.close(session).unwrap();
        prop_assert!(client.shutdown_server().unwrap().is_empty());
        handle.join().unwrap().unwrap();

        prop_assert_eq!(summary.accesses_fed, trace.len() as u64);
        prop_assert_eq!(summary.counters, expected, "chunk={} predictor={}", chunk, predictor.name());
    }

    /// Random bytes under any defined kind never panic the typed
    /// decoders: they decode to a valid message or a typed `WireError`.
    #[test]
    fn random_payloads_never_panic_typed_decoders(
        kind in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let _ = Request::decode(kind, &payload);
        let _ = Response::decode(kind, &payload);
    }

    /// Corrupting a valid encoded request — any single byte — either
    /// still decodes (the flip landed in a don't-care value like an
    /// address bit) or reports a typed error. Never a panic. The wire
    /// CRC normally screens these out; this pins the defense in depth
    /// when the payload itself is hostile.
    #[test]
    fn flipped_request_payloads_never_panic(pos in 0usize..4096, bit in 0u32..8) {
        let open = open_request(Predictor::Stems);
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        let req = Request::Open(Box::new(open));
        req.encode(&mut out, &mut scratch);
        let pos = pos % out.len();
        out[pos] ^= 1 << bit;
        let _ = Request::decode(stems_core::protocol::KIND_OPEN, &out);
    }
}
