//! Server-side observability: the process-wide registry, the event
//! ring, per-tenant registries, and scrape rendering.
//!
//! One [`ServerObs`] lives for the daemon's lifetime. Connection
//! threads report lifecycle edges through it ([`ServerObs::emit`] and
//! the typed helpers); chunk execution reports through the per-session
//! `SessionObs` hooks it builds, which fan each update out to both the
//! tenant's registry and the process-wide one. A `Metrics` request
//! renders everything into one text exposition: process metrics first,
//! then each live tenant's metrics labeled `session="N"`,
//! `predictor="..."` (BTreeMap order, so scrapes are deterministic).
//!
//! Timestamps are nanoseconds since the server bound its listener (a
//! `MonotonicClock` anchored in [`ServerObs::new`]); log lines and
//! event records share the same clock. When a log level is configured,
//! every emitted event at or below that level is also written to
//! stderr as a `[+secs] LEVEL message` line — the daemon's entire
//! logging path goes through the event layer, not ad-hoc `eprintln!`.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use stems_core::protocol::MetricsReply;
use stems_core::session::Predictor;
use stems_obs::{
    Counter, Event, EventKind, EventRing, Gauge, LogLevel, MetricsRegistry, SessionObs,
};
use stems_types::clock::{MonotonicClock, SharedClock};
use stems_types::wire::WireError;

struct Tenant {
    registry: Arc<MetricsRegistry>,
    predictor: &'static str,
}

/// The daemon's observability hub; see the module docs.
pub struct ServerObs {
    clock: SharedClock,
    registry: MetricsRegistry,
    ring: Arc<EventRing>,
    log: Option<LogLevel>,
    slow_chunk_nanos: u64,
    tenants: Mutex<BTreeMap<u32, Tenant>>,
    connections: Counter,
    hello_failures: Counter,
    wire_errors: Counter,
    sessions_opened: Counter,
    sessions_closed: Counter,
    sessions_evicted: Counter,
    sessions_aborted: Counter,
    sessions_open: Gauge,
    sessions_resumed: Counter,
    chunks_deduped: Counter,
    chunks_shed: Counter,
    opens_shed: Counter,
    connections_shed: Counter,
    busy_replies: Counter,
    open_rejected: Counter,
    worker_panics: Counter,
    scrapes: Counter,
}

impl ServerObs {
    /// Creates the hub, anchoring its clock at "now" (bind time).
    /// `log` enables stderr lines at or below that level;
    /// `slow_chunk_nanos` is the per-chunk latency threshold baked into
    /// every session hook (0 disables); `event_capacity` bounds the
    /// ring.
    pub fn new(log: Option<LogLevel>, slow_chunk_nanos: u64, event_capacity: usize) -> ServerObs {
        let registry = MetricsRegistry::new();
        ServerObs {
            clock: Arc::new(MonotonicClock::new()),
            ring: Arc::new(EventRing::new(event_capacity)),
            log,
            slow_chunk_nanos,
            tenants: Mutex::new(BTreeMap::new()),
            connections: registry.counter("stems_connections_total"),
            hello_failures: registry.counter("stems_hello_failures_total"),
            wire_errors: registry.counter("stems_wire_errors_total"),
            sessions_opened: registry.counter("stems_sessions_opened_total"),
            sessions_closed: registry.counter("stems_sessions_closed_total"),
            sessions_evicted: registry.counter("stems_sessions_evicted_total"),
            sessions_aborted: registry.counter("stems_sessions_aborted_total"),
            sessions_open: registry.gauge("stems_sessions_open"),
            sessions_resumed: registry.counter("stems_sessions_resumed_total"),
            chunks_deduped: registry.counter("stems_chunks_deduped_total"),
            chunks_shed: registry.counter("stems_chunks_shed_total"),
            opens_shed: registry.counter("stems_opens_shed_total"),
            connections_shed: registry.counter("stems_connections_shed_total"),
            busy_replies: registry.counter("stems_busy_total"),
            open_rejected: registry.counter("stems_open_rejected_total"),
            worker_panics: registry.counter("stems_worker_panics_total"),
            scrapes: registry.counter("stems_scrapes_total"),
            registry,
        }
    }

    /// The process-wide registry (tests assert against it directly).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Nanoseconds since the server's clock origin.
    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// Records an event: timestamped into the ring, and onto stderr
    /// when a log level admits it.
    pub fn emit(&self, kind: EventKind) {
        let event = Event {
            nanos: self.clock.now_nanos(),
            kind,
        };
        if self.log.is_some_and(|max| event.kind.level() <= max) {
            let mut line = String::new();
            event.write_text(&mut line);
            eprintln!("{line}");
        }
        self.ring.push(event);
    }

    /// A connection was accepted.
    pub fn connection_accepted(&self) {
        self.connections.inc();
    }

    /// A peer failed the hello exchange.
    pub fn hello_failed(&self) {
        self.hello_failures.inc();
        self.emit(EventKind::Log {
            level: LogLevel::Warn,
            message: "connection failed the hello exchange".into(),
        });
    }

    /// A connection produced a protocol-level error: bumps the total
    /// and the per-kind labeled counter, and records the event.
    pub fn wire_error(&self, e: &WireError) {
        let kind = e.kind_name();
        self.wire_errors.inc();
        self.registry
            .counter_with("stems_wire_errors_by_kind_total", "kind", kind)
            .inc();
        self.emit(EventKind::WireError { kind });
    }

    /// An open was rejected (table full or draining).
    pub fn open_rejected(&self) {
        self.open_rejected.inc();
    }

    /// A reconnecting client resumed session `id`; `last_seq` is the
    /// server's authoritative journal position it was told.
    pub fn session_resumed(&self, id: u32, last_seq: u64) {
        self.sessions_resumed.inc();
        self.emit(EventKind::SessionResume {
            session: id,
            last_seq,
        });
    }

    /// A sequenced chunk at or below the journal position was skipped
    /// idempotently (a retransmit after partial delivery).
    pub fn chunk_deduped(&self) {
        self.chunks_deduped.inc();
    }

    /// Admission control answered `Busy` instead of running a chunk.
    pub fn chunk_shed(&self) {
        self.chunks_shed.inc();
        self.busy_replies.inc();
    }

    /// Admission control answered `Busy` instead of opening a session
    /// (load-shedding prefers rejecting new tenants over starving
    /// checked-out ones).
    pub fn open_shed(&self) {
        self.opens_shed.inc();
        self.busy_replies.inc();
        self.open_rejected.inc();
    }

    /// A `Busy` reply not tied to chunk/open/connection shedding (a
    /// `Close` raced another connection's checkout).
    pub fn busy_replied(&self) {
        self.busy_replies.inc();
    }

    /// The accept loop turned a connection away at the door (backlog
    /// full): hello + `Busy` + close, never a silent RST.
    pub fn connection_shed(&self) {
        self.connections_shed.inc();
        self.busy_replies.inc();
        self.emit(EventKind::Log {
            level: LogLevel::Warn,
            message: "connection shed: accept backlog full".into(),
        });
    }

    /// A connection worker panicked (the chunk guard has already
    /// repaired the session table by the time this is called).
    pub fn worker_panicked(&self) {
        self.worker_panics.inc();
        self.emit(EventKind::Log {
            level: LogLevel::Error,
            message: "connection worker panicked".into(),
        });
    }

    /// Registers session `id`: creates its tenant registry and returns
    /// the chunk hook to attach to the `Session`, wired to both the
    /// tenant registry and the process-wide one, with the configured
    /// slow-chunk threshold feeding the shared event ring.
    pub fn session_opened(&self, id: u32, predictor: Predictor) -> SessionObs {
        let tenant = Arc::new(MetricsRegistry::new());
        let hook = SessionObs::builder(self.clock.clone())
            .registry(&tenant)
            .registry(&self.registry)
            .slow_chunk(self.slow_chunk_nanos, id, self.ring.clone())
            .build();
        self.tenants.lock().unwrap().insert(
            id,
            Tenant {
                registry: tenant,
                predictor: predictor.name(),
            },
        );
        self.sessions_opened.inc();
        self.sessions_open.add(1);
        self.emit(EventKind::SessionOpen {
            session: id,
            predictor: predictor.name().to_string(),
        });
        hook
    }

    fn forget_tenant(&self, id: u32) {
        self.tenants.lock().unwrap().remove(&id);
        self.sessions_open.add(-1);
    }

    /// Session `id` closed normally after feeding `accesses` records.
    pub fn session_closed(&self, id: u32, accesses: u64) {
        self.forget_tenant(id);
        self.sessions_closed.inc();
        self.emit(EventKind::SessionClose {
            session: id,
            accesses,
        });
    }

    /// Session `id` was reclaimed by the idle sweeper.
    pub fn session_evicted(&self, id: u32) {
        self.forget_tenant(id);
        self.sessions_evicted.inc();
        self.emit(EventKind::SessionEvict { session: id });
    }

    /// Session `id` was torn down abnormally mid-chunk.
    pub fn session_aborted(&self, id: u32, context: &str) {
        self.forget_tenant(id);
        self.sessions_aborted.inc();
        self.emit(EventKind::SessionAbort {
            session: id,
            context: context.to_string(),
        });
    }

    /// Shutdown drain started over `sessions` live sessions.
    pub fn drain_started(&self, sessions: usize) {
        self.emit(EventKind::DrainStart { sessions });
    }

    /// Shutdown drain finished; `still_busy` sessions never checked
    /// back in. Drained sessions count as closed.
    pub fn drain_finished(&self, drained: &[u32], still_busy: usize) {
        for &id in drained {
            self.forget_tenant(id);
            self.sessions_closed.inc();
        }
        self.emit(EventKind::DrainFinish {
            sessions: still_busy,
        });
    }

    /// Renders a full scrape: process metrics, the ring's drop
    /// counter, then each live tenant's metrics labeled with its
    /// session id and predictor. `drain_events` empties the ring into
    /// the reply as JSON-lines.
    pub fn render(&self, drain_events: bool) -> MetricsReply {
        self.scrapes.inc();
        let mut exposition = String::new();
        self.registry.render(&mut exposition);
        stems_types::expo::write_sample(
            &mut exposition,
            "stems_events_dropped_total",
            &[],
            self.ring.dropped() as f64,
        );
        let tenants = self.tenants.lock().unwrap();
        for (id, tenant) in tenants.iter() {
            let id_str = id.to_string();
            tenant.registry.render_labeled(
                &mut exposition,
                &[
                    ("session", id_str.as_str()),
                    ("predictor", tenant.predictor),
                ],
            );
        }
        drop(tenants);
        let events = if drain_events {
            self.ring.drain_json()
        } else {
            String::new()
        };
        MetricsReply { exposition, events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_counters_and_scrape_shape() {
        let obs = ServerObs::new(None, 0, 16);
        obs.connection_accepted();
        let hook = obs.session_opened(1, Predictor::Stems);
        let started = hook.begin_chunk();
        hook.end_chunk(started, 64);
        let scrape = obs.render(false);
        assert!(scrape.exposition.contains("stems_sessions_opened_total 1"));
        assert!(scrape.exposition.contains("stems_sessions_open 1"));
        assert!(scrape.exposition.contains("stems_accesses_total 64"));
        assert!(scrape
            .exposition
            .contains("stems_accesses_total{session=\"1\",predictor=\"STeMS\"} 64"));
        assert!(scrape.exposition.contains("stems_events_dropped_total 0"));
        assert!(scrape.events.is_empty());

        obs.session_closed(1, 64);
        let after = obs.render(true);
        assert!(after.exposition.contains("stems_sessions_open 0"));
        assert!(
            !after.exposition.contains("session=\"1\""),
            "closed tenants leave the scrape"
        );
        // Process-wide totals survive the tenant's departure.
        assert!(after.exposition.contains("stems_accesses_total 64"));
        assert!(after.events.contains("\"event\":\"session_open\""));
        assert!(after.events.contains("\"event\":\"session_close\""));
        // The scrape counter includes the in-progress scrape.
        assert!(after.exposition.contains("stems_scrapes_total 2"));
        // Draining is destructive.
        assert!(obs.render(true).events.is_empty());
    }

    #[test]
    fn wire_errors_count_by_kind() {
        let obs = ServerObs::new(None, 0, 16);
        obs.wire_error(&WireError::Corrupt("x"));
        obs.wire_error(&WireError::Corrupt("y"));
        obs.wire_error(&WireError::UnknownKind { kind: 0x77 });
        let scrape = obs.render(true);
        assert!(scrape.exposition.contains("stems_wire_errors_total 3"));
        assert!(scrape
            .exposition
            .contains("stems_wire_errors_by_kind_total{kind=\"corrupt\"} 2"));
        assert!(scrape
            .exposition
            .contains("stems_wire_errors_by_kind_total{kind=\"unknown_kind\"} 1"));
        assert_eq!(scrape.events.matches("\"event\":\"wire_error\"").count(), 3);
    }

    #[test]
    fn aborts_are_recorded_and_tenants_forgotten() {
        let obs = ServerObs::new(None, 0, 16);
        let _hook = obs.session_opened(5, Predictor::Tms);
        obs.session_aborted(5, "worker panic");
        let scrape = obs.render(true);
        assert!(scrape.exposition.contains("stems_sessions_aborted_total 1"));
        assert!(scrape.exposition.contains("stems_sessions_open 0"));
        assert!(!scrape.exposition.contains("session=\"5\""));
        assert!(scrape.events.contains("\"event\":\"session_abort\""));
        assert!(scrape.events.contains("worker panic"));
    }
}
