//! `stems-serve` — run the trace-streaming session daemon.
//!
//! ```text
//! stems-serve [--addr HOST:PORT] [--port-file PATH]
//!             [--read-timeout-secs N] [--write-timeout-secs N]
//!             [--session-ttl-secs N] [--max-sessions N]
//!             [--log-level error|warn|info|debug] [--quiet]
//!             [--slow-chunk-ms N] [--event-capacity N]
//!             [--max-concurrent-chunks N] [--max-connections N]
//!             [--busy-retry-ms N]
//! ```
//!
//! Binds (default `127.0.0.1:0` — an ephemeral port), prints the bound
//! address on stdout, optionally writes the bound port to `--port-file`
//! (how scripts discover an ephemeral port), and serves until a client
//! sends `Shutdown`. Exit code 0 on a graceful drain.
//!
//! Logging goes through the observability event layer (see
//! `docs/OBSERVABILITY.md`): `--log-level info` mirrors every event at
//! or below that level to stderr as timestamped `[+secs] LEVEL ...`
//! lines; `--quiet` (the default) suppresses them. Events land in the
//! server's bounded ring either way and can be scraped over the wire
//! with `tracegen metrics --remote ADDR --events`.

use std::process::ExitCode;
use std::time::Duration;

use stems_obs::LogLevel;
use stems_server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: stems-serve [--addr HOST:PORT] [--port-file PATH]\n\
         \x20                  [--read-timeout-secs N] [--write-timeout-secs N]\n\
         \x20                  [--session-ttl-secs N] [--max-sessions N]\n\
         \x20                  [--log-level error|warn|info|debug] [--quiet]\n\
         \x20                  [--slow-chunk-ms N] [--event-capacity N]\n\
         \x20                  [--max-concurrent-chunks N] [--max-connections N]\n\
         \x20                  [--busy-retry-ms N]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut addr = String::from("127.0.0.1:0");
    let mut port_file: Option<String> = None;
    let mut config = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--port-file" => port_file = Some(value("--port-file")),
            "--read-timeout-secs" => {
                config.read_timeout = Duration::from_secs(parse(&value("--read-timeout-secs")))
            }
            "--write-timeout-secs" => {
                config.write_timeout = Duration::from_secs(parse(&value("--write-timeout-secs")))
            }
            "--session-ttl-secs" => {
                config.session_ttl = Duration::from_secs(parse(&value("--session-ttl-secs")))
            }
            "--max-sessions" => config.max_sessions = parse(&value("--max-sessions")) as usize,
            "--log-level" => {
                let raw = value("--log-level");
                config.log = Some(raw.parse::<LogLevel>().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage();
                }))
            }
            "--quiet" => config.log = None,
            "--slow-chunk-ms" => {
                config.slow_chunk_nanos = parse(&value("--slow-chunk-ms")) * 1_000_000
            }
            "--event-capacity" => {
                config.event_capacity = parse(&value("--event-capacity")) as usize
            }
            "--max-concurrent-chunks" => {
                config.max_concurrent_chunks = parse(&value("--max-concurrent-chunks")) as usize
            }
            "--max-connections" => {
                config.max_connections = parse(&value("--max-connections")) as usize
            }
            "--busy-retry-ms" => config.busy_retry_ms = parse(&value("--busy-retry-ms")) as u32,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let server = match Server::bind(&addr, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("stems-serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = server.local_addr();
    println!("listening on {bound}");
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, format!("{}\n", bound.port())) {
            eprintln!("stems-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(()) => {
            println!("drained, exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("stems-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse(s: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("not a number: {s}");
        usage();
    })
}
