//! `stems-chaos` — fault-injection TCP proxy for chaos testing.
//!
//! ```text
//! stems-chaos --upstream HOST:PORT [--listen HOST:PORT] [--port-file PATH]
//!             [--seed N] [--fault-rate F] [--delay-rate F] [--delay-ms N]
//!             [--split-rate F]
//! ```
//!
//! Binds (default `127.0.0.1:0` — an ephemeral port), prints the bound
//! address on stdout, optionally writes the bound port to
//! `--port-file`, and proxies every connection to `--upstream` with
//! deterministic seeded faults (see `docs/FAULT_TOLERANCE.md`). Each
//! fired fatal fault prints one `chaos: fatal kind=... conn=N ...`
//! line to stdout — CI counts those lines and reconciles them against
//! the client's reported reconnects and the server's shed metrics.
//!
//! Runs until killed; rates default to 0 (a transparent proxy).

use std::process::ExitCode;
use std::time::Duration;

use stems_server::chaos::{ChaosConfig, ChaosProxy};

fn usage() -> ! {
    eprintln!(
        "usage: stems-chaos --upstream HOST:PORT [--listen HOST:PORT] [--port-file PATH]\n\
         \x20                  [--seed N] [--fault-rate F] [--delay-rate F] [--delay-ms N]\n\
         \x20                  [--split-rate F]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut listen = String::from("127.0.0.1:0");
    let mut upstream: Option<String> = None;
    let mut port_file: Option<String> = None;
    let mut config = ChaosConfig {
        verbose: true,
        ..ChaosConfig::default()
    };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--listen" => listen = value("--listen"),
            "--upstream" => upstream = Some(value("--upstream")),
            "--port-file" => port_file = Some(value("--port-file")),
            "--seed" => config.seed = parse_u64(&value("--seed")),
            "--fault-rate" => config.fault_rate = parse_rate(&value("--fault-rate")),
            "--delay-rate" => config.delay_rate = parse_rate(&value("--delay-rate")),
            "--delay-ms" => config.delay = Duration::from_millis(parse_u64(&value("--delay-ms"))),
            "--split-rate" => config.split_rate = parse_rate(&value("--split-rate")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    let Some(upstream) = upstream else {
        eprintln!("--upstream is required");
        usage();
    };

    let proxy = match ChaosProxy::spawn(&listen, upstream.clone(), config) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("stems-chaos: cannot bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = proxy.local_addr();
    println!(
        "proxying {bound} -> {upstream} (seed={} fault-rate={} delay-rate={} split-rate={})",
        config.seed, config.fault_rate, config.delay_rate, config.split_rate
    );
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, format!("{}\n", bound.port())) {
            eprintln!("stems-chaos: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    // Serve until killed: park forever. The accept thread does the
    // work; `proxy` stays alive (and its Drop never runs — the process
    // exits with the threads), which is exactly what a kill expects.
    loop {
        std::thread::park();
    }
}

fn parse_u64(s: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("not a number: {s}");
        usage();
    })
}

fn parse_rate(s: &str) -> f64 {
    let rate: f64 = s.parse().unwrap_or_else(|_| {
        eprintln!("not a number: {s}");
        usage();
    });
    if !(0.0..=1.0).contains(&rate) {
        eprintln!("rate out of range [0, 1]: {s}");
        usage();
    }
    rate
}
