//! The trace-streaming session daemon.
//!
//! A [`Server`] listens on one TCP port and multiplexes any number of
//! tenant [`Session`]s: each `Open` request carries its own
//! `SystemConfig`/`PrefetchConfig`/`Predictor` choice, each `Chunk`
//! feeds records straight into `Session::run_chunk`, and every chunk is
//! answered with a counter snapshot so the client can watch coverage
//! converge while the trace streams. Message framing is
//! `stems_types::wire`, typed payloads are `stems_core::protocol`, and
//! the byte-level contract is `docs/WIRE_PROTOCOL.md`.
//!
//! The robustness plumbing a long-lived daemon needs is here rather
//! than in the protocol:
//!
//! * **per-connection read/write timeouts** — a dead or stalled peer
//!   cannot pin a connection thread forever; its sessions stay in the
//!   table and can be re-addressed from a new connection;
//! * **a session table with idle eviction** — sessions untouched for
//!   [`ServerConfig::session_ttl`] are discarded by the accept loop, so
//!   abandoned tenants cannot hold memory indefinitely;
//! * **bounded in-flight work** — requests on a connection are served
//!   strictly in order, one chunk resident at a time, and a session
//!   checked out by one connection answers `busy` to others instead of
//!   queueing unbounded work;
//! * **graceful drain** — a `Shutdown` request finalizes every open
//!   session, streams each summary back, acknowledges, and only then
//!   stops the accept loop; in-flight chunks on other connections are
//!   waited for, not aborted;
//! * **observability** — every lifecycle edge and chunk feeds the
//!   [`ServerObs`] hub (metrics registries + event ring, see
//!   `docs/OBSERVABILITY.md`); a `Metrics` request scrapes it live
//!   over the same wire protocol;
//! * **crash containment** — a connection worker that panics mid-chunk
//!   cannot strand its session as `Busy` forever: a drop-guard removes
//!   the orphaned slot, records a `session_abort` event, and the
//!   worker's panic is caught so the daemon keeps serving.
//!
//! # Example
//!
//! ```no_run
//! use stems_server::{Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! println!("listening on {}", server.local_addr());
//! server.run().unwrap(); // blocks until a client sends Shutdown
//! ```

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use stems_core::protocol::{ChunkStats, OpenRequest, Request, Response, SessionSummary};
use stems_core::Session;
use stems_obs::LogLevel;
use stems_types::wire::{self, WireError};

pub mod obs;

pub use obs::ServerObs;

/// Tunables for a [`Server`]. `Default` is sized for the loopback
/// harness and CI smoke runs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// A connection that sends nothing for this long is closed (its
    /// sessions survive in the table until `session_ttl`).
    pub read_timeout: Duration,
    /// A peer that refuses to drain responses for this long is closed.
    pub write_timeout: Duration,
    /// Sessions untouched for this long are evicted by the accept loop.
    pub session_ttl: Duration,
    /// Upper bound on concurrently open sessions across all tenants.
    pub max_sessions: usize,
    /// Mirror events at or below this level to stderr as timestamped
    /// log lines. `None` (the default) keeps the daemon silent; events
    /// still land in the ring either way.
    pub log: Option<LogLevel>,
    /// Chunks slower than this raise a `slow_chunk` event (0 disables).
    pub slow_chunk_nanos: u64,
    /// Capacity of the bounded event ring.
    pub event_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            session_ttl: Duration::from_secs(300),
            max_sessions: 64,
            log: None,
            slow_chunk_nanos: 250_000_000,
            event_capacity: 1024,
        }
    }
}

/// How often the accept loop polls for new connections, the shutdown
/// flag, and idle-session eviction.
const ACCEPT_POLL: Duration = Duration::from_millis(20);
/// How long a drain waits for chunks in flight on other connections.
const DRAIN_WAIT: Duration = Duration::from_millis(1);

struct SessionState {
    session: Session,
    fed: u64,
}

enum Slot {
    /// Parked in the table, ready for the next chunk.
    Idle(Box<SessionState>),
    /// Checked out by a connection thread running a chunk.
    Busy,
}

struct Table {
    next_id: u32,
    slots: HashMap<u32, (Slot, Instant)>,
}

impl Table {
    /// Number of live sessions (idle or checked out).
    fn len(&self) -> usize {
        self.slots.len()
    }
}

struct Shared {
    config: ServerConfig,
    shutdown: AtomicBool,
    table: Mutex<Table>,
    obs: ServerObs,
}

impl Shared {
    fn checkout(&self, id: u32) -> Result<Box<SessionState>, &'static str> {
        let mut table = self.table.lock().unwrap();
        match table.slots.get_mut(&id) {
            None => Err("no such session"),
            Some((slot @ Slot::Idle(_), touched)) => {
                *touched = Instant::now();
                match std::mem::replace(slot, Slot::Busy) {
                    Slot::Idle(state) => Ok(state),
                    Slot::Busy => unreachable!(),
                }
            }
            Some((Slot::Busy, _)) => Err("session is busy on another connection"),
        }
    }

    fn checkin(&self, id: u32, state: Box<SessionState>) {
        let mut table = self.table.lock().unwrap();
        table.slots.insert(id, (Slot::Idle(state), Instant::now()));
    }

    fn remove(&self, id: u32) -> Result<Box<SessionState>, &'static str> {
        let mut table = self.table.lock().unwrap();
        match table.slots.get(&id) {
            None => Err("no such session"),
            Some((Slot::Busy, _)) => Err("session is busy on another connection"),
            Some((Slot::Idle(_), _)) => match table.slots.remove(&id) {
                Some((Slot::Idle(state), _)) => Ok(state),
                _ => unreachable!(),
            },
        }
    }

    /// Evicts idle sessions untouched for longer than `session_ttl`.
    fn sweep_idle(&self) -> usize {
        let ttl = self.config.session_ttl;
        let now = Instant::now();
        let mut evicted = Vec::new();
        {
            let mut table = self.table.lock().unwrap();
            table.slots.retain(|id, (slot, touched)| {
                let keep = matches!(slot, Slot::Busy) || now - *touched < ttl;
                if !keep {
                    evicted.push(*id);
                }
                keep
            });
        }
        // Events are recorded outside the table lock.
        for &id in &evicted {
            self.obs.session_evicted(id);
        }
        evicted.len()
    }

    /// Takes every session out of the table for a drain, waiting for
    /// busy ones to be checked back in. Returns them in session-id
    /// order so drain summaries are deterministic.
    fn drain_all(&self) -> Vec<(u32, Box<SessionState>)> {
        let deadline = Instant::now() + self.config.write_timeout;
        let mut drained = Vec::new();
        loop {
            {
                let mut table = self.table.lock().unwrap();
                let idle_ids: Vec<u32> = table
                    .slots
                    .iter()
                    .filter(|(_, (slot, _))| matches!(slot, Slot::Idle(_)))
                    .map(|(id, _)| *id)
                    .collect();
                for id in idle_ids {
                    if let Some((Slot::Idle(state), _)) = table.slots.remove(&id) {
                        drained.push((id, state));
                    }
                }
                if table.slots.is_empty() {
                    break;
                }
            }
            // Busy sessions are mid-chunk on another connection; give
            // them time to check back in rather than aborting them.
            if Instant::now() > deadline {
                break;
            }
            thread::sleep(DRAIN_WAIT);
        }
        drained.sort_by_key(|(id, _)| *id);
        drained
    }
}

/// Owns a checked-out session slot for the duration of one chunk.
///
/// The happy path calls [`CheckoutGuard::finish`], which checks the
/// session back in. If the guard is instead dropped with the state
/// still held — the chunk panicked, and the stack is unwinding — the
/// slot would otherwise stay `Busy` in the table forever (unservable,
/// unevictable, and a permanent drain blocker). `Drop` repairs that:
/// it removes the orphaned entry, discards the half-run session (its
/// simulation state is unreliable mid-chunk), and records the abort.
struct CheckoutGuard<'a> {
    shared: &'a Shared,
    id: u32,
    state: Option<Box<SessionState>>,
}

impl<'a> CheckoutGuard<'a> {
    fn new(shared: &'a Shared, id: u32, state: Box<SessionState>) -> CheckoutGuard<'a> {
        CheckoutGuard {
            shared,
            id,
            state: Some(state),
        }
    }

    fn state(&mut self) -> &mut SessionState {
        self.state.as_mut().expect("state taken before finish")
    }

    /// Normal completion: parks the session back in the table.
    fn finish(mut self) {
        let state = self.state.take().expect("finish called twice");
        self.shared.checkin(self.id, state);
    }
}

impl Drop for CheckoutGuard<'_> {
    fn drop(&mut self) {
        if self.state.take().is_some() {
            let mut table = self.shared.table.lock().unwrap();
            table.slots.remove(&self.id);
            drop(table);
            self.shared
                .obs
                .session_aborted(self.id, "connection worker died mid-chunk");
        }
    }
}

/// The daemon: a bound listener plus the shared session table.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds to `addr` (port 0 picks an ephemeral port — read it back
    /// with [`Server::local_addr`]).
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            local_addr,
            shared: Arc::new(Shared {
                shutdown: AtomicBool::new(false),
                table: Mutex::new(Table {
                    next_id: 1,
                    slots: HashMap::new(),
                }),
                obs: ServerObs::new(config.log, config.slow_chunk_nanos, config.event_capacity),
                config,
            }),
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that observes (and can set) the shutdown flag, for
    /// embedding the server in a process that stops it itself.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves connections until a client's `Shutdown` request (or
    /// [`ShutdownHandle::shutdown`]) drains the server. Every
    /// connection thread is joined before returning, so when `run`
    /// comes back no request is still in flight.
    pub fn run(self) -> std::io::Result<()> {
        let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
        let mut last_sweep = Instant::now();
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.shared.obs.connection_accepted();
                    let shared = Arc::clone(&self.shared);
                    workers.push(thread::spawn(move || {
                        // Contain panics to the one connection: the
                        // chunk guard has already repaired the session
                        // table by the time the unwind reaches here.
                        if catch_unwind(AssertUnwindSafe(|| serve_connection(stream, &shared)))
                            .is_err()
                        {
                            shared.obs.worker_panicked();
                        }
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(ACCEPT_POLL);
                }
                Err(e) => return Err(e),
            }
            workers.retain(|w| !w.is_finished());
            if last_sweep.elapsed() >= Duration::from_secs(1) {
                self.shared.sweep_idle();
                last_sweep = Instant::now();
            }
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// Observes and sets a [`Server`]'s shutdown flag from outside its
/// accept loop.
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Asks the accept loop to stop. Does not drain sessions — use a
    /// client `Shutdown` request for a summarized drain.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

fn summarize(id: u32, mut state: Box<SessionState>) -> SessionSummary {
    let recon = state.session.recon_stats();
    let pst_probes = state.session.pst_probes();
    let counters = state.session.finalize();
    SessionSummary {
        session: id,
        accesses_fed: state.fed,
        counters,
        recon,
        pst_probes,
    }
}

fn build_session(open: &OpenRequest) -> Session {
    let mut b = Session::builder(&open.system)
        .prefetch(&open.prefetch)
        .predictor(open.predictor);
    if let Some((rate, seed)) = open.invalidations {
        b = b.invalidations(rate, seed);
    }
    b.build()
}

/// One connection's request loop. Any framing error ends the
/// connection (after a best-effort `Error` response); request-level
/// failures (unknown session, full table) are answered and the
/// connection keeps going.
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    // Hello exchange: validate the client's, then identify ourselves.
    if wire::read_hello(&mut reader).is_err() {
        shared.obs.hello_failed();
        return;
    }
    if wire::write_hello(&mut writer).is_err() || writer.flush().is_err() {
        shared.obs.hello_failed();
        return;
    }

    let mut payload = Vec::new();
    let mut frame = Vec::new();
    let mut scratch = Vec::new();
    let send = |writer: &mut BufWriter<TcpStream>,
                frame: &mut Vec<u8>,
                scratch: &mut Vec<u8>,
                resp: &Response|
     -> Result<(), WireError> {
        resp.write_to(writer, frame, scratch)?;
        writer.flush()?;
        Ok(())
    };

    loop {
        let request = match Request::read_from(&mut reader, &mut payload) {
            Ok(Some(req)) => req,
            Ok(None) => return,              // peer closed cleanly
            Err(WireError::Io(_)) => return, // dead/stalled peer or timeout
            Err(e) => {
                // Hostile or corrupt bytes: report the typed error,
                // then drop the connection — framing is unrecoverable.
                // A failed decode never strands a session: the chunk is
                // fully decoded before any checkout happens.
                shared.obs.wire_error(&e);
                let resp = Response::Error {
                    session: None,
                    message: e.to_string(),
                };
                let _ = send(&mut writer, &mut frame, &mut scratch, &resp);
                return;
            }
        };
        let reply = match request {
            Request::Open(open) => handle_open(shared, &open),
            Request::Chunk { session, records } => handle_chunk(shared, session, &records),
            Request::Close { session } => match shared.remove(session) {
                Ok(state) => {
                    shared.obs.session_closed(session, state.fed);
                    Response::Summary(Box::new(summarize(session, state)))
                }
                Err(msg) => Response::Error {
                    session: Some(session),
                    message: msg.into(),
                },
            },
            Request::Metrics { drain_events } => {
                Response::MetricsReply(Box::new(shared.obs.render(drain_events)))
            }
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.obs.drain_started(shared.table.lock().unwrap().len());
                let drained = shared.drain_all();
                let count = drained.len() as u32;
                let still_busy = shared.table.lock().unwrap().len();
                let ids: Vec<u32> = drained.iter().map(|(id, _)| *id).collect();
                shared.obs.drain_finished(&ids, still_busy);
                for (id, state) in drained {
                    let resp = Response::Summary(Box::new(summarize(id, state)));
                    if send(&mut writer, &mut frame, &mut scratch, &resp).is_err() {
                        return;
                    }
                }
                let _ = send(
                    &mut writer,
                    &mut frame,
                    &mut scratch,
                    &Response::ShutdownAck { drained: count },
                );
                return;
            }
        };
        if send(&mut writer, &mut frame, &mut scratch, &reply).is_err() {
            return;
        }
    }
}

fn handle_open(shared: &Shared, open: &OpenRequest) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        shared.obs.open_rejected();
        return Response::Error {
            session: None,
            message: "server is shutting down".into(),
        };
    }
    {
        let table = shared.table.lock().unwrap();
        if table.len() >= shared.config.max_sessions {
            shared.obs.open_rejected();
            return Response::Error {
                session: None,
                message: format!("session table full ({} sessions)", table.len()),
            };
        }
    }
    // Build the tenant's Session outside the lock — table geometry can
    // make this allocate tens of megabytes.
    let mut state = Box::new(SessionState {
        session: build_session(open),
        fed: 0,
    });
    let mut table = shared.table.lock().unwrap();
    if table.len() >= shared.config.max_sessions {
        let len = table.len();
        drop(table);
        shared.obs.open_rejected();
        return Response::Error {
            session: None,
            message: format!("session table full ({len} sessions)"),
        };
    }
    let id = table.next_id;
    table.next_id = table.next_id.wrapping_add(1).max(1);
    // The hook needs the assigned id (its metrics are labeled by it),
    // so it is attached here rather than in the builder.
    state
        .session
        .set_obs(shared.obs.session_opened(id, open.predictor));
    table.slots.insert(id, (Slot::Idle(state), Instant::now()));
    Response::Opened { session: id }
}

fn handle_chunk(shared: &Shared, session: u32, records: &[stems_trace::Access]) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::Error {
            session: Some(session),
            message: "server is shutting down".into(),
        };
    }
    let state = match shared.checkout(session) {
        Ok(state) => state,
        Err(msg) => {
            return Response::Error {
                session: Some(session),
                message: msg.into(),
            }
        }
    };
    // The chunk runs outside the table lock: other tenants' chunks
    // proceed concurrently, and the drain path waits for this slot to
    // check back in rather than observing a half-run session. The
    // guard guarantees the `Busy` slot is repaired even if run_chunk
    // panics (the worker's unwind would otherwise orphan it forever).
    let mut guard = CheckoutGuard::new(shared, session, state);
    let state = guard.state();
    state.session.run_chunk(records);
    state.fed += records.len() as u64;
    let stats = ChunkStats {
        session,
        accesses_fed: state.fed,
        counters: *state.session.counters(),
    };
    guard.finish();
    Response::Stats(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_core::session::Predictor;
    use stems_core::PrefetchConfig;
    use stems_memsim::SystemConfig;

    fn test_shared() -> Shared {
        let config = ServerConfig {
            event_capacity: 16,
            ..ServerConfig::default()
        };
        Shared {
            shutdown: AtomicBool::new(false),
            table: Mutex::new(Table {
                next_id: 1,
                slots: HashMap::new(),
            }),
            obs: ServerObs::new(config.log, config.slow_chunk_nanos, config.event_capacity),
            config,
        }
    }

    fn open_session(shared: &Shared) -> u32 {
        let open = OpenRequest {
            system: SystemConfig::small(),
            prefetch: PrefetchConfig::small(),
            predictor: Predictor::Stems,
            invalidations: None,
        };
        match handle_open(shared, &open) {
            Response::Opened { session } => session,
            other => panic!("open failed: {other:?}"),
        }
    }

    #[test]
    fn panicking_chunk_repairs_the_busy_slot() {
        // Without the guard, a panic mid-run_chunk leaves the slot
        // `Busy` forever: unservable, unevictable, and drain_all spins
        // on it until its deadline. The guard must remove the entry and
        // record the abort instead.
        let shared = test_shared();
        let id = open_session(&shared);

        let state = shared.checkout(id).expect("checkout");
        let panic_result = {
            // Silence the expected panic's default backtrace spew.
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let result = catch_unwind(AssertUnwindSafe(|| {
                let mut guard = CheckoutGuard::new(&shared, id, state);
                let _ = guard.state();
                panic!("simulated chunk crash");
            }));
            std::panic::set_hook(prev);
            result
        };
        assert!(panic_result.is_err(), "the chunk must actually panic");

        // The slot is gone, not stuck Busy: new requests get a clean
        // "no such session", the table can accept fresh opens, and the
        // drain path has nothing to wait on.
        assert_eq!(shared.table.lock().unwrap().len(), 0);
        assert_eq!(shared.checkout(id).err(), Some("no such session"));
        let scrape = shared.obs.render(true);
        assert!(scrape.exposition.contains("stems_sessions_aborted_total 1"));
        assert!(scrape.exposition.contains("stems_sessions_open 0"));
        assert!(scrape.events.contains("\"event\":\"session_abort\""));

        // The table is still fully serviceable afterwards.
        let id2 = open_session(&shared);
        assert_ne!(id2, id);
        let state2 = shared.checkout(id2).expect("checkout after repair");
        let guard = CheckoutGuard::new(&shared, id2, state2);
        guard.finish();
        assert_eq!(shared.checkout(id2).map(|_| ()), Ok(()));
    }

    #[test]
    fn finished_guard_checks_back_in_without_abort() {
        let shared = test_shared();
        let id = open_session(&shared);
        let state = shared.checkout(id).expect("checkout");
        let mut guard = CheckoutGuard::new(&shared, id, state);
        guard.state().fed += 10;
        guard.finish();
        let back = shared.checkout(id).expect("still present");
        assert_eq!(back.fed, 10);
        shared.checkin(id, back);
        let scrape = shared.obs.render(false);
        assert!(scrape.exposition.contains("stems_sessions_aborted_total 0"));
        assert!(scrape.exposition.contains("stems_sessions_open 1"));
    }
}
