//! The trace-streaming session daemon.
//!
//! A [`Server`] listens on one TCP port and multiplexes any number of
//! tenant [`Session`]s: each `Open` request carries its own
//! `SystemConfig`/`PrefetchConfig`/`Predictor` choice, each `Chunk`
//! feeds records straight into `Session::run_chunk`, and every chunk is
//! answered with a counter snapshot so the client can watch coverage
//! converge while the trace streams. Message framing is
//! `stems_types::wire`, typed payloads are `stems_core::protocol`, and
//! the byte-level contract is `docs/WIRE_PROTOCOL.md`.
//!
//! The robustness plumbing a long-lived daemon needs is here rather
//! than in the protocol:
//!
//! * **per-connection read/write timeouts** — a dead or stalled peer
//!   cannot pin a connection thread forever; its sessions stay in the
//!   table and can be re-addressed from a new connection;
//! * **a session table with idle eviction** — sessions untouched for
//!   [`ServerConfig::session_ttl`] are discarded by the accept loop, so
//!   abandoned tenants cannot hold memory indefinitely;
//! * **bounded in-flight work** — requests on a connection are served
//!   strictly in order, one chunk resident at a time, and a session
//!   checked out by one connection answers `busy` to others instead of
//!   queueing unbounded work;
//! * **graceful drain** — a `Shutdown` request finalizes every open
//!   session, streams each summary back, acknowledges, and only then
//!   stops the accept loop; in-flight chunks on other connections are
//!   waited for, not aborted.
//!
//! # Example
//!
//! ```no_run
//! use stems_server::{Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! println!("listening on {}", server.local_addr());
//! server.run().unwrap(); // blocks until a client sends Shutdown
//! ```

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use stems_core::protocol::{ChunkStats, OpenRequest, Request, Response, SessionSummary};
use stems_core::Session;
use stems_types::wire::{self, WireError};

/// Tunables for a [`Server`]. `Default` is sized for the loopback
/// harness and CI smoke runs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// A connection that sends nothing for this long is closed (its
    /// sessions survive in the table until `session_ttl`).
    pub read_timeout: Duration,
    /// A peer that refuses to drain responses for this long is closed.
    pub write_timeout: Duration,
    /// Sessions untouched for this long are evicted by the accept loop.
    pub session_ttl: Duration,
    /// Upper bound on concurrently open sessions across all tenants.
    pub max_sessions: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            session_ttl: Duration::from_secs(300),
            max_sessions: 64,
        }
    }
}

/// How often the accept loop polls for new connections, the shutdown
/// flag, and idle-session eviction.
const ACCEPT_POLL: Duration = Duration::from_millis(20);
/// How long a drain waits for chunks in flight on other connections.
const DRAIN_WAIT: Duration = Duration::from_millis(1);

struct SessionState {
    session: Session,
    fed: u64,
}

enum Slot {
    /// Parked in the table, ready for the next chunk.
    Idle(Box<SessionState>),
    /// Checked out by a connection thread running a chunk.
    Busy,
}

struct Table {
    next_id: u32,
    slots: HashMap<u32, (Slot, Instant)>,
}

impl Table {
    /// Number of live sessions (idle or checked out).
    fn len(&self) -> usize {
        self.slots.len()
    }
}

struct Shared {
    config: ServerConfig,
    shutdown: AtomicBool,
    table: Mutex<Table>,
}

impl Shared {
    fn checkout(&self, id: u32) -> Result<Box<SessionState>, &'static str> {
        let mut table = self.table.lock().unwrap();
        match table.slots.get_mut(&id) {
            None => Err("no such session"),
            Some((slot @ Slot::Idle(_), touched)) => {
                *touched = Instant::now();
                match std::mem::replace(slot, Slot::Busy) {
                    Slot::Idle(state) => Ok(state),
                    Slot::Busy => unreachable!(),
                }
            }
            Some((Slot::Busy, _)) => Err("session is busy on another connection"),
        }
    }

    fn checkin(&self, id: u32, state: Box<SessionState>) {
        let mut table = self.table.lock().unwrap();
        table.slots.insert(id, (Slot::Idle(state), Instant::now()));
    }

    fn remove(&self, id: u32) -> Result<Box<SessionState>, &'static str> {
        let mut table = self.table.lock().unwrap();
        match table.slots.get(&id) {
            None => Err("no such session"),
            Some((Slot::Busy, _)) => Err("session is busy on another connection"),
            Some((Slot::Idle(_), _)) => match table.slots.remove(&id) {
                Some((Slot::Idle(state), _)) => Ok(state),
                _ => unreachable!(),
            },
        }
    }

    /// Evicts idle sessions untouched for longer than `session_ttl`.
    fn sweep_idle(&self) -> usize {
        let ttl = self.config.session_ttl;
        let now = Instant::now();
        let mut table = self.table.lock().unwrap();
        let before = table.slots.len();
        table
            .slots
            .retain(|_, (slot, touched)| matches!(slot, Slot::Busy) || now - *touched < ttl);
        before - table.slots.len()
    }

    /// Takes every session out of the table for a drain, waiting for
    /// busy ones to be checked back in. Returns them in session-id
    /// order so drain summaries are deterministic.
    fn drain_all(&self) -> Vec<(u32, Box<SessionState>)> {
        let deadline = Instant::now() + self.config.write_timeout;
        let mut drained = Vec::new();
        loop {
            {
                let mut table = self.table.lock().unwrap();
                let idle_ids: Vec<u32> = table
                    .slots
                    .iter()
                    .filter(|(_, (slot, _))| matches!(slot, Slot::Idle(_)))
                    .map(|(id, _)| *id)
                    .collect();
                for id in idle_ids {
                    if let Some((Slot::Idle(state), _)) = table.slots.remove(&id) {
                        drained.push((id, state));
                    }
                }
                if table.slots.is_empty() {
                    break;
                }
            }
            // Busy sessions are mid-chunk on another connection; give
            // them time to check back in rather than aborting them.
            if Instant::now() > deadline {
                break;
            }
            thread::sleep(DRAIN_WAIT);
        }
        drained.sort_by_key(|(id, _)| *id);
        drained
    }
}

/// The daemon: a bound listener plus the shared session table.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds to `addr` (port 0 picks an ephemeral port — read it back
    /// with [`Server::local_addr`]).
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            local_addr,
            shared: Arc::new(Shared {
                config,
                shutdown: AtomicBool::new(false),
                table: Mutex::new(Table {
                    next_id: 1,
                    slots: HashMap::new(),
                }),
            }),
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that observes (and can set) the shutdown flag, for
    /// embedding the server in a process that stops it itself.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves connections until a client's `Shutdown` request (or
    /// [`ShutdownHandle::shutdown`]) drains the server. Every
    /// connection thread is joined before returning, so when `run`
    /// comes back no request is still in flight.
    pub fn run(self) -> std::io::Result<()> {
        let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
        let mut last_sweep = Instant::now();
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    workers.push(thread::spawn(move || serve_connection(stream, &shared)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(ACCEPT_POLL);
                }
                Err(e) => return Err(e),
            }
            workers.retain(|w| !w.is_finished());
            if last_sweep.elapsed() >= Duration::from_secs(1) {
                self.shared.sweep_idle();
                last_sweep = Instant::now();
            }
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// Observes and sets a [`Server`]'s shutdown flag from outside its
/// accept loop.
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Asks the accept loop to stop. Does not drain sessions — use a
    /// client `Shutdown` request for a summarized drain.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

fn summarize(id: u32, mut state: Box<SessionState>) -> SessionSummary {
    let recon = state.session.recon_stats();
    let pst_probes = state.session.pst_probes();
    let counters = state.session.finalize();
    SessionSummary {
        session: id,
        accesses_fed: state.fed,
        counters,
        recon,
        pst_probes,
    }
}

fn build_session(open: &OpenRequest) -> Session {
    let mut b = Session::builder(&open.system)
        .prefetch(&open.prefetch)
        .predictor(open.predictor);
    if let Some((rate, seed)) = open.invalidations {
        b = b.invalidations(rate, seed);
    }
    b.build()
}

/// One connection's request loop. Any framing error ends the
/// connection (after a best-effort `Error` response); request-level
/// failures (unknown session, full table) are answered and the
/// connection keeps going.
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    // Hello exchange: validate the client's, then identify ourselves.
    if wire::read_hello(&mut reader).is_err() {
        return;
    }
    if wire::write_hello(&mut writer).is_err() || writer.flush().is_err() {
        return;
    }

    let mut payload = Vec::new();
    let mut frame = Vec::new();
    let mut scratch = Vec::new();
    let send = |writer: &mut BufWriter<TcpStream>,
                frame: &mut Vec<u8>,
                scratch: &mut Vec<u8>,
                resp: &Response|
     -> Result<(), WireError> {
        resp.write_to(writer, frame, scratch)?;
        writer.flush()?;
        Ok(())
    };

    loop {
        let request = match Request::read_from(&mut reader, &mut payload) {
            Ok(Some(req)) => req,
            Ok(None) => return,              // peer closed cleanly
            Err(WireError::Io(_)) => return, // dead/stalled peer or timeout
            Err(e) => {
                // Hostile or corrupt bytes: report the typed error,
                // then drop the connection — framing is unrecoverable.
                let resp = Response::Error {
                    session: None,
                    message: e.to_string(),
                };
                let _ = send(&mut writer, &mut frame, &mut scratch, &resp);
                return;
            }
        };
        let reply = match request {
            Request::Open(open) => handle_open(shared, &open),
            Request::Chunk { session, records } => handle_chunk(shared, session, &records),
            Request::Close { session } => match shared.remove(session) {
                Ok(state) => Response::Summary(Box::new(summarize(session, state))),
                Err(msg) => Response::Error {
                    session: Some(session),
                    message: msg.into(),
                },
            },
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                let drained = shared.drain_all();
                let count = drained.len() as u32;
                for (id, state) in drained {
                    let resp = Response::Summary(Box::new(summarize(id, state)));
                    if send(&mut writer, &mut frame, &mut scratch, &resp).is_err() {
                        return;
                    }
                }
                let _ = send(
                    &mut writer,
                    &mut frame,
                    &mut scratch,
                    &Response::ShutdownAck { drained: count },
                );
                return;
            }
        };
        if send(&mut writer, &mut frame, &mut scratch, &reply).is_err() {
            return;
        }
    }
}

fn handle_open(shared: &Shared, open: &OpenRequest) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::Error {
            session: None,
            message: "server is shutting down".into(),
        };
    }
    {
        let table = shared.table.lock().unwrap();
        if table.len() >= shared.config.max_sessions {
            return Response::Error {
                session: None,
                message: format!("session table full ({} sessions)", table.len()),
            };
        }
    }
    // Build the tenant's Session outside the lock — table geometry can
    // make this allocate tens of megabytes.
    let state = Box::new(SessionState {
        session: build_session(open),
        fed: 0,
    });
    let mut table = shared.table.lock().unwrap();
    if table.len() >= shared.config.max_sessions {
        return Response::Error {
            session: None,
            message: format!("session table full ({} sessions)", table.len()),
        };
    }
    let id = table.next_id;
    table.next_id = table.next_id.wrapping_add(1).max(1);
    table.slots.insert(id, (Slot::Idle(state), Instant::now()));
    Response::Opened { session: id }
}

fn handle_chunk(shared: &Shared, session: u32, records: &[stems_trace::Access]) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::Error {
            session: Some(session),
            message: "server is shutting down".into(),
        };
    }
    let mut state = match shared.checkout(session) {
        Ok(state) => state,
        Err(msg) => {
            return Response::Error {
                session: Some(session),
                message: msg.into(),
            }
        }
    };
    // The chunk runs outside the table lock: other tenants' chunks
    // proceed concurrently, and the drain path waits for this slot to
    // check back in rather than observing a half-run session.
    state.session.run_chunk(records);
    state.fed += records.len() as u64;
    let stats = ChunkStats {
        session,
        accesses_fed: state.fed,
        counters: *state.session.counters(),
    };
    shared.checkin(session, state);
    Response::Stats(stats)
}
