//! The trace-streaming session daemon.
//!
//! A [`Server`] listens on one TCP port and multiplexes any number of
//! tenant [`Session`]s: each `Open` request carries its own
//! `SystemConfig`/`PrefetchConfig`/`Predictor` choice, each `Chunk`
//! feeds records straight into `Session::run_chunk`, and every chunk is
//! answered with a counter snapshot so the client can watch coverage
//! converge while the trace streams. Message framing is
//! `stems_types::wire`, typed payloads are `stems_core::protocol`, and
//! the byte-level contract is `docs/WIRE_PROTOCOL.md`.
//!
//! The robustness plumbing a long-lived daemon needs is here rather
//! than in the protocol:
//!
//! * **per-connection read/write timeouts** — a dead or stalled peer
//!   cannot pin a connection thread forever; its sessions stay in the
//!   table and can be re-addressed from a new connection;
//! * **a session table with idle eviction** — sessions untouched for
//!   [`ServerConfig::session_ttl`] are discarded by the accept loop, so
//!   abandoned tenants cannot hold memory indefinitely;
//! * **bounded in-flight work** — requests on a connection are served
//!   strictly in order, one chunk resident at a time, and a session
//!   checked out by one connection answers `busy` to others instead of
//!   queueing unbounded work;
//! * **graceful drain** — a `Shutdown` request finalizes every open
//!   session, streams each summary back, acknowledges, and only then
//!   stops the accept loop; in-flight chunks on other connections are
//!   waited for, not aborted;
//! * **observability** — every lifecycle edge and chunk feeds the
//!   [`ServerObs`] hub (metrics registries + event ring, see
//!   `docs/OBSERVABILITY.md`); a `Metrics` request scrapes it live
//!   over the same wire protocol;
//! * **crash containment** — a connection worker that panics mid-chunk
//!   cannot strand its session as `Busy` forever: a drop-guard removes
//!   the orphaned slot, records a `session_abort` event, and the
//!   worker's panic is caught so the daemon keeps serving.
//!
//! # Example
//!
//! ```no_run
//! use stems_server::{Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! println!("listening on {}", server.local_addr());
//! server.run().unwrap(); // blocks until a client sends Shutdown
//! ```

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use stems_core::protocol::{ChunkStats, OpenRequest, Request, Response, SessionSummary};
use stems_core::Session;
use stems_obs::LogLevel;
use stems_types::wire::{self, WireError};

pub mod chaos;
pub mod obs;

pub use obs::ServerObs;

/// Tunables for a [`Server`]. `Default` is sized for the loopback
/// harness and CI smoke runs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// A connection that sends nothing for this long is closed (its
    /// sessions survive in the table until `session_ttl`).
    pub read_timeout: Duration,
    /// A peer that refuses to drain responses for this long is closed.
    pub write_timeout: Duration,
    /// Sessions untouched for this long are evicted by the accept loop.
    pub session_ttl: Duration,
    /// Upper bound on concurrently open sessions across all tenants.
    pub max_sessions: usize,
    /// Mirror events at or below this level to stderr as timestamped
    /// log lines. `None` (the default) keeps the daemon silent; events
    /// still land in the ring either way.
    pub log: Option<LogLevel>,
    /// Chunks slower than this raise a `slow_chunk` event (0 disables).
    pub slow_chunk_nanos: u64,
    /// Capacity of the bounded event ring.
    pub event_capacity: usize,
    /// Upper bound on chunks resident in workers at once, across all
    /// connections. At the cap new chunks answer `Busy`; at half the
    /// cap new `Open`s already answer `Busy`, so load-shedding rejects
    /// new tenants before it starves checked-out ones.
    pub max_concurrent_chunks: usize,
    /// Upper bound on concurrently served connections. Connections
    /// past the cap get a hello + `Busy` + close instead of a thread —
    /// a typed rejection the retrying client understands, never a
    /// silent stall.
    pub max_connections: usize,
    /// The `retry_after_ms` hint carried by every `Busy` reply.
    pub busy_retry_ms: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            session_ttl: Duration::from_secs(300),
            max_sessions: 64,
            log: None,
            slow_chunk_nanos: 250_000_000,
            event_capacity: 1024,
            max_concurrent_chunks: 32,
            max_connections: 256,
            busy_retry_ms: 50,
        }
    }
}

/// How often the accept loop polls for new connections, the shutdown
/// flag, and idle-session eviction.
const ACCEPT_POLL: Duration = Duration::from_millis(20);
/// How long a drain waits for chunks in flight on other connections.
const DRAIN_WAIT: Duration = Duration::from_millis(1);

/// Closed-session summaries kept so a retried `Close` (the client
/// never saw the reply) is answered from the journal instead of
/// "no such session".
const RECENT_SUMMARIES: usize = 64;

struct SessionState {
    session: Session,
    fed: u64,
    /// Sequence number of the last applied chunk (0 = none yet). A
    /// `SeqChunk` at or below this is a retransmit and is skipped
    /// idempotently; legacy unsequenced `Chunk`s advance it too, so the
    /// two framings cannot silently interleave.
    last_seq: u64,
}

enum Slot {
    /// Parked in the table, ready for the next chunk.
    Idle(Box<SessionState>),
    /// Checked out by a connection thread running a chunk.
    Busy,
}

struct Table {
    next_id: u32,
    slots: HashMap<u32, (Slot, Instant)>,
    /// Bounded journal of the last [`RECENT_SUMMARIES`] closed
    /// sessions, making `Close` idempotent across reconnects.
    recent: VecDeque<(u32, SessionSummary)>,
}

impl Table {
    /// Number of live sessions (idle or checked out).
    fn len(&self) -> usize {
        self.slots.len()
    }
}

struct Shared {
    config: ServerConfig,
    shutdown: AtomicBool,
    table: Mutex<Table>,
    obs: ServerObs,
    /// Chunks currently resident in connection workers (the admission
    /// counter behind [`ServerConfig::max_concurrent_chunks`]).
    in_flight_chunks: AtomicUsize,
    /// Connections currently being served (the backlog counter behind
    /// [`ServerConfig::max_connections`]).
    connections: AtomicUsize,
}

/// The checkout-conflict error message; requests seeing it answer
/// `Busy` (retryable) instead of a hard `Error`.
const BUSY_SESSION: &str = "session is busy on another connection";

impl Shared {
    fn checkout(&self, id: u32) -> Result<Box<SessionState>, &'static str> {
        let mut table = self.table.lock().unwrap();
        match table.slots.get_mut(&id) {
            None => Err("no such session"),
            Some((slot @ Slot::Idle(_), touched)) => {
                *touched = Instant::now();
                match std::mem::replace(slot, Slot::Busy) {
                    Slot::Idle(state) => Ok(state),
                    Slot::Busy => unreachable!(),
                }
            }
            Some((Slot::Busy, _)) => Err(BUSY_SESSION),
        }
    }

    fn checkin(&self, id: u32, state: Box<SessionState>) {
        let mut table = self.table.lock().unwrap();
        table.slots.insert(id, (Slot::Idle(state), Instant::now()));
    }

    fn remove(&self, id: u32) -> Result<Box<SessionState>, &'static str> {
        let mut table = self.table.lock().unwrap();
        match table.slots.get(&id) {
            None => Err("no such session"),
            Some((Slot::Busy, _)) => Err(BUSY_SESSION),
            Some((Slot::Idle(_), _)) => match table.slots.remove(&id) {
                Some((Slot::Idle(state), _)) => Ok(state),
                _ => unreachable!(),
            },
        }
    }

    /// Journals a closed session's summary so a retried `Close` can be
    /// answered idempotently.
    fn record_summary(&self, id: u32, summary: &SessionSummary) {
        let mut table = self.table.lock().unwrap();
        if table.recent.len() == RECENT_SUMMARIES {
            table.recent.pop_front();
        }
        table.recent.push_back((id, *summary));
    }

    /// The journaled summary for a recently closed session, if any.
    fn cached_summary(&self, id: u32) -> Option<SessionSummary> {
        let table = self.table.lock().unwrap();
        table
            .recent
            .iter()
            .rev()
            .find(|(sid, _)| *sid == id)
            .map(|(_, s)| *s)
    }

    /// Admits one chunk against `max_concurrent_chunks`, returning a
    /// guard that releases the slot on every exit path. `None` means
    /// the server is saturated and the caller must answer `Busy`.
    fn admit_chunk(&self) -> Option<ChunkPermit<'_>> {
        let cap = self.config.max_concurrent_chunks;
        let prev = self.in_flight_chunks.fetch_add(1, Ordering::SeqCst);
        if prev >= cap {
            self.in_flight_chunks.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        Some(ChunkPermit { shared: self })
    }

    /// Whether new `Open`s should shed: at half the chunk cap the
    /// server protects tenants already checked out instead of admitting
    /// more.
    fn opens_saturated(&self) -> bool {
        let threshold = (self.config.max_concurrent_chunks / 2).max(1);
        self.in_flight_chunks.load(Ordering::SeqCst) >= threshold
    }

    fn busy(&self, session: Option<u32>) -> Response {
        Response::Busy {
            session,
            retry_after_ms: self.config.busy_retry_ms,
        }
    }

    /// Evicts idle sessions untouched for longer than `session_ttl`.
    fn sweep_idle(&self) -> usize {
        let ttl = self.config.session_ttl;
        let now = Instant::now();
        let mut evicted = Vec::new();
        {
            let mut table = self.table.lock().unwrap();
            table.slots.retain(|id, (slot, touched)| {
                let keep = matches!(slot, Slot::Busy) || now - *touched < ttl;
                if !keep {
                    evicted.push(*id);
                }
                keep
            });
        }
        // Events are recorded outside the table lock.
        for &id in &evicted {
            self.obs.session_evicted(id);
        }
        evicted.len()
    }

    /// Takes every session out of the table for a drain, waiting for
    /// busy ones to be checked back in. Returns them in session-id
    /// order so drain summaries are deterministic.
    fn drain_all(&self) -> Vec<(u32, Box<SessionState>)> {
        let deadline = Instant::now() + self.config.write_timeout;
        let mut drained = Vec::new();
        loop {
            {
                let mut table = self.table.lock().unwrap();
                let idle_ids: Vec<u32> = table
                    .slots
                    .iter()
                    .filter(|(_, (slot, _))| matches!(slot, Slot::Idle(_)))
                    .map(|(id, _)| *id)
                    .collect();
                for id in idle_ids {
                    if let Some((Slot::Idle(state), _)) = table.slots.remove(&id) {
                        drained.push((id, state));
                    }
                }
                if table.slots.is_empty() {
                    break;
                }
            }
            // Busy sessions are mid-chunk on another connection; give
            // them time to check back in rather than aborting them.
            if Instant::now() > deadline {
                break;
            }
            thread::sleep(DRAIN_WAIT);
        }
        drained.sort_by_key(|(id, _)| *id);
        drained
    }
}

/// One admitted chunk's slot in the global in-flight budget; dropping
/// it (normally or during a panic unwind) releases the slot.
struct ChunkPermit<'a> {
    shared: &'a Shared,
}

impl Drop for ChunkPermit<'_> {
    fn drop(&mut self) {
        self.shared.in_flight_chunks.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One served connection's slot in the backlog budget; dropping it
/// (normally or during a panic unwind) releases the slot.
struct ConnPermit {
    shared: Arc<Shared>,
}

impl Drop for ConnPermit {
    fn drop(&mut self) {
        self.shared.connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Owns a checked-out session slot for the duration of one chunk.
///
/// The happy path calls [`CheckoutGuard::finish`], which checks the
/// session back in. If the guard is instead dropped with the state
/// still held — the chunk panicked, and the stack is unwinding — the
/// slot would otherwise stay `Busy` in the table forever (unservable,
/// unevictable, and a permanent drain blocker). `Drop` repairs that:
/// it removes the orphaned entry, discards the half-run session (its
/// simulation state is unreliable mid-chunk), and records the abort.
struct CheckoutGuard<'a> {
    shared: &'a Shared,
    id: u32,
    state: Option<Box<SessionState>>,
}

impl<'a> CheckoutGuard<'a> {
    fn new(shared: &'a Shared, id: u32, state: Box<SessionState>) -> CheckoutGuard<'a> {
        CheckoutGuard {
            shared,
            id,
            state: Some(state),
        }
    }

    fn state(&mut self) -> &mut SessionState {
        self.state.as_mut().expect("state taken before finish")
    }

    /// Normal completion: parks the session back in the table.
    fn finish(mut self) {
        let state = self.state.take().expect("finish called twice");
        self.shared.checkin(self.id, state);
    }
}

impl Drop for CheckoutGuard<'_> {
    fn drop(&mut self) {
        if self.state.take().is_some() {
            let mut table = self.shared.table.lock().unwrap();
            table.slots.remove(&self.id);
            drop(table);
            self.shared
                .obs
                .session_aborted(self.id, "connection worker died mid-chunk");
        }
    }
}

/// The daemon: a bound listener plus the shared session table.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds to `addr` (port 0 picks an ephemeral port — read it back
    /// with [`Server::local_addr`]).
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            local_addr,
            shared: Arc::new(Shared {
                shutdown: AtomicBool::new(false),
                table: Mutex::new(Table {
                    next_id: 1,
                    slots: HashMap::new(),
                    recent: VecDeque::new(),
                }),
                obs: ServerObs::new(config.log, config.slow_chunk_nanos, config.event_capacity),
                in_flight_chunks: AtomicUsize::new(0),
                connections: AtomicUsize::new(0),
                config,
            }),
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that observes (and can set) the shutdown flag, for
    /// embedding the server in a process that stops it itself.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves connections until a client's `Shutdown` request (or
    /// [`ShutdownHandle::shutdown`]) drains the server. Every
    /// connection thread is joined before returning, so when `run`
    /// comes back no request is still in flight.
    pub fn run(self) -> std::io::Result<()> {
        let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
        let mut last_sweep = Instant::now();
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.shared.obs.connection_accepted();
                    let shared = Arc::clone(&self.shared);
                    // Claim a backlog slot before spawning; over the cap
                    // the worker's only job is a hello + Busy + close.
                    let shed = shared.connections.fetch_add(1, Ordering::SeqCst)
                        >= shared.config.max_connections;
                    let permit = ConnPermit {
                        shared: Arc::clone(&shared),
                    };
                    workers.push(thread::spawn(move || {
                        let _permit = permit;
                        // Contain panics to the one connection: the
                        // chunk guard has already repaired the session
                        // table by the time the unwind reaches here.
                        let body = || {
                            if shed {
                                shed_connection(stream, &shared);
                            } else {
                                serve_connection(stream, &shared);
                            }
                        };
                        if catch_unwind(AssertUnwindSafe(body)).is_err() {
                            shared.obs.worker_panicked();
                        }
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(ACCEPT_POLL);
                }
                Err(e) => return Err(e),
            }
            workers.retain(|w| !w.is_finished());
            if last_sweep.elapsed() >= Duration::from_secs(1) {
                self.shared.sweep_idle();
                last_sweep = Instant::now();
            }
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// Observes and sets a [`Server`]'s shutdown flag from outside its
/// accept loop.
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Asks the accept loop to stop. Does not drain sessions — use a
    /// client `Shutdown` request for a summarized drain.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

fn summarize(id: u32, mut state: Box<SessionState>) -> SessionSummary {
    let recon = state.session.recon_stats();
    let pst_probes = state.session.pst_probes();
    let counters = state.session.finalize();
    SessionSummary {
        session: id,
        accesses_fed: state.fed,
        counters,
        recon,
        pst_probes,
    }
}

fn build_session(open: &OpenRequest) -> Session {
    let mut b = Session::builder(&open.system)
        .prefetch(&open.prefetch)
        .predictor(open.predictor);
    if let Some((rate, seed)) = open.invalidations {
        b = b.invalidations(rate, seed);
    }
    b.build()
}

/// Turns a connection away at the door when the backlog is full: the
/// hello exchange still happens (so the client's framing layer is in a
/// known state), then one `Busy` and a close. The retrying client
/// backs off and reconnects; a silent drop would look like a network
/// fault instead of load.
fn shed_connection(stream: TcpStream, shared: &Shared) {
    shared.obs.connection_shed();
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    if wire::read_hello(&mut reader).is_err() {
        return;
    }
    if wire::write_hello(&mut writer).is_err() {
        return;
    }
    let mut frame = Vec::new();
    let mut scratch = Vec::new();
    let _ = shared
        .busy(None)
        .write_to(&mut writer, &mut frame, &mut scratch);
    let _ = writer.flush();
}

/// One connection's request loop. Any framing error ends the
/// connection (after a best-effort `Error` response); request-level
/// failures (unknown session, full table) are answered and the
/// connection keeps going.
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    // Hello exchange: validate the client's, then identify ourselves.
    if wire::read_hello(&mut reader).is_err() {
        shared.obs.hello_failed();
        return;
    }
    if wire::write_hello(&mut writer).is_err() || writer.flush().is_err() {
        shared.obs.hello_failed();
        return;
    }

    let mut payload = Vec::new();
    let mut frame = Vec::new();
    let mut scratch = Vec::new();
    let send = |writer: &mut BufWriter<TcpStream>,
                frame: &mut Vec<u8>,
                scratch: &mut Vec<u8>,
                resp: &Response|
     -> Result<(), WireError> {
        resp.write_to(writer, frame, scratch)?;
        writer.flush()?;
        Ok(())
    };

    loop {
        let request = match Request::read_from(&mut reader, &mut payload) {
            Ok(Some(req)) => req,
            Ok(None) => return,              // peer closed cleanly
            Err(WireError::Io(_)) => return, // dead/stalled peer or timeout
            Err(e) => {
                // Hostile or corrupt bytes: report the typed error,
                // then drop the connection — framing is unrecoverable.
                // A failed decode never strands a session: the chunk is
                // fully decoded before any checkout happens.
                shared.obs.wire_error(&e);
                let resp = Response::Error {
                    session: None,
                    message: format!("{}{e}", stems_core::protocol::FRAMING_ERROR_PREFIX),
                };
                let _ = send(&mut writer, &mut frame, &mut scratch, &resp);
                return;
            }
        };
        let reply = match request {
            Request::Open(open) => handle_open(shared, &open),
            Request::Chunk { session, records } => handle_chunk(shared, session, None, &records),
            Request::SeqChunk {
                session,
                seq,
                records,
            } => handle_chunk(shared, session, Some(seq), &records),
            Request::Resume { session, last_seq } => handle_resume(shared, session, last_seq),
            Request::Close { session } => handle_close(shared, session),
            Request::Metrics { drain_events } => {
                Response::MetricsReply(Box::new(shared.obs.render(drain_events)))
            }
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.obs.drain_started(shared.table.lock().unwrap().len());
                let drained = shared.drain_all();
                let count = drained.len() as u32;
                let still_busy = shared.table.lock().unwrap().len();
                let ids: Vec<u32> = drained.iter().map(|(id, _)| *id).collect();
                shared.obs.drain_finished(&ids, still_busy);
                for (id, state) in drained {
                    let resp = Response::Summary(Box::new(summarize(id, state)));
                    if send(&mut writer, &mut frame, &mut scratch, &resp).is_err() {
                        return;
                    }
                }
                let _ = send(
                    &mut writer,
                    &mut frame,
                    &mut scratch,
                    &Response::ShutdownAck { drained: count },
                );
                return;
            }
        };
        if send(&mut writer, &mut frame, &mut scratch, &reply).is_err() {
            return;
        }
    }
}

fn handle_open(shared: &Shared, open: &OpenRequest) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        shared.obs.open_rejected();
        return Response::Error {
            session: None,
            message: "server is shutting down".into(),
        };
    }
    // Load shedding prefers rejecting new tenants over starving
    // checked-out ones: opens go Busy at half the chunk cap, chunks
    // only at the full cap.
    if shared.opens_saturated() {
        shared.obs.open_shed();
        return shared.busy(None);
    }
    {
        let table = shared.table.lock().unwrap();
        if table.len() >= shared.config.max_sessions {
            drop(table);
            shared.obs.open_shed();
            return shared.busy(None);
        }
    }
    // Build the tenant's Session outside the lock — table geometry can
    // make this allocate tens of megabytes.
    let mut state = Box::new(SessionState {
        session: build_session(open),
        fed: 0,
        last_seq: 0,
    });
    let mut table = shared.table.lock().unwrap();
    if table.len() >= shared.config.max_sessions {
        drop(table);
        shared.obs.open_shed();
        return shared.busy(None);
    }
    let id = table.next_id;
    table.next_id = table.next_id.wrapping_add(1).max(1);
    // The hook needs the assigned id (its metrics are labeled by it),
    // so it is attached here rather than in the builder.
    state
        .session
        .set_obs(shared.obs.session_opened(id, open.predictor));
    table.slots.insert(id, (Slot::Idle(state), Instant::now()));
    Response::Opened { session: id }
}

/// Runs one chunk — sequenced (`seq: Some`) or legacy — through the
/// admission gate, the session checkout, and the dedupe/gap journal.
fn handle_chunk(
    shared: &Shared,
    session: u32,
    seq: Option<u64>,
    records: &[stems_trace::Access],
) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::Error {
            session: Some(session),
            message: "server is shutting down".into(),
        };
    }
    let Some(_permit) = shared.admit_chunk() else {
        shared.obs.chunk_shed();
        return shared.busy(Some(session));
    };
    let state = match shared.checkout(session) {
        Ok(state) => state,
        Err(msg) if msg == BUSY_SESSION => {
            // Checked out by another connection: the per-tenant
            // in-flight quota (one chunk per session) answers Busy, not
            // a hard error — the client retries after backoff.
            shared.obs.chunk_shed();
            return shared.busy(Some(session));
        }
        Err(msg) => {
            return Response::Error {
                session: Some(session),
                message: msg.into(),
            }
        }
    };
    // The chunk runs outside the table lock: other tenants' chunks
    // proceed concurrently, and the drain path waits for this slot to
    // check back in rather than observing a half-run session. The
    // guard guarantees the `Busy` slot is repaired even if run_chunk
    // panics (the worker's unwind would otherwise orphan it forever).
    let mut guard = CheckoutGuard::new(shared, session, state);
    let state = guard.state();
    match seq {
        // A retransmit the journal already applied: skip it
        // idempotently and re-answer with the current snapshot, so a
        // client that lost the original Stats still converges.
        Some(seq) if seq <= state.last_seq => {
            shared.obs.chunk_deduped();
            let stats = ChunkStats {
                session,
                accesses_fed: state.fed,
                counters: *state.session.counters(),
            };
            guard.finish();
            return Response::Stats(stats);
        }
        // A gap means the client skipped data we never saw; applying
        // it would silently drift the counters. Fatal, not retryable.
        Some(seq) if seq != state.last_seq + 1 => {
            let last_seq = state.last_seq;
            guard.finish();
            return Response::Error {
                session: Some(session),
                message: format!("sequence gap: got {seq}, journal is at {last_seq}"),
            };
        }
        _ => {}
    }
    state.session.run_chunk(records);
    state.fed += records.len() as u64;
    // Legacy unsequenced chunks advance the journal too, so the two
    // framings can never interleave into a stale dedupe decision.
    state.last_seq = match seq {
        Some(seq) => seq,
        None => state.last_seq + 1,
    };
    let stats = ChunkStats {
        session,
        accesses_fed: state.fed,
        counters: *state.session.counters(),
    };
    guard.finish();
    Response::Stats(stats)
}

/// Re-attaches a reconnecting client: replies with the journal
/// position so the client can drop already-applied chunks from its
/// resend window and continue byte-identically.
fn handle_resume(shared: &Shared, session: u32, client_last_seq: u64) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::Error {
            session: Some(session),
            message: "server is shutting down".into(),
        };
    }
    let state = match shared.checkout(session) {
        Ok(state) => state,
        Err(msg) if msg == BUSY_SESSION => {
            shared.obs.chunk_shed();
            return shared.busy(Some(session));
        }
        Err(msg) => {
            return Response::Error {
                session: Some(session),
                message: msg.into(),
            }
        }
    };
    let guard = CheckoutGuard::new(shared, session, state);
    let state = guard.state.as_ref().expect("state held");
    // The client can only be behind the server (it acks what the
    // server already confirmed); claiming to be ahead means it is
    // resuming someone else's session id or its state is corrupt.
    if client_last_seq > state.last_seq {
        let last_seq = state.last_seq;
        guard.finish();
        return Response::Error {
            session: Some(session),
            message: format!(
                "resume ahead of journal: client at {client_last_seq}, server at {last_seq}"
            ),
        };
    }
    let resumed = Response::Resumed {
        session,
        last_seq: state.last_seq,
        accesses_fed: state.fed,
        counters: *state.session.counters(),
    };
    shared.obs.session_resumed(session, state.last_seq);
    guard.finish();
    resumed
}

/// Closes a session, answering a retried `Close` from the bounded
/// summary journal so a client that lost the reply still gets its
/// (byte-identical) summary instead of "no such session".
fn handle_close(shared: &Shared, session: u32) -> Response {
    match shared.remove(session) {
        Ok(state) => {
            shared.obs.session_closed(session, state.fed);
            let summary = summarize(session, state);
            shared.record_summary(session, &summary);
            Response::Summary(Box::new(summary))
        }
        Err(msg) if msg == BUSY_SESSION => {
            shared.obs.busy_replied();
            shared.busy(Some(session))
        }
        Err(msg) => match shared.cached_summary(session) {
            Some(summary) => Response::Summary(Box::new(summary)),
            None => Response::Error {
                session: Some(session),
                message: msg.into(),
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_core::session::Predictor;
    use stems_core::PrefetchConfig;
    use stems_memsim::SystemConfig;

    fn test_shared() -> Shared {
        let config = ServerConfig {
            event_capacity: 16,
            ..ServerConfig::default()
        };
        Shared {
            shutdown: AtomicBool::new(false),
            table: Mutex::new(Table {
                next_id: 1,
                slots: HashMap::new(),
                recent: VecDeque::new(),
            }),
            obs: ServerObs::new(config.log, config.slow_chunk_nanos, config.event_capacity),
            in_flight_chunks: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
            config,
        }
    }

    fn open_session(shared: &Shared) -> u32 {
        let open = OpenRequest {
            system: SystemConfig::small(),
            prefetch: PrefetchConfig::small(),
            predictor: Predictor::Stems,
            invalidations: None,
        };
        match handle_open(shared, &open) {
            Response::Opened { session } => session,
            other => panic!("open failed: {other:?}"),
        }
    }

    #[test]
    fn panicking_chunk_repairs_the_busy_slot() {
        // Without the guard, a panic mid-run_chunk leaves the slot
        // `Busy` forever: unservable, unevictable, and drain_all spins
        // on it until its deadline. The guard must remove the entry and
        // record the abort instead.
        let shared = test_shared();
        let id = open_session(&shared);

        let state = shared.checkout(id).expect("checkout");
        let panic_result = {
            // Silence the expected panic's default backtrace spew.
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let result = catch_unwind(AssertUnwindSafe(|| {
                let mut guard = CheckoutGuard::new(&shared, id, state);
                let _ = guard.state();
                panic!("simulated chunk crash");
            }));
            std::panic::set_hook(prev);
            result
        };
        assert!(panic_result.is_err(), "the chunk must actually panic");

        // The slot is gone, not stuck Busy: new requests get a clean
        // "no such session", the table can accept fresh opens, and the
        // drain path has nothing to wait on.
        assert_eq!(shared.table.lock().unwrap().len(), 0);
        assert_eq!(shared.checkout(id).err(), Some("no such session"));
        let scrape = shared.obs.render(true);
        assert!(scrape.exposition.contains("stems_sessions_aborted_total 1"));
        assert!(scrape.exposition.contains("stems_sessions_open 0"));
        assert!(scrape.events.contains("\"event\":\"session_abort\""));

        // The table is still fully serviceable afterwards.
        let id2 = open_session(&shared);
        assert_ne!(id2, id);
        let state2 = shared.checkout(id2).expect("checkout after repair");
        let guard = CheckoutGuard::new(&shared, id2, state2);
        guard.finish();
        assert_eq!(shared.checkout(id2).map(|_| ()), Ok(()));
    }

    fn acc(i: u64) -> stems_trace::Access {
        use stems_types::{Addr, Pc};
        stems_trace::Access::read(Pc::new(0x400 + i * 4), Addr::new(i * 64))
    }

    #[test]
    fn seq_chunks_apply_dedupe_and_reject_gaps() {
        let shared = test_shared();
        let id = open_session(&shared);
        let records: Vec<_> = (0..8).map(acc).collect();

        // seq 1 applies.
        let first = match handle_chunk(&shared, id, Some(1), &records) {
            Response::Stats(s) => s,
            other => panic!("seq 1 rejected: {other:?}"),
        };
        assert_eq!(first.accesses_fed, 8);

        // A retransmit of seq 1 is skipped idempotently and re-answers
        // the same snapshot — counters must not drift.
        let replayed = match handle_chunk(&shared, id, Some(1), &records) {
            Response::Stats(s) => s,
            other => panic!("dedupe failed: {other:?}"),
        };
        assert_eq!(replayed, first);

        // seq 2 continues the stream.
        let second = match handle_chunk(&shared, id, Some(2), &records) {
            Response::Stats(s) => s,
            other => panic!("seq 2 rejected: {other:?}"),
        };
        assert_eq!(second.accesses_fed, 16);

        // seq 4 is a gap: typed error, nothing applied.
        match handle_chunk(&shared, id, Some(4), &records) {
            Response::Error { session, message } => {
                assert_eq!(session, Some(id));
                assert!(message.contains("sequence gap"), "{message}");
            }
            other => panic!("gap accepted: {other:?}"),
        }
        let after_gap = match handle_chunk(&shared, id, Some(3), &records) {
            Response::Stats(s) => s,
            other => panic!("seq 3 rejected after gap: {other:?}"),
        };
        assert_eq!(after_gap.accesses_fed, 24);

        let scrape = shared.obs.render(false);
        assert!(scrape.exposition.contains("stems_chunks_deduped_total 1"));
    }

    #[test]
    fn dedupe_equals_fault_free_run() {
        // The resumable-session invariant in miniature: a stream with
        // duplicated sequenced chunks produces counters byte-identical
        // to the clean stream.
        let clean = test_shared();
        let noisy = test_shared();
        let a = open_session(&clean);
        let b = open_session(&noisy);
        let chunks: Vec<Vec<_>> = (0..4u64)
            .map(|c| (0..16).map(|i| acc(c * 16 + i)).collect())
            .collect();
        for (i, chunk) in chunks.iter().enumerate() {
            let seq = i as u64 + 1;
            handle_chunk(&clean, a, Some(seq), chunk);
            handle_chunk(&noisy, b, Some(seq), chunk);
            // Every chunk delivered twice on the noisy path.
            handle_chunk(&noisy, b, Some(seq), chunk);
        }
        let s1 = match handle_close(&clean, a) {
            Response::Summary(s) => s,
            other => panic!("{other:?}"),
        };
        let s2 = match handle_close(&noisy, b) {
            Response::Summary(s) => s,
            other => panic!("{other:?}"),
        };
        assert_eq!(s1.counters, s2.counters);
        assert_eq!(s1.accesses_fed, s2.accesses_fed);
    }

    #[test]
    fn legacy_chunks_advance_the_journal() {
        let shared = test_shared();
        let id = open_session(&shared);
        let records: Vec<_> = (0..4).map(acc).collect();
        handle_chunk(&shared, id, None, &records);
        handle_chunk(&shared, id, None, &records);
        // The journal advanced under the legacy chunks, so seq 1 and 2
        // are behind it (deduped), seq 3 applies.
        let before = match handle_chunk(&shared, id, Some(1), &records) {
            Response::Stats(s) => s,
            other => panic!("{other:?}"),
        };
        assert_eq!(before.accesses_fed, 8, "seq 1 was a no-op");
        let applied = match handle_chunk(&shared, id, Some(3), &records) {
            Response::Stats(s) => s,
            other => panic!("{other:?}"),
        };
        assert_eq!(applied.accesses_fed, 12);
    }

    #[test]
    fn resume_reports_the_journal_and_rejects_ahead_clients() {
        let shared = test_shared();
        let id = open_session(&shared);
        let records: Vec<_> = (0..8).map(acc).collect();
        handle_chunk(&shared, id, Some(1), &records);
        handle_chunk(&shared, id, Some(2), &records);

        // A client that saw only seq 1 acked resumes behind the
        // journal and learns the authoritative position.
        match handle_resume(&shared, id, 1) {
            Response::Resumed {
                session,
                last_seq,
                accesses_fed,
                ..
            } => {
                assert_eq!(session, id);
                assert_eq!(last_seq, 2);
                assert_eq!(accesses_fed, 16);
            }
            other => panic!("resume failed: {other:?}"),
        }

        // Claiming to be ahead of the server is fatal.
        match handle_resume(&shared, id, 9) {
            Response::Error { message, .. } => {
                assert!(message.contains("ahead of journal"), "{message}")
            }
            other => panic!("ahead resume accepted: {other:?}"),
        }

        // Unknown session is a hard error, not Busy.
        assert!(matches!(
            handle_resume(&shared, 999, 0),
            Response::Error { .. }
        ));

        let scrape = shared.obs.render(true);
        assert!(scrape.exposition.contains("stems_sessions_resumed_total 1"));
        assert!(scrape.events.contains("\"event\":\"session_resume\""));
    }

    #[test]
    fn retried_close_is_answered_from_the_summary_journal() {
        let shared = test_shared();
        let id = open_session(&shared);
        let records: Vec<_> = (0..8).map(acc).collect();
        handle_chunk(&shared, id, Some(1), &records);
        let first = match handle_close(&shared, id) {
            Response::Summary(s) => s,
            other => panic!("{other:?}"),
        };
        // The retry (client never saw the reply) gets the identical
        // summary back, not "no such session".
        let retry = match handle_close(&shared, id) {
            Response::Summary(s) => s,
            other => panic!("retried close failed: {other:?}"),
        };
        assert_eq!(first, retry);
        // A session that never existed still errors.
        assert!(matches!(handle_close(&shared, 999), Response::Error { .. }));
    }

    #[test]
    fn busy_checkout_answers_busy_not_error() {
        let shared = test_shared();
        let id = open_session(&shared);
        let held = shared.checkout(id).expect("checkout");
        let records: Vec<_> = (0..4).map(acc).collect();
        match handle_chunk(&shared, id, Some(1), &records) {
            Response::Busy {
                session,
                retry_after_ms,
            } => {
                assert_eq!(session, Some(id));
                assert_eq!(retry_after_ms, shared.config.busy_retry_ms);
            }
            other => panic!("expected Busy: {other:?}"),
        }
        assert!(matches!(
            handle_resume(&shared, id, 0),
            Response::Busy { .. }
        ));
        assert!(matches!(handle_close(&shared, id), Response::Busy { .. }));
        shared.checkin(id, held);
        let scrape = shared.obs.render(false);
        assert!(scrape.exposition.contains("stems_chunks_shed_total 2"));
        assert!(scrape.exposition.contains("stems_busy_total 3"));
    }

    #[test]
    fn chunk_admission_cap_sheds_with_busy() {
        let mut config = ServerConfig {
            event_capacity: 16,
            max_concurrent_chunks: 2,
            ..ServerConfig::default()
        };
        config.log = None;
        let shared = Shared {
            shutdown: AtomicBool::new(false),
            table: Mutex::new(Table {
                next_id: 1,
                slots: HashMap::new(),
                recent: VecDeque::new(),
            }),
            obs: ServerObs::new(config.log, config.slow_chunk_nanos, config.event_capacity),
            in_flight_chunks: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
            config,
        };
        let id = open_session(&shared);
        // Two permits saturate the cap; the third chunk sheds.
        let _p1 = shared.admit_chunk().expect("permit 1");
        let _p2 = shared.admit_chunk().expect("permit 2");
        let records: Vec<_> = (0..4).map(acc).collect();
        assert!(matches!(
            handle_chunk(&shared, id, Some(1), &records),
            Response::Busy { .. }
        ));
        // At half the cap (1 in flight after dropping p2), opens shed
        // while chunks still run — new tenants lose first.
        drop(_p2);
        assert!(shared.opens_saturated());
        let open = OpenRequest {
            system: SystemConfig::small(),
            prefetch: PrefetchConfig::small(),
            predictor: Predictor::Stems,
            invalidations: None,
        };
        assert!(matches!(handle_open(&shared, &open), Response::Busy { .. }));
        assert!(matches!(
            handle_chunk(&shared, id, Some(1), &records),
            Response::Stats(_)
        ));
        drop(_p1);
        let scrape = shared.obs.render(false);
        assert!(scrape.exposition.contains("stems_chunks_shed_total 1"));
        assert!(scrape.exposition.contains("stems_opens_shed_total 1"));
    }

    #[test]
    fn finished_guard_checks_back_in_without_abort() {
        let shared = test_shared();
        let id = open_session(&shared);
        let state = shared.checkout(id).expect("checkout");
        let mut guard = CheckoutGuard::new(&shared, id, state);
        guard.state().fed += 10;
        guard.finish();
        let back = shared.checkout(id).expect("still present");
        assert_eq!(back.fed, 10);
        shared.checkin(id, back);
        let scrape = shared.obs.render(false);
        assert!(scrape.exposition.contains("stems_sessions_aborted_total 0"));
        assert!(scrape.exposition.contains("stems_sessions_open 1"));
    }
}
