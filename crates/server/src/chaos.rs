//! Fault-injection TCP proxy for chaos testing the serving path.
//!
//! [`ChaosProxy`] sits between a client and a `stems-serve` upstream
//! and deterministically injures the byte stream: it truncates
//! connections mid-frame, swallows bytes and closes, flips single
//! bits, delays segments, and splits writes. Every decision comes from
//! a seeded RNG keyed by `(seed, connection index)`, and fatal faults
//! fire at pre-chosen **byte offsets** in a direction's stream — so a
//! run is reproducible regardless of how TCP happens to segment the
//! bytes.
//!
//! The proxy is intentionally crude about what it knows: it never
//! parses frames. The wire format's CRC and length bounds are the
//! things under test — every injected fault must surface downstream as
//! a typed, transient error (`Truncated`, `ChecksumMismatch`,
//! `Oversized`, an EOF, or the server's `bad frame:` courtesy error),
//! never as a panic, a hang, or silent counter drift. The one
//! exception the proxy respects: the 12-byte connection hello carries
//! no checksum, so bit flips are scheduled at offsets past it —
//! corrupting the hello is indistinguishable from a protocol mismatch,
//! which is *supposed* to be fatal.
//!
//! At most **one fatal fault fires per proxied connection**, and the
//! connection is closed immediately after. That gives exact
//! accounting: each fired fatal fault forces exactly one client
//! teardown, so a resilient client's `reconnects` counter must equal
//! [`ChaosLog::fatal_faults`] at the end of a run (the chaos loopback
//! test pins this).

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use stems_types::wire::HELLO_BYTES;

/// Fatal faults are scheduled at a byte offset in
/// `[HELLO_BYTES, HELLO_BYTES + FAULT_WINDOW)`; an offset the stream
/// never reaches simply does not fire (and is not logged).
const FAULT_WINDOW: u64 = 16 * 1024;

/// How the proxy misbehaves. Rates are probabilities in `[0, 1]`.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seed for every schedule; same seed, same faults.
    pub seed: u64,
    /// Probability that a connection is assigned one fatal fault
    /// (truncate / drop / bit flip at a scheduled byte offset).
    pub fault_rate: f64,
    /// Probability per forwarded segment of pausing for [`ChaosConfig::delay`].
    pub delay_rate: f64,
    /// The pause injected by a delay fault.
    pub delay: Duration,
    /// Probability per forwarded segment of splitting the write in two
    /// (with a flush between halves) to exercise short reads.
    pub split_rate: f64,
    /// Print one `chaos: fatal ...` line to stdout per fired fatal
    /// fault (what the CI smoke job counts).
    pub verbose: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0x5EED_C405,
            fault_rate: 0.0,
            delay_rate: 0.0,
            delay: Duration::from_millis(1),
            split_rate: 0.0,
            verbose: false,
        }
    }
}

/// What the proxy actually injected, as atomic counters. Fired fatal
/// faults ([`ChaosLog::fatal_faults`]) are the ground truth a chaos
/// run reconciles client retry stats and server shed metrics against.
#[derive(Debug, Default)]
pub struct ChaosLog {
    /// Connections accepted and proxied.
    pub connections: AtomicU64,
    /// Connections cut mid-stream at the scheduled offset.
    pub truncated: AtomicU64,
    /// Connections that had bytes swallowed, then were closed.
    pub dropped: AtomicU64,
    /// Single-bit flips forwarded into the stream.
    pub corrupted: AtomicU64,
    /// Segments paused before forwarding.
    pub delayed: AtomicU64,
    /// Segments forwarded as two flushed halves.
    pub split: AtomicU64,
}

impl ChaosLog {
    /// Fatal faults that actually fired — each one forced a client
    /// teardown and therefore one reconnect.
    pub fn fatal_faults(&self) -> u64 {
        self.truncated.load(Ordering::SeqCst)
            + self.dropped.load(Ordering::SeqCst)
            + self.corrupted.load(Ordering::SeqCst)
    }
}

/// SplitMix64, the house mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Tiny deterministic RNG: a SplitMix64 counter stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(splitmix64(seed))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.0)
    }

    /// True with probability `p`.
    fn chance(&mut self, p: f64) -> bool {
        ((self.next() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Direction {
    /// Client bytes flowing toward the server.
    C2s,
    /// Server bytes flowing toward the client.
    S2c,
}

impl Direction {
    fn label(self) -> &'static str {
        match self {
            Direction::C2s => "c2s",
            Direction::S2c => "s2c",
        }
    }

    fn salt(self) -> u64 {
        match self {
            Direction::C2s => 0x0C25,
            Direction::S2c => 0x052C,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum FaultKind {
    /// Cut the connection exactly at the scheduled offset.
    Truncate,
    /// Forward up to the offset, swallow the rest of that segment,
    /// then close — bytes vanish, then the transport dies.
    Drop,
    /// Flip one bit at the offset and keep forwarding; the CRC (or the
    /// peer's framing checks) must catch it.
    Corrupt,
}

impl FaultKind {
    fn label(self) -> &'static str {
        match self {
            FaultKind::Truncate => "truncate",
            FaultKind::Drop => "drop",
            FaultKind::Corrupt => "corrupt",
        }
    }
}

/// The one fatal fault a connection may carry: fires in `dir` when the
/// stream reaches `offset`.
#[derive(Clone, Copy, Debug)]
struct FaultPlan {
    dir: Direction,
    kind: FaultKind,
    offset: u64,
    bit: u8,
}

/// Draws a connection's fault plan from the seeded schedule. Pure:
/// `(seed, conn)` fully determines the answer.
fn plan_fault(config: &ChaosConfig, conn: u64) -> Option<FaultPlan> {
    let mut rng = Rng::new(config.seed ^ conn.wrapping_mul(0xA076_1D64_78BD_642F));
    if !rng.chance(config.fault_rate) {
        return None;
    }
    let dir = if rng.next() & 1 == 0 {
        Direction::C2s
    } else {
        Direction::S2c
    };
    let kind = match rng.next() % 3 {
        0 => FaultKind::Truncate,
        1 => FaultKind::Drop,
        _ => FaultKind::Corrupt,
    };
    // Past the hello: it has no checksum, so corrupting it looks like
    // a protocol mismatch rather than a transient transport fault.
    let offset = HELLO_BYTES as u64 + rng.next() % FAULT_WINDOW;
    let bit = (rng.next() & 7) as u8;
    Some(FaultPlan {
        dir,
        kind,
        offset,
        bit,
    })
}

/// A running fault-injection proxy. Dropping it (or calling
/// [`ChaosProxy::stop`]) stops accepting; connections already proxied
/// run until their streams close.
pub struct ChaosProxy {
    local_addr: SocketAddr,
    log: Arc<ChaosLog>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds `listen` (use port 0 for an ephemeral port) and proxies
    /// every accepted connection to `upstream` with faults injected
    /// per `config`.
    pub fn spawn(
        listen: &str,
        upstream: impl Into<String>,
        config: ChaosConfig,
    ) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind(listen)?;
        let local_addr = listener.local_addr()?;
        let upstream = upstream.into();
        let log = Arc::new(ChaosLog::default());
        let stop = Arc::new(AtomicBool::new(false));
        let accept_log = Arc::clone(&log);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = thread::Builder::new()
            .name("chaos-accept".into())
            .spawn(move || {
                let mut conn: u64 = 0;
                for inbound in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(inbound) = inbound else { continue };
                    let Ok(outbound) = TcpStream::connect(&upstream) else {
                        // Upstream refused; drop the client so it sees
                        // a plain connection failure.
                        continue;
                    };
                    let _ = inbound.set_nodelay(true);
                    let _ = outbound.set_nodelay(true);
                    accept_log.connections.fetch_add(1, Ordering::SeqCst);
                    let plan = plan_fault(&config, conn);
                    spawn_pumps(conn, inbound, outbound, plan, config, &accept_log);
                    conn += 1;
                }
            })
            .expect("spawn chaos accept thread");
        Ok(ChaosProxy {
            local_addr,
            log,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's bound address — point clients here.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The injection log (shared with the pump threads; counters move
    /// while connections are live).
    pub fn log(&self) -> Arc<ChaosLog> {
        Arc::clone(&self.log)
    }

    /// Stops accepting new connections and joins the accept thread.
    pub fn stop(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.local_addr);
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Spawns the two direction pumps for one proxied connection.
fn spawn_pumps(
    conn: u64,
    inbound: TcpStream,
    outbound: TcpStream,
    plan: Option<FaultPlan>,
    config: ChaosConfig,
    log: &Arc<ChaosLog>,
) {
    let pairs = [
        (Direction::C2s, inbound.try_clone(), outbound.try_clone()),
        (Direction::S2c, outbound.try_clone(), inbound.try_clone()),
    ];
    for (dir, src, dst) in pairs {
        let (Ok(src), Ok(dst)) = (src, dst) else {
            let _ = inbound.shutdown(Shutdown::Both);
            let _ = outbound.shutdown(Shutdown::Both);
            return;
        };
        let fault = plan.filter(|p| p.dir == dir);
        let log = Arc::clone(log);
        thread::Builder::new()
            .name(format!("chaos-{}-{conn}", dir.label()))
            .spawn(move || pump(src, dst, dir, conn, fault, config, log))
            .expect("spawn chaos pump thread");
    }
}

/// Copies `src` to `dst` byte-for-byte, injecting the scheduled fatal
/// fault (if any) plus probabilistic delays and splits. Returns when
/// either side closes or the fatal fault fires.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    dir: Direction,
    conn: u64,
    mut fault: Option<FaultPlan>,
    config: ChaosConfig,
    log: Arc<ChaosLog>,
) {
    let mut rng = Rng::new(config.seed ^ conn ^ dir.salt());
    let mut buf = [0u8; 8192];
    let mut pos: u64 = 0;
    loop {
        let n = match src.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if let Some(plan) = fault {
            if plan.offset < pos + n as u64 {
                let cut = (plan.offset - pos) as usize;
                let fired = |counter: &AtomicU64| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    if config.verbose {
                        println!(
                            "chaos: fatal kind={} conn={conn} dir={} offset={}",
                            plan.kind.label(),
                            dir.label(),
                            plan.offset
                        );
                    }
                };
                match plan.kind {
                    FaultKind::Truncate => {
                        let _ = dst.write_all(&buf[..cut]);
                        let _ = dst.flush();
                        fired(&log.truncated);
                        break;
                    }
                    FaultKind::Drop => {
                        let _ = dst.write_all(&buf[..cut]);
                        let _ = dst.flush();
                        fired(&log.dropped);
                        break;
                    }
                    FaultKind::Corrupt => {
                        buf[cut] ^= 1 << plan.bit;
                        fired(&log.corrupted);
                        fault = None;
                    }
                }
            }
        }
        if config.delay_rate > 0.0 && rng.chance(config.delay_rate) {
            log.delayed.fetch_add(1, Ordering::SeqCst);
            thread::sleep(config.delay);
        }
        let wrote = if config.split_rate > 0.0 && n > 1 && rng.chance(config.split_rate) {
            log.split.fetch_add(1, Ordering::SeqCst);
            let mid = n / 2;
            dst.write_all(&buf[..mid])
                .and_then(|()| dst.flush())
                .and_then(|()| dst.write_all(&buf[mid..n]))
        } else {
            dst.write_all(&buf[..n])
        };
        if wrote.and_then(|()| dst.flush()).is_err() {
            break;
        }
        pos += n as u64;
    }
    // Tear down the pair: a fatal fault (or either side closing) kills
    // both directions, so nobody is left waiting on a half-dead pipe.
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plans_are_deterministic_and_past_the_hello() {
        let config = ChaosConfig {
            seed: 7,
            fault_rate: 0.5,
            ..ChaosConfig::default()
        };
        let a: Vec<bool> = (0..64).map(|c| plan_fault(&config, c).is_some()).collect();
        let b: Vec<bool> = (0..64).map(|c| plan_fault(&config, c).is_some()).collect();
        assert_eq!(a, b, "same seed, same schedule");
        let hits = a.iter().filter(|f| **f).count();
        assert!(hits > 8 && hits < 56, "rate 0.5 should land mid-range");
        for c in 0..64 {
            if let Some(plan) = plan_fault(&config, c) {
                assert!(plan.offset >= HELLO_BYTES as u64, "hello is off-limits");
                assert!(plan.offset < HELLO_BYTES as u64 + FAULT_WINDOW);
            }
        }
        let other = ChaosConfig { seed: 8, ..config };
        let c: Vec<bool> = (0..64).map(|c| plan_fault(&other, c).is_some()).collect();
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn zero_fault_rate_plans_nothing() {
        let config = ChaosConfig::default();
        assert!((0..256).all(|c| plan_fault(&config, c).is_none()));
    }

    #[test]
    fn transparent_proxy_forwards_bytes_exactly() {
        // A zero-rate proxy in front of an echo server must be
        // invisible: bytes round-trip unchanged and nothing is logged.
        let echo = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let echo_addr = echo.local_addr().expect("echo addr");
        let echo_thread = thread::spawn(move || {
            let (mut conn, _) = echo.accept().expect("accept");
            let mut buf = [0u8; 256];
            loop {
                match conn.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if conn.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
        });
        let mut proxy =
            ChaosProxy::spawn("127.0.0.1:0", echo_addr.to_string(), ChaosConfig::default())
                .expect("spawn proxy");
        let mut client = TcpStream::connect(proxy.local_addr()).expect("connect");
        let sent: Vec<u8> = (0..=255).collect();
        client.write_all(&sent).expect("write");
        let mut got = vec![0u8; sent.len()];
        client.read_exact(&mut got).expect("read echo");
        assert_eq!(got, sent, "zero-rate proxy must be byte-transparent");
        drop(client);
        echo_thread.join().expect("echo thread");
        let log = proxy.log();
        assert_eq!(log.connections.load(Ordering::SeqCst), 1);
        assert_eq!(log.fatal_faults(), 0);
        assert_eq!(log.delayed.load(Ordering::SeqCst), 0);
        assert_eq!(log.split.load(Ordering::SeqCst), 0);
        proxy.stop();
    }
}
