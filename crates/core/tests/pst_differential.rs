//! Property-based differential suite for the open-addressed PST (PR 6):
//! random train/train_owned/lookup/peek sequences driven through the
//! open-addressed `Pst` and the retained `LruTable`-backed
//! `pst::oracle::LruPst` must agree exactly — hit/miss results, stored
//! sequence contents, recency order (and therefore victim choice, the
//! suffix of that order), training counts, and `SequenceArena` buffer
//! accounting — at capacities from degenerate (1) through a grown
//! multi-rebuild table (300).

use proptest::prelude::*;

use stems_core::stems::pst::{oracle::LruPst, Pst, PST_MISS};
use stems_types::{BlockOffset, Delta, SequenceArena, SpatialSequence};

fn sequence(items: &[(u8, u8)]) -> SpatialSequence {
    items
        .iter()
        .map(|&(o, d)| (BlockOffset::new(o % 32), Delta::from(d)))
        .collect()
}

/// One randomized table operation, decoded from a tuple strategy
/// (`sel`: 0 = train, 1 = train_owned, 2 = lookup, 3 = peek,
/// 4 = lookup_id + entry_matches).
type Op = (u8, u64, Vec<(u8, u8)>);

fn apply_lockstep(
    ops: &[Op],
    new_pst: &mut Pst,
    old_pst: &mut LruPst,
    new_arena: &mut SequenceArena,
    old_arena: &mut SequenceArena,
) -> Result<(), String> {
    for (step, (sel, key, items)) in ops.iter().enumerate() {
        match sel % 5 {
            0 => {
                let s = sequence(items);
                new_pst.train(*key, &s);
                old_pst.train(*key, &s);
            }
            1 => {
                // Route both observations through their arenas the way
                // the AGT handoff does, so take/put accounting is live.
                let mut a = new_arena.take();
                let mut b = old_arena.take();
                for &(o, d) in items {
                    a.push(BlockOffset::new(o % 32), Delta::from(d));
                    b.push(BlockOffset::new(o % 32), Delta::from(d));
                }
                new_pst.train_owned(*key, a, new_arena);
                old_pst.train_owned(*key, b, old_arena);
            }
            2 => {
                let a = new_pst.lookup(*key).cloned();
                let b = old_pst.lookup(*key).cloned();
                prop_assert_eq!(a, b, "lookup diverged at step {}", step);
            }
            3 => {
                let a = new_pst.peek(*key).cloned();
                let b = old_pst.peek(*key).cloned();
                prop_assert_eq!(a, b, "peek diverged at step {}", step);
            }
            _ => {
                // The single-probe trigger surface: a lookup_id hit must
                // resolve to the sequence (and recency effect) of the
                // oracle's lookup, and the id must revalidate against
                // its key while no training has intervened.
                let id = new_pst.lookup_id(*key);
                let b = old_pst.lookup(*key).cloned();
                prop_assert_eq!(
                    id != PST_MISS,
                    b.is_some(),
                    "lookup_id hit/miss diverged at step {}",
                    step
                );
                if id != PST_MISS {
                    prop_assert_eq!(
                        Some(new_pst.sequence_at(id).clone()),
                        b,
                        "lookup_id sequence diverged at step {}",
                        step
                    );
                    prop_assert!(
                        new_pst.entry_matches(id, *key),
                        "fresh id failed revalidation at step {}",
                        step
                    );
                    prop_assert!(
                        !new_pst.entry_matches(id, key.wrapping_add(1)),
                        "id revalidated against the wrong key at step {}",
                        step
                    );
                }
            }
        }
        prop_assert_eq!(
            new_pst.len(),
            old_pst.len(),
            "len diverged at step {}",
            step
        );
        prop_assert_eq!(
            new_pst.trainings(),
            old_pst.trainings(),
            "trainings diverged at step {}",
            step
        );
        prop_assert_eq!(
            new_pst.recency_snapshot(),
            old_pst.recency_snapshot(),
            "recency/victim order diverged at step {}",
            step
        );
        prop_assert_eq!(
            (
                new_arena.taken(),
                new_arena.returned(),
                new_arena.outstanding()
            ),
            (
                old_arena.taken(),
                old_arena.returned(),
                old_arena.outstanding()
            ),
            "arena accounting diverged at step {}",
            step
        );
    }
    Ok(())
}

proptest! {
    /// Lockstep equivalence under random operation streams over a key
    /// universe a few times larger than the table, so evictions,
    /// retrains, tombstone reuse, and (at the larger capacities) growth
    /// rebuilds all fire.
    #[test]
    fn open_addressed_pst_equals_lru_oracle(
        capacity_pick in 0usize..5,
        ops in proptest::collection::vec(
            (0u8..5, 0u64..40, proptest::collection::vec((0u8..32, 0u8..4), 0..5)),
            1..200),
    ) {
        let capacity = [1usize, 2, 5, 64, 300][capacity_pick];
        let mut new_pst = Pst::new(capacity);
        let mut old_pst = LruPst::new(capacity);
        let mut new_arena = SequenceArena::new();
        let mut old_arena = SequenceArena::new();
        apply_lockstep(&ops, &mut new_pst, &mut old_pst, &mut new_arena, &mut old_arena)?;
    }

    /// Batched resolution equals scalar: `lookup_regions` over a random
    /// index batch must report exactly the hits `peek` reports, resolve
    /// them to the sequences `peek` returns, move no recency by itself,
    /// and — once each hit is `touch`ed in batch order — leave the
    /// recency list exactly where per-index `lookup` calls on the oracle
    /// leave it.
    #[test]
    fn batched_lookup_regions_equals_scalar_lookups(
        capacity_pick in 0usize..4,
        ops in proptest::collection::vec(
            (0u8..2, 0u64..24, proptest::collection::vec((0u8..32, 0u8..4), 0..4)),
            0..80),
        batch in proptest::collection::vec(0u64..24, 1..12),
    ) {
        let capacity = [1usize, 2, 5, 64][capacity_pick];
        let mut new_pst = Pst::new(capacity);
        let mut old_pst = LruPst::new(capacity);
        let mut new_arena = SequenceArena::new();
        let mut old_arena = SequenceArena::new();
        // Random training prefix (train/train_owned only) to populate.
        apply_lockstep(&ops, &mut new_pst, &mut old_pst, &mut new_arena, &mut old_arena)?;

        let before = new_pst.recency_snapshot();
        let mut ids = Vec::new();
        new_pst.lookup_regions(&batch, &mut ids);
        prop_assert_eq!(ids.len(), batch.len());
        // Probing alone moves nothing.
        prop_assert_eq!(new_pst.recency_snapshot(), before);
        for (&key, &id) in batch.iter().zip(&ids) {
            if id == PST_MISS {
                prop_assert!(old_pst.peek(key).is_none(), "batched miss was a hit: {}", key);
            } else {
                prop_assert_eq!(
                    Some(new_pst.sequence_at(id)),
                    old_pst.peek(key),
                    "batched sequence diverged for key {}", key
                );
            }
        }
        // Deferred touches replay the scalar recency walk.
        for (&key, &id) in batch.iter().zip(&ids) {
            if id != PST_MISS {
                new_pst.touch(id);
            }
            old_pst.lookup(key);
        }
        prop_assert_eq!(new_pst.recency_snapshot(), old_pst.recency_snapshot());
    }
}
