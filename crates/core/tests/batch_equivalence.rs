//! Differential oracle for the batched trace-delivery path: a
//! `run_chunk` of any chunking must be indistinguishable from the scalar
//! `step` loop — same counters, same [`StepOutcome`] stream, and the same
//! eviction-hook calls in the same order.

use proptest::prelude::*;

use stems_core::engine::{
    AccessEvent, Counters, CoverageSim, EvictKind, PrefetchSink, Prefetcher, StepOutcome, StreamTag,
};
use stems_core::session::{AnyPrefetcher, Predictor};
use stems_core::PrefetchConfig;
use stems_memsim::SystemConfig;
use stems_trace::Trace;
use stems_types::BlockAddr;

/// Every engine → prefetcher interaction the batched path must replay
/// exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Hook {
    Access(AccessEvent),
    L1Evict(BlockAddr, EvictKind),
    SvbEvict(BlockAddr, StreamTag),
}

/// Wraps a prefetcher and logs every call the engine makes into it,
/// delegating unchanged (including the `observes_l1_hits` hint, so the
/// wrapped run takes the same fast paths as an unwrapped one).
struct Recording {
    inner: AnyPrefetcher,
    log: Vec<Hook>,
}

impl Prefetcher for Recording {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn on_access(&mut self, ev: &AccessEvent, sink: &mut dyn PrefetchSink) {
        self.log.push(Hook::Access(*ev));
        self.inner.on_access(ev, sink);
    }

    fn observes_l1_hits(&self) -> bool {
        self.inner.observes_l1_hits()
    }

    fn on_l1_evict(&mut self, block: BlockAddr, kind: EvictKind) {
        self.log.push(Hook::L1Evict(block, kind));
        self.inner.on_l1_evict(block, kind);
    }

    fn on_svb_evict(&mut self, block: BlockAddr, tag: StreamTag) {
        self.log.push(Hook::SvbEvict(block, tag));
        self.inner.on_svb_evict(block, tag);
    }
}

/// A run's complete observable behavior.
#[derive(Debug, PartialEq)]
struct Observed {
    counters: Counters,
    outcomes: Vec<StepOutcome>,
    hooks: Vec<Hook>,
    /// Counters snapshot at each chunk boundary (scalar runs snapshot at
    /// the same access indices for comparison).
    boundaries: Vec<Counters>,
}

fn sim(p: Predictor, cfg: &PrefetchConfig, invalidations: bool) -> CoverageSim<Recording> {
    let sys = SystemConfig::small();
    let recording = Recording {
        inner: p.build(cfg),
        log: Vec::new(),
    };
    let mut sim = CoverageSim::new(&sys, cfg, recording);
    if invalidations {
        sim = sim.with_invalidations(0.03, 0xABCD);
    }
    sim
}

fn run_scalar(
    p: Predictor,
    cfg: &PrefetchConfig,
    invalidations: bool,
    trace: &Trace,
    chunk_size: usize,
) -> Observed {
    let mut s = sim(p, cfg, invalidations);
    let mut outcomes = Vec::new();
    let mut boundaries = Vec::new();
    for (i, a) in trace.iter().enumerate() {
        outcomes.push(s.step(a));
        if (i + 1) % chunk_size == 0 || i + 1 == trace.len() {
            boundaries.push(*s.counters());
        }
    }
    let counters = s.finalize();
    Observed {
        counters,
        outcomes,
        hooks: std::mem::take(&mut s.prefetcher_mut().log),
        boundaries,
    }
}

fn run_batched(
    p: Predictor,
    cfg: &PrefetchConfig,
    invalidations: bool,
    trace: &Trace,
    chunk_size: usize,
) -> Observed {
    let mut s = sim(p, cfg, invalidations);
    let mut outcomes = Vec::new();
    let mut boundaries = Vec::new();
    for chunk in trace.as_slice().chunks(chunk_size) {
        s.run_chunk_with(chunk, |_, out| outcomes.push(out.clone()));
        boundaries.push(*s.counters());
    }
    let counters = s.finalize();
    Observed {
        counters,
        outcomes,
        hooks: std::mem::take(&mut s.prefetcher_mut().log),
        boundaries,
    }
}

fn build_trace(ops: &[(u8, u8, u8, bool)]) -> Trace {
    let mut t = Trace::new();
    for &(pc, region, offset, is_write) in ops {
        // 48 regions of 2KB keep the small L1/L2 under replacement and
        // generation churn; offsets exercise spatial patterns.
        let addr = (region as u64 % 48) * 2048 + (offset as u64 % 32) * 64;
        let pc = 0x400 + (pc as u64 % 6) * 4;
        if is_write {
            t.write(pc, addr);
        } else {
            t.read(pc, addr);
        }
    }
    t
}

proptest! {
    /// Random traces through every predictor: `run_chunk` at chunk sizes
    /// 1 / 7 / 64 / whole-trace replays the scalar `step` loop exactly —
    /// counters (final and at chunk boundaries), outcome streams, and
    /// the prefetcher hook log all byte-identical, with and without
    /// invalidation injection.
    #[test]
    fn batched_delivery_matches_scalar_stepping(
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<bool>()),
            1..300,
        ),
        invalidations in any::<bool>(),
    ) {
        let trace = build_trace(&ops);
        let cfg = PrefetchConfig::small();
        for p in Predictor::all() {
            for chunk_size in [1usize, 7, 64, trace.len()] {
                let scalar = run_scalar(p, &cfg, invalidations, &trace, chunk_size);
                let batched = run_batched(p, &cfg, invalidations, &trace, chunk_size);
                prop_assert_eq!(
                    &scalar, &batched,
                    "{} chunk {}: batched run diverged", p, chunk_size
                );
            }
        }
    }
}
