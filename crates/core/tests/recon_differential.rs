//! Property-based differential suite for the bitmap reconstruction
//! window (PR 5): random RMOB/PST streams driven through the flat
//! power-of-two occupancy-bitmap ring (`Reconstructor`) and the retained
//! deque implementation (`oracle::DequeReconstructor`) must agree
//! exactly — placement slots (via window snapshots), `ReconStats`
//! counters, cursor state, and drain order — across the whole supported
//! search-distance range 0–4.

use std::collections::VecDeque;

use proptest::prelude::*;

use stems_core::sms::spatial_index;
use stems_core::stems::recon::oracle::DequeReconstructor;
use stems_core::stems::{Pst, Reconstructor, Rmob, RmobEntry};
use stems_types::{BlockOffset, Delta, Pc, RegionAddr, SpatialSequence};

fn rmob_entry(region: u64, offset: u8, pc: u64, delta: u8) -> RmobEntry {
    RmobEntry {
        block: RegionAddr::new(region).block_at(BlockOffset::new(offset % 32)),
        pc: Pc::new(pc),
        delta: Delta::from(delta),
    }
}

fn sequence(items: &[(u8, u8)]) -> SpatialSequence {
    items
        .iter()
        .map(|&(o, d)| (BlockOffset::new(o % 32), Delta::from(d)))
        .collect()
}

proptest! {
    /// Lockstep equivalence over random temporal skeletons, random
    /// trained spatial sequences, and random drain chunk sizes, at every
    /// search distance 0..=4 and across small and paper-size windows.
    #[test]
    fn bitmap_ring_equals_deque_oracle(
        search in 0usize..5,
        capacity_pick in 0usize..4,
        entries in proptest::collection::vec(
            (0u64..20, 0u8..32, 1u64..6, 0u8..6), 1..160),
        trainings in proptest::collection::vec(
            (1u64..6, 0u8..32,
             proptest::collection::vec((0u8..32, 0u8..4), 1..5)), 0..40),
        chunks in proptest::collection::vec(1usize..8, 1..80),
        start in 0u64..32,
    ) {
        let capacity = [2usize, 5, 64, 256][capacity_pick];
        let mut rmob = Rmob::new(256);
        for &(region, offset, pc, delta) in &entries {
            rmob.append(rmob_entry(region, offset, pc, delta));
        }
        let mut pst_ring = Pst::new(32);
        let mut pst_deque = Pst::new(32);
        for (pc, offset, items) in &trainings {
            let s = sequence(items);
            // Trained twice so elements cross the 2-bit counter
            // prediction threshold and actually expand.
            for _ in 0..2 {
                pst_ring.train(spatial_index(Pc::new(*pc), BlockOffset::new(*offset % 32)), &s);
                pst_deque.train(spatial_index(Pc::new(*pc), BlockOffset::new(*offset % 32)), &s);
            }
        }
        let mut ring = Reconstructor::new(start, capacity, search);
        let mut deque = DequeReconstructor::new(start, capacity, search);
        let mut ring_out = VecDeque::new();
        let mut deque_out = VecDeque::new();
        let mut ring_regions = Vec::new();
        let mut deque_regions = Vec::new();
        for (round, &n) in chunks.iter().enumerate() {
            let a = ring.produce_into(
                n, &rmob, &mut pst_ring, |r, i| ring_regions.push((r, i)), &mut ring_out);
            let b = deque.produce_into(
                n, &rmob, &mut pst_deque, |r, i| deque_regions.push((r, i)), &mut deque_out);
            prop_assert_eq!(a, b, "appended count diverged at round {}", round);
            prop_assert_eq!(&ring_out, &deque_out, "drain order diverged at round {}", round);
            prop_assert_eq!(ring.stats, deque.stats, "stats diverged at round {}", round);
            prop_assert_eq!(
                ring.cursor_state(), deque.cursor_state(),
                "cursor state diverged at round {}", round);
            prop_assert_eq!(
                ring.window_snapshot(), deque.window_snapshot(),
                "window contents diverged at round {}", round);
            prop_assert_eq!(
                &ring_regions, &deque_regions,
                "predicted-region callbacks diverged at round {}", round);
            if a == 0 {
                break;
            }
        }
    }

    /// Expansion-granular equivalence: after every single `expand_one`
    /// the two windows hold identical contents, so any placement-slot
    /// divergence is caught at the exact expansion that introduced it.
    #[test]
    fn expansion_steps_agree_slot_by_slot(
        search in 0usize..5,
        entries in proptest::collection::vec(
            (0u64..10, 0u8..32, 1u64..4, 0u8..4), 1..60),
        trainings in proptest::collection::vec(
            (1u64..4, 0u8..32,
             proptest::collection::vec((0u8..32, 0u8..3), 1..4)), 0..20),
    ) {
        let mut rmob = Rmob::new(128);
        for &(region, offset, pc, delta) in &entries {
            rmob.append(rmob_entry(region, offset, pc, delta));
        }
        let mut pst_ring = Pst::new(16);
        let mut pst_deque = Pst::new(16);
        for (pc, offset, items) in &trainings {
            let s = sequence(items);
            for _ in 0..2 {
                pst_ring.train(spatial_index(Pc::new(*pc), BlockOffset::new(*offset % 32)), &s);
                pst_deque.train(spatial_index(Pc::new(*pc), BlockOffset::new(*offset % 32)), &s);
            }
        }
        let mut ring = Reconstructor::new(0, 64, search);
        let mut deque = DequeReconstructor::new(0, 64, search);
        for step in 0..entries.len() + 2 {
            let a = ring.expand_one(&rmob, &mut pst_ring, |_, _| {});
            let b = deque.expand_one(&rmob, &mut pst_deque, |_, _| {});
            prop_assert_eq!(a, b, "expand_one return diverged at step {}", step);
            prop_assert_eq!(ring.stats, deque.stats, "stats diverged at step {}", step);
            prop_assert_eq!(
                ring.window_snapshot(), deque.window_snapshot(),
                "placement slots diverged at step {}", step);
            if !a {
                break;
            }
        }
    }
}
