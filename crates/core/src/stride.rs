//! The baseline stride prefetcher (Table 1: 32-entry buffer, at most 16
//! distinct strides).
//!
//! A classic PC-indexed stride predictor: per static load, track the last
//! block accessed and the current stride; after two confirmations, run
//! `degree` blocks ahead. Effective for dense scientific code, "largely
//! ineffective for commercial workloads" (Section 1) — which the
//! evaluation reproduces.

use stems_types::{BlockAddr, Pc, SatCounter};

use crate::engine::{AccessEvent, PrefetchSink, Prefetcher, StreamTag};
use crate::util::{Entry, LruTable};
use crate::PrefetchConfig;

/// SVB tag reserved for stride prefetches (there are no stride streams to
/// flush, so one shared tag suffices).
pub const STRIDE_TAG: StreamTag = StreamTag(u8::MAX);

#[derive(Clone, Copy, Debug, Default)]
struct StrideEntry {
    last: BlockAddr,
    stride: i64,
    confidence: SatCounter<3>,
}

/// The PC-indexed stride prefetcher.
///
/// # Example
///
/// ```
/// use stems_core::{PrefetchConfig, StridePrefetcher};
///
/// let p = StridePrefetcher::new(&PrefetchConfig::commercial());
/// assert_eq!(stems_core::engine::Prefetcher::name(&p), "stride");
/// ```
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    table: LruTable<Pc, StrideEntry>,
    degree: usize,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher sized by `cfg`
    /// (`stride_entries` PCs, `stride_degree` blocks ahead).
    pub fn new(cfg: &PrefetchConfig) -> Self {
        StridePrefetcher {
            table: LruTable::new(cfg.stride_entries),
            degree: cfg.stride_degree,
        }
    }
}

impl Prefetcher for StridePrefetcher {
    fn name(&self) -> &str {
        "stride"
    }

    /// Strides are learned from *every* read a PC issues — consecutive
    /// elements usually hit the L1 — so the engine must deliver L1-hit
    /// events (the default; stated explicitly because returning `false`
    /// here would silently stop stride confirmation).
    fn observes_l1_hits(&self) -> bool {
        true
    }

    fn on_access(&mut self, ev: &AccessEvent, sink: &mut dyn PrefetchSink) {
        if ev.is_write {
            return;
        }
        let block = ev.block;
        // Single-hash access: one index probe covers both the learned-PC
        // update and the cold-PC insert.
        match self.table.entry(ev.pc) {
            Entry::Occupied(occupied) => {
                let entry = occupied.into_mut();
                let observed = block.get() as i64 - entry.last.get() as i64;
                if observed == 0 {
                    // Same block re-touched; no stride information.
                    return;
                }
                if observed == entry.stride {
                    entry.confidence.increment();
                } else {
                    entry.stride = observed;
                    entry.confidence = SatCounter::new(0);
                }
                entry.last = block;
                if entry.confidence.predicts(2) {
                    let stride = entry.stride;
                    for k in 1..=self.degree as i64 {
                        if let Some(target) = block.offset_by(stride * k) {
                            sink.fetch_svb(target, STRIDE_TAG);
                        }
                    }
                }
            }
            Entry::Vacant(vacant) => {
                vacant.insert(StrideEntry {
                    last: block,
                    stride: 0,
                    confidence: SatCounter::new(0),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CoverageSim, Satisfied};
    use stems_memsim::SystemConfig;
    use stems_trace::Trace;

    #[test]
    fn unit_stride_stream_is_covered_after_training() {
        // One PC walking blocks 0,1,2,...: after two confirmations the
        // prefetcher runs ahead and covers the remainder.
        let mut t = Trace::new();
        for i in 0..64u64 {
            t.read(0x400, i * 64 + 16 * 1024 * 1024);
        }
        let cfg = PrefetchConfig::small();
        let mut sim = CoverageSim::new(&SystemConfig::small(), &cfg, StridePrefetcher::new(&cfg));
        let c = sim.run(&t);
        assert!(c.covered > 40, "covered = {}", c.covered);
        assert!(c.uncovered < 16, "uncovered = {}", c.uncovered);
    }

    #[test]
    fn irregular_addresses_are_not_prefetched() {
        let mut t = Trace::new();
        let mut x: u64 = 0x9E3779B9;
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t.read(0x400, (x % (1 << 30)) & !63);
        }
        let cfg = PrefetchConfig::small();
        let mut sim = CoverageSim::new(&SystemConfig::small(), &cfg, StridePrefetcher::new(&cfg));
        let c = sim.run(&t);
        assert_eq!(c.covered, 0);
    }

    #[test]
    fn negative_strides_work() {
        let mut t = Trace::new();
        for i in (0..64u64).rev() {
            t.read(0x400, i * 64 + 16 * 1024 * 1024);
        }
        let cfg = PrefetchConfig::small();
        let mut sim = CoverageSim::new(&SystemConfig::small(), &cfg, StridePrefetcher::new(&cfg));
        let c = sim.run(&t);
        assert!(c.covered > 40, "covered = {}", c.covered);
    }

    #[test]
    fn writes_are_ignored() {
        let mut p = StridePrefetcher::new(&PrefetchConfig::small());
        struct NoSink;
        impl PrefetchSink for NoSink {
            fn fetch_svb(&mut self, _: BlockAddr, _: StreamTag) -> bool {
                panic!("write should not prefetch");
            }
            fn fetch_l1(&mut self, _: BlockAddr) -> bool {
                panic!("write should not prefetch");
            }
            fn flush_stream(&mut self, _: StreamTag) {}
            fn in_l1(&self, _: BlockAddr) -> bool {
                false
            }
            fn in_l2(&self, _: BlockAddr) -> bool {
                false
            }
            fn in_svb(&self, _: BlockAddr) -> bool {
                false
            }
        }
        for i in 0..16u64 {
            p.on_access(
                &AccessEvent {
                    pc: Pc::new(1),
                    block: BlockAddr::new(i),
                    is_write: true,
                    satisfied: Satisfied::OffChip,
                },
                &mut NoSink,
            );
        }
    }
}
