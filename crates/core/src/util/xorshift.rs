//! A tiny deterministic PRNG for simulator-internal randomness
//! (coherence-invalidation injection), avoiding a heavyweight dependency
//! in the hot path. Not cryptographic.

/// An xorshift64* generator.
///
/// # Example
///
/// ```
/// use stems_core::util::XorShift64;
///
/// let mut a = XorShift64::new(7);
/// let mut b = XorShift64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic per seed
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed (zero is remapped to a fixed
    /// nonzero constant, as xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        self.next_u64() % bound
    }

    /// Bernoulli trial with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift64::new(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = XorShift64::new(2);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = XorShift64::new(3);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits = {hits}");
    }
}
