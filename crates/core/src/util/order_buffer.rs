//! A circular history buffer with a most-recent-occurrence index.
//!
//! Both temporal history structures are instances of this: TMS's circular
//! miss-order buffer (CMOB, ~384K entries) and STeMS's region miss-order
//! buffer (RMOB, 128K entries). Appends overwrite the oldest entry once
//! full; an index maps a block address to its most recent position so a
//! miss can locate where to start streaming (Section 2.2, 4.2).

use stems_types::{fx_map_with_capacity, BlockAddr, FxHashMap};

/// Types storable in an [`OrderBuffer`]: anything with a block address key.
pub trait HasBlock {
    /// The block address this entry is indexed under.
    fn block(&self) -> BlockAddr;
}

impl HasBlock for BlockAddr {
    fn block(&self) -> BlockAddr {
        *self
    }
}

/// A bounded circular append-only buffer of history entries, with O(1)
/// lookup of the most recent occurrence of a block address.
///
/// Positions are *absolute* append counts (monotonically increasing); a
/// position is readable while it has not been overwritten, i.e. while it is
/// within `capacity` of the append cursor.
///
/// The position→slot mapping (`pos % capacity`) is computed without
/// division: the write cursor (`appended % capacity`) is maintained
/// incrementally by the append path, and a read derives its slot from
/// the cursor with one conditional add — the paper-scale CMOB
/// (384K = 3·2¹⁷ entries) otherwise pays a 64-bit division on every
/// append and every streamed read. The ring stays exactly `capacity`
/// entries: rounding up to a power of two for mask indexing was measured
/// to cost more in extra cache/TLB footprint (+33% on the CMOB) than the
/// division it removed.
#[derive(Clone, Debug)]
pub struct OrderBuffer<T> {
    ring: Vec<T>,
    /// `appended % capacity` — the slot the next append writes.
    cursor: usize,
    capacity: usize,
    appended: u64,
    index: FxHashMap<BlockAddr, u64>,
}

impl<T: HasBlock + Clone> OrderBuffer<T> {
    /// Creates a buffer of `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "OrderBuffer capacity must be nonzero");
        OrderBuffer {
            ring: Vec::with_capacity(capacity.min(1 << 16)),
            cursor: 0,
            capacity,
            appended: 0,
            index: fx_map_with_capacity(capacity.min(1 << 16)),
        }
    }

    /// Total entries ever appended (the next entry's position).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Entries currently resident (`min(appended, capacity)`).
    pub fn len(&self) -> usize {
        (self.appended as usize).min(self.capacity)
    }

    /// Whether nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.appended == 0
    }

    /// Appends an entry, indexing it as the most recent occurrence of its
    /// block. Returns the entry's absolute position.
    pub fn append(&mut self, entry: T) -> u64 {
        let pos = self.appended;
        let slot = self.cursor;
        self.index.insert(entry.block(), pos);
        if slot < self.ring.len() {
            self.ring[slot] = entry;
        } else {
            self.ring.push(entry);
        }
        self.appended += 1;
        self.cursor += 1;
        if self.cursor == self.capacity {
            self.cursor = 0;
        }
        pos
    }

    fn in_window(&self, pos: u64) -> bool {
        pos < self.appended && self.appended - pos <= self.capacity as u64
    }

    /// Position of the most recent occurrence of `block`, if it is still
    /// resident (not overwritten by wraparound).
    pub fn lookup(&self, block: BlockAddr) -> Option<u64> {
        let &pos = self.index.get(&block)?;
        self.in_window(pos).then_some(pos)
    }

    /// The entry at absolute position `pos`, if still resident.
    pub fn get(&self, pos: u64) -> Option<&T> {
        if !self.in_window(pos) {
            return None;
        }
        // `pos % capacity` via the maintained cursor: with `pos` in the
        // window, `back = appended - pos` is in `1..=capacity`, so one
        // conditional add replaces the division.
        let back = (self.appended - pos) as usize;
        let slot = if self.cursor >= back {
            self.cursor - back
        } else {
            self.cursor + self.capacity - back
        };
        self.ring.get(slot)
    }

    /// Reads up to `n` consecutive entries starting at `pos` (stops at the
    /// append cursor or the window edge).
    pub fn read_from(&self, pos: u64, n: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(n);
        for p in pos..pos.saturating_add(n as u64) {
            match self.get(p) {
                Some(e) => out.push(e.clone()),
                None => break,
            }
        }
        out
    }

    /// Like [`OrderBuffer::read_from`], but appends into a caller-provided
    /// buffer (the stream queue's pending deque) instead of allocating.
    /// Returns the number of entries appended.
    pub fn read_from_into(
        &self,
        pos: u64,
        n: usize,
        out: &mut std::collections::VecDeque<T>,
    ) -> usize {
        let mut appended = 0;
        for p in pos..pos.saturating_add(n as u64) {
            match self.get(p) {
                Some(e) => {
                    out.push_back(e.clone());
                    appended += 1;
                }
                None => break,
            }
        }
        appended
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> BlockAddr {
        BlockAddr::new(n)
    }

    #[test]
    fn append_and_lookup_most_recent() {
        let mut buf: OrderBuffer<BlockAddr> = OrderBuffer::new(8);
        buf.append(b(1));
        buf.append(b(2));
        buf.append(b(1));
        assert_eq!(buf.lookup(b(1)), Some(2));
        assert_eq!(buf.lookup(b(2)), Some(1));
        assert_eq!(buf.lookup(b(9)), None);
    }

    #[test]
    fn wraparound_invalidates_stale_index() {
        let mut buf: OrderBuffer<BlockAddr> = OrderBuffer::new(4);
        buf.append(b(1)); // pos 0
        for i in 2..=5 {
            buf.append(b(i)); // positions 1..=4; pos 0 overwritten
        }
        assert_eq!(buf.lookup(b(1)), None);
        assert_eq!(buf.get(0), None);
        assert_eq!(buf.lookup(b(5)), Some(4));
        assert_eq!(buf.len(), 4);
    }

    #[test]
    fn read_from_stops_at_cursor() {
        let mut buf: OrderBuffer<BlockAddr> = OrderBuffer::new(8);
        for i in 0..5 {
            buf.append(b(i));
        }
        let v = buf.read_from(3, 10);
        assert_eq!(v, vec![b(3), b(4)]);
        assert!(buf.read_from(5, 4).is_empty());
    }

    #[test]
    fn read_from_respects_window_edge() {
        let mut buf: OrderBuffer<BlockAddr> = OrderBuffer::new(4);
        for i in 0..10 {
            buf.append(b(i));
        }
        // Window holds positions 6..=9.
        assert!(buf.read_from(2, 3).is_empty());
        assert_eq!(buf.read_from(6, 2), vec![b(6), b(7)]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _: OrderBuffer<BlockAddr> = OrderBuffer::new(0);
    }

    /// The slot mapping is cursor-derived rather than a `pos % capacity`
    /// division: a non-power-of-two capacity (the CMOB's 384K, scaled
    /// down here to 3) must still expire entries after exactly
    /// `capacity` appends, with every in-window position readable.
    #[test]
    fn non_power_of_two_capacity_windows_logically() {
        let mut buf: OrderBuffer<BlockAddr> = OrderBuffer::new(3);
        for i in 0..10 {
            buf.append(b(i));
            // Exactly the last 3 positions are readable.
            for p in 0..=i {
                let pos = p;
                let readable = i - p < 3;
                assert_eq!(
                    buf.get(pos).is_some(),
                    readable,
                    "pos {pos} after {} appends",
                    i + 1
                );
                if readable {
                    assert_eq!(buf.get(pos), Some(&b(p)));
                }
            }
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.lookup(b(9)), Some(9));
        assert_eq!(buf.lookup(b(6)), None, "outside the logical window");
    }
}
