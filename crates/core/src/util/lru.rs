//! A fixed-capacity true-LRU associative table.
//!
//! Backs every finite predictor structure in the paper: the pattern history
//! table, the pattern sequence table, active generation tables, stride
//! tables, and stream-queue victim selection. Implemented as an intrusive
//! doubly-linked list over a slot vector plus a hash index, so `get`,
//! `insert`, and `remove` are all O(1). The index hashes through
//! [`stems_types::FxHasher`] and is pre-sized to capacity: every PHT /
//! PST / AGT / stride lookup pays the hash, so SipHash here was the
//! single largest per-access cost of the predictors.

use std::hash::Hash;

use stems_types::{fx_map_with_capacity, FxHashMap};

const NIL: usize = usize::MAX;

#[derive(Clone, Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A bounded map that evicts its least-recently-used entry on overflow.
///
/// # Example
///
/// ```
/// use stems_core::util::LruTable;
///
/// let mut t = LruTable::new(2);
/// t.insert("a", 1);
/// t.insert("b", 2);
/// t.get(&"a"); // refresh "a"
/// let evicted = t.insert("c", 3).unwrap();
/// assert_eq!(evicted, ("b", 2));
/// ```
#[derive(Clone, Debug)]
pub struct LruTable<K, V> {
    slots: Vec<Slot<K, V>>,
    index: FxHashMap<K, usize>,
    free: Vec<usize>,
    head: usize, // MRU
    tail: usize, // LRU
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruTable<K, V> {
    /// Creates a table holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LruTable capacity must be nonzero");
        LruTable {
            slots: Vec::with_capacity(capacity.min(4096)),
            index: fx_map_with_capacity(capacity.min(4096)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up `key`, refreshing it to most-recently-used.
    pub fn get(&mut self, key: &K) -> Option<&mut V> {
        let &i = self.index.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(&mut self.slots[i].value)
    }

    /// Looks up `key` without changing recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.index.get(key).map(|&i| &self.slots[i].value)
    }

    /// Whether `key` is resident (no recency update).
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Inserts `key -> value` as most-recently-used.
    ///
    /// Returns the evicted LRU entry if the table was full, or the previous
    /// value under `key` if it was already resident (as `(key, old_value)`).
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&i) = self.index.get(&key) {
            let old = std::mem::replace(&mut self.slots[i].value, value);
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return Some((key, old));
        }
        let mut evicted_key = None;
        if self.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            let k = self.slots[lru].key.clone();
            self.index.remove(&k);
            self.free.push(lru);
            evicted_key = Some(k);
        }
        let (i, evicted) = match self.free.pop() {
            Some(i) => {
                let slot = &mut self.slots[i];
                let old_value = std::mem::replace(&mut slot.value, value);
                slot.key = key.clone();
                slot.prev = NIL;
                slot.next = NIL;
                (i, evicted_key.map(|k| (k, old_value)))
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                (self.slots.len() - 1, None)
            }
        };
        self.index.insert(key, i);
        self.push_front(i);
        evicted
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V>
    where
        V: Default,
    {
        let i = self.index.remove(key)?;
        self.unlink(i);
        self.free.push(i);
        Some(std::mem::take(&mut self.slots[i].value))
    }

    /// Iterates over `(key, value)` pairs from most- to least-recently-used.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            table: self,
            cursor: self.head,
        }
    }

    /// The least-recently-used key, if any.
    pub fn lru_key(&self) -> Option<&K> {
        if self.tail == NIL {
            None
        } else {
            Some(&self.slots[self.tail].key)
        }
    }
}

/// Iterator over an [`LruTable`] in recency order (MRU first).
#[derive(Clone, Debug)]
pub struct Iter<'a, K, V> {
    table: &'a LruTable<K, V>,
    cursor: usize,
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let slot = &self.table.slots[self.cursor];
        self.cursor = slot.next;
        Some((&slot.key, &slot.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_lru_on_overflow() {
        let mut t = LruTable::new(2);
        assert_eq!(t.insert(1, "one"), None);
        assert_eq!(t.insert(2, "two"), None);
        assert_eq!(t.insert(3, "three"), Some((1, "one")));
        assert!(!t.contains(&1));
        assert!(t.contains(&2) && t.contains(&3));
    }

    #[test]
    fn get_refreshes_recency() {
        let mut t = LruTable::new(2);
        t.insert(1, ());
        t.insert(2, ());
        t.get(&1);
        assert_eq!(t.insert(3, ()), Some((2, ())));
        assert!(t.contains(&1));
    }

    #[test]
    fn peek_does_not_refresh() {
        let mut t = LruTable::new(2);
        t.insert(1, ());
        t.insert(2, ());
        assert!(t.peek(&1).is_some());
        assert_eq!(t.insert(3, ()), Some((1, ())));
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let mut t = LruTable::new(2);
        t.insert(1, 10);
        t.insert(2, 20);
        assert_eq!(t.insert(1, 11), Some((1, 10)));
        assert_eq!(t.insert(3, 30), Some((2, 20)));
        assert_eq!(*t.get(&1).unwrap(), 11);
    }

    #[test]
    fn remove_frees_capacity() {
        let mut t = LruTable::new(2);
        t.insert(1, 10);
        t.insert(2, 20);
        assert_eq!(t.remove(&1), Some(10));
        assert_eq!(t.len(), 1);
        assert_eq!(t.insert(3, 30), None);
        assert_eq!(t.remove(&99), None);
    }

    #[test]
    fn iter_is_mru_first() {
        let mut t = LruTable::new(3);
        t.insert(1, ());
        t.insert(2, ());
        t.insert(3, ());
        t.get(&1);
        let keys: Vec<i32> = t.iter().map(|(&k, _)| k).collect();
        assert_eq!(keys, [1, 3, 2]);
        assert_eq!(t.lru_key(), Some(&2));
    }

    #[test]
    fn slot_reuse_after_heavy_churn() {
        let mut t = LruTable::new(4);
        for i in 0..1000 {
            t.insert(i, i * 2);
        }
        assert_eq!(t.len(), 4);
        for i in 996..1000 {
            assert_eq!(*t.get(&i).unwrap(), i * 2);
        }
        // Backing storage stays bounded by capacity.
        assert!(t.slots.len() <= 4);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _: LruTable<u8, u8> = LruTable::new(0);
    }

    /// A naive, obviously-correct reference: a Vec ordered MRU-first.
    struct VecModel {
        entries: Vec<(u32, u32)>,
        capacity: usize,
    }

    impl VecModel {
        fn new(capacity: usize) -> Self {
            VecModel {
                entries: Vec::new(),
                capacity,
            }
        }

        fn get(&mut self, key: u32) -> Option<u32> {
            let pos = self.entries.iter().position(|&(k, _)| k == key)?;
            let e = self.entries.remove(pos);
            self.entries.insert(0, e);
            Some(e.1)
        }

        fn peek(&self, key: u32) -> Option<u32> {
            self.entries
                .iter()
                .find(|&&(k, _)| k == key)
                .map(|&(_, v)| v)
        }

        fn insert(&mut self, key: u32, value: u32) -> Option<(u32, u32)> {
            if let Some(pos) = self.entries.iter().position(|&(k, _)| k == key) {
                let old = self.entries.remove(pos);
                self.entries.insert(0, (key, value));
                return Some(old);
            }
            let evicted = if self.entries.len() == self.capacity {
                self.entries.pop()
            } else {
                None
            };
            self.entries.insert(0, (key, value));
            evicted
        }

        fn remove(&mut self, key: u32) -> Option<u32> {
            let pos = self.entries.iter().position(|&(k, _)| k == key)?;
            Some(self.entries.remove(pos).1)
        }
    }

    /// Property test against the model oracle: after the FxHash index
    /// swap, eviction order, `get` refresh, re-insert, `remove`, and
    /// MRU-first iteration must all behave exactly as a naive ordered
    /// Vec — across thousands of randomized operation sequences.
    #[test]
    fn matches_vec_model_under_random_ops() {
        use crate::util::XorShift64;

        for seed in 0..20u64 {
            let mut rng = XorShift64::new(0xBEEF ^ seed);
            let capacity = 1 + rng.below(12) as usize;
            let mut table: LruTable<u32, u32> = LruTable::new(capacity);
            let mut model = VecModel::new(capacity);
            for step in 0..2000u32 {
                let key = rng.below(24) as u32;
                match rng.below(10) {
                    0..=4 => {
                        let value = step;
                        assert_eq!(
                            table.insert(key, value),
                            model.insert(key, value),
                            "insert({key}) diverged at step {step} (seed {seed})"
                        );
                    }
                    5..=6 => {
                        assert_eq!(
                            table.get(&key).copied(),
                            model.get(key),
                            "get({key}) diverged at step {step} (seed {seed})"
                        );
                    }
                    7 => {
                        assert_eq!(
                            table.peek(&key).copied(),
                            model.peek(key),
                            "peek({key}) diverged at step {step} (seed {seed})"
                        );
                    }
                    8 => {
                        assert_eq!(
                            table.remove(&key),
                            model.remove(key),
                            "remove({key}) diverged at step {step} (seed {seed})"
                        );
                    }
                    _ => {
                        let got: Vec<(u32, u32)> = table.iter().map(|(&k, &v)| (k, v)).collect();
                        assert_eq!(
                            got, model.entries,
                            "recency order diverged at step {step} (seed {seed})"
                        );
                        assert_eq!(table.len(), model.entries.len());
                        assert_eq!(
                            table.lru_key().copied(),
                            model.entries.last().map(|&(k, _)| k)
                        );
                    }
                }
                assert!(table.len() <= capacity);
            }
        }
    }
}
