//! A fixed-capacity true-LRU associative table.
//!
//! Backs every finite predictor structure in the paper: the pattern history
//! table, the pattern sequence table, active generation tables, stride
//! tables, and stream-queue victim selection. Implemented as an intrusive
//! doubly-linked list over a slot vector plus a hash index, so `get`,
//! `insert`, and `remove` are all O(1). The index hashes through
//! [`stems_types::FxHasher`] and is pre-sized to capacity: every PHT /
//! PST / AGT / stride lookup pays the hash, so SipHash here was the
//! single largest per-access cost of the predictors.

use std::hash::Hash;

use stems_types::{fx_map_with_capacity, FxHashMap};

const NIL: u32 = u32::MAX;

/// Key/value storage; recency links live in the parallel dense `links`
/// array so a recency splice never pulls a value's cache lines.
#[derive(Clone, Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
}

/// Intrusive recency-list node for one slot: 8 bytes, packed densely so
/// the up-to-five writes of an unlink/push-front splice land in one or
/// two cache lines regardless of how fat the values are.
#[derive(Clone, Copy, Debug)]
struct Link {
    prev: u32,
    next: u32,
}

/// A bounded map that evicts its least-recently-used entry on overflow.
///
/// # Example
///
/// ```
/// use stems_core::util::LruTable;
///
/// let mut t = LruTable::new(2);
/// t.insert("a", 1);
/// t.insert("b", 2);
/// t.get(&"a"); // refresh "a"
/// let evicted = t.insert("c", 3).unwrap();
/// assert_eq!(evicted, ("b", 2));
/// ```
#[derive(Clone, Debug)]
pub struct LruTable<K, V> {
    slots: Vec<Slot<K, V>>,
    links: Vec<Link>,
    index: FxHashMap<K, u32>,
    free: Vec<u32>,
    head: u32, // MRU
    tail: u32, // LRU
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruTable<K, V> {
    /// Creates a table holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LruTable capacity must be nonzero");
        assert!(
            capacity < NIL as usize,
            "capacity exceeds the u32 slot range"
        );
        // The index reservation is clamped: pre-sizing to full capacity
        // was tried (PR 5) and measured a net loss — a 16K-entry PST
        // index eagerly allocates ~0.4MB per session, and most sessions
        // never fill it, while the growth it avoids is at most
        // log2(capacity/4096) one-time rehashes during warm-up. What
        // steady state requires — and the regression test below pins —
        // is zero reallocation under churn: once the table reaches
        // capacity, eviction keeps occupancy constant, so the index
        // never grows again. The slot and link vectors are deliberately
        // lazy for the same reason (values can be fat — a 16K
        // `SpatialSequence` table would reserve hundreds of KB): their
        // warm-up growth is amortized POD memcpy, and they too stop
        // growing once `slots.len()` reaches capacity.
        LruTable {
            slots: Vec::new(),
            links: Vec::new(),
            index: fx_map_with_capacity(capacity.min(4096)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn unlink(&mut self, i: u32) {
        let Link { prev, next } = self.links[i as usize];
        if prev != NIL {
            self.links[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.links[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: u32) {
        self.links[i as usize] = Link {
            prev: NIL,
            next: self.head,
        };
        if self.head != NIL {
            self.links[self.head as usize].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up `key`, refreshing it to most-recently-used.
    pub fn get(&mut self, key: &K) -> Option<&mut V> {
        let &i = self.index.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(&mut self.slots[i as usize].value)
    }

    /// Looks up `key` without changing recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.index.get(key).map(|&i| &self.slots[i as usize].value)
    }

    /// Single-hash slot view for `key`: the index is probed exactly once,
    /// and the returned [`Entry`] either holds the resident slot (already
    /// refreshed to most-recently-used, as [`LruTable::get`] would) or
    /// the right to insert under `key` without re-probing on the hit
    /// path.
    ///
    /// Every get-then-insert call site (PHT/PST training, the AGT
    /// generation handoff, stride-table updates) hashes twice per miss
    /// and once per hit through the classic API; `entry` makes the hit
    /// path — the steady-state common case — a single hash, and the miss
    /// path one fewer.
    pub fn entry(&mut self, key: K) -> Entry<'_, K, V> {
        match self.index.get(&key) {
            Some(&i) => {
                if self.head != i {
                    self.unlink(i);
                    self.push_front(i);
                }
                Entry::Occupied(OccupiedEntry { table: self, at: i })
            }
            None => Entry::Vacant(VacantEntry { table: self, key }),
        }
    }

    /// Looks up `key` (refreshing it to most-recently-used) or inserts
    /// `make()` as most-recently-used, probing the index once on the hit
    /// path. Returns the resident value and the entry evicted by an
    /// insert at capacity, if any.
    ///
    /// Convenience form of [`LruTable::entry`] for call sites whose two
    /// branches converge on one value. The predictor tables all do
    /// branch-specific work (train vs construct, victim recycling), so
    /// they match on `entry` directly; this wrapper is kept in lockstep
    /// with that path by the entry-vs-classic property suite below.
    pub fn get_or_insert_with(
        &mut self,
        key: K,
        make: impl FnOnce() -> V,
    ) -> (&mut V, Option<(K, V)>) {
        match self.entry(key) {
            Entry::Occupied(e) => (e.into_mut(), None),
            Entry::Vacant(VacantEntry { table, key }) => {
                let evicted = table.insert_fresh(key, make());
                let head = table.head;
                (&mut table.slots[head as usize].value, evicted)
            }
        }
    }

    /// Inserts a key known to be absent (the vacant half of
    /// [`LruTable::entry`]), evicting the LRU entry at capacity. The new
    /// slot becomes `self.head`.
    fn insert_fresh(&mut self, key: K, value: V) -> Option<(K, V)> {
        let mut evicted_key = None;
        if self.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            let k = self.slots[lru as usize].key.clone();
            self.index.remove(&k);
            self.free.push(lru);
            evicted_key = Some(k);
        }
        let (i, evicted) = match self.free.pop() {
            Some(i) => {
                let slot = &mut self.slots[i as usize];
                let old_value = std::mem::replace(&mut slot.value, value);
                slot.key = key.clone();
                (i, evicted_key.map(|k| (k, old_value)))
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                });
                self.links.push(Link {
                    prev: NIL,
                    next: NIL,
                });
                (self.slots.len() as u32 - 1, None)
            }
        };
        self.index.insert(key, i);
        self.push_front(i);
        evicted
    }

    /// Spare bucket headroom of the hash index (diagnostics: the
    /// pre-sizing regression test asserts inserting `capacity` entries
    /// triggers no reallocation).
    pub fn index_capacity(&self) -> usize {
        self.index.capacity()
    }

    /// Whether `key` is resident (no recency update).
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Inserts `key -> value` as most-recently-used.
    ///
    /// Returns the evicted LRU entry if the table was full, or the previous
    /// value under `key` if it was already resident (as `(key, old_value)`).
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&i) = self.index.get(&key) {
            let old = std::mem::replace(&mut self.slots[i as usize].value, value);
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return Some((key, old));
        }
        self.insert_fresh(key, value)
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V>
    where
        V: Default,
    {
        let i = self.index.remove(key)?;
        self.unlink(i);
        self.free.push(i);
        Some(std::mem::take(&mut self.slots[i as usize].value))
    }

    /// Iterates over `(key, value)` pairs from most- to least-recently-used.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            table: self,
            cursor: self.head,
        }
    }

    /// The least-recently-used key, if any.
    pub fn lru_key(&self) -> Option<&K> {
        if self.tail == NIL {
            None
        } else {
            Some(&self.slots[self.tail as usize].key)
        }
    }
}

/// A single-hash view into an [`LruTable`] slot, from
/// [`LruTable::entry`].
#[derive(Debug)]
pub enum Entry<'a, K, V> {
    /// The key is resident; its slot was refreshed to MRU by the probe.
    Occupied(OccupiedEntry<'a, K, V>),
    /// The key is absent; [`VacantEntry::insert`] completes the access
    /// without having probed twice.
    Vacant(VacantEntry<'a, K, V>),
}

/// The resident half of [`Entry`]: the slot is already MRU.
#[derive(Debug)]
pub struct OccupiedEntry<'a, K, V> {
    table: &'a mut LruTable<K, V>,
    at: u32,
}

impl<'a, K, V> OccupiedEntry<'a, K, V> {
    /// The resident value.
    pub fn get(&self) -> &V {
        &self.table.slots[self.at as usize].value
    }

    /// The resident value, mutably.
    pub fn get_mut(&mut self) -> &mut V {
        &mut self.table.slots[self.at as usize].value
    }

    /// Consumes the entry, returning the value for the table borrow's
    /// lifetime.
    pub fn into_mut(self) -> &'a mut V {
        &mut self.table.slots[self.at as usize].value
    }
}

/// The absent half of [`Entry`].
#[derive(Debug)]
pub struct VacantEntry<'a, K, V> {
    table: &'a mut LruTable<K, V>,
    key: K,
}

impl<K: Eq + Hash + Clone, V> VacantEntry<'_, K, V> {
    /// Inserts `value` under the probed key as most-recently-used,
    /// returning the LRU entry evicted if the table was at capacity —
    /// exactly what [`LruTable::insert`] of an absent key returns,
    /// minus its redundant index probe.
    pub fn insert(self, value: V) -> Option<(K, V)> {
        self.table.insert_fresh(self.key, value)
    }
}

/// Iterator over an [`LruTable`] in recency order (MRU first).
#[derive(Clone, Debug)]
pub struct Iter<'a, K, V> {
    table: &'a LruTable<K, V>,
    cursor: u32,
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let slot = &self.table.slots[self.cursor as usize];
        self.cursor = self.table.links[self.cursor as usize].next;
        Some((&slot.key, &slot.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_lru_on_overflow() {
        let mut t = LruTable::new(2);
        assert_eq!(t.insert(1, "one"), None);
        assert_eq!(t.insert(2, "two"), None);
        assert_eq!(t.insert(3, "three"), Some((1, "one")));
        assert!(!t.contains(&1));
        assert!(t.contains(&2) && t.contains(&3));
    }

    #[test]
    fn get_refreshes_recency() {
        let mut t = LruTable::new(2);
        t.insert(1, ());
        t.insert(2, ());
        t.get(&1);
        assert_eq!(t.insert(3, ()), Some((2, ())));
        assert!(t.contains(&1));
    }

    #[test]
    fn peek_does_not_refresh() {
        let mut t = LruTable::new(2);
        t.insert(1, ());
        t.insert(2, ());
        assert!(t.peek(&1).is_some());
        assert_eq!(t.insert(3, ()), Some((1, ())));
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let mut t = LruTable::new(2);
        t.insert(1, 10);
        t.insert(2, 20);
        assert_eq!(t.insert(1, 11), Some((1, 10)));
        assert_eq!(t.insert(3, 30), Some((2, 20)));
        assert_eq!(*t.get(&1).unwrap(), 11);
    }

    #[test]
    fn remove_frees_capacity() {
        let mut t = LruTable::new(2);
        t.insert(1, 10);
        t.insert(2, 20);
        assert_eq!(t.remove(&1), Some(10));
        assert_eq!(t.len(), 1);
        assert_eq!(t.insert(3, 30), None);
        assert_eq!(t.remove(&99), None);
    }

    #[test]
    fn iter_is_mru_first() {
        let mut t = LruTable::new(3);
        t.insert(1, ());
        t.insert(2, ());
        t.insert(3, ());
        t.get(&1);
        let keys: Vec<i32> = t.iter().map(|(&k, _)| k).collect();
        assert_eq!(keys, [1, 3, 2]);
        assert_eq!(t.lru_key(), Some(&2));
    }

    #[test]
    fn slot_reuse_after_heavy_churn() {
        let mut t = LruTable::new(4);
        for i in 0..1000 {
            t.insert(i, i * 2);
        }
        assert_eq!(t.len(), 4);
        for i in 996..1000 {
            assert_eq!(*t.get(&i).unwrap(), i * 2);
        }
        // Backing storage stays bounded by capacity.
        assert!(t.slots.len() <= 4);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _: LruTable<u8, u8> = LruTable::new(0);
    }

    /// Pre-sizing regression test. Two pinned properties: (1) up to the
    /// reservation clamp, filling the table performs zero index
    /// reallocations (`HashMap::capacity` unchanged from construction);
    /// (2) at *every* capacity — paper-scale PST/PHT sizes included —
    /// steady-state churn past capacity performs zero reallocations,
    /// because eviction holds occupancy constant. Growth during the
    /// first fill of an over-clamp table is bounded and one-time
    /// (measured cheaper end-to-end than eagerly reserving ~0.4MB per
    /// session for indexes most sessions never fill; see
    /// `LruTable::new`).
    #[test]
    fn index_never_reallocates_under_the_clamp_nor_under_churn() {
        for capacity in [1usize, 64, 1000, 4096] {
            let mut t: LruTable<u64, u64> = LruTable::new(capacity);
            let reserved = t.index_capacity();
            assert!(
                reserved >= capacity,
                "index under-reserved at construction: {reserved} < {capacity}"
            );
            for i in 0..capacity as u64 {
                t.insert(i, i);
            }
            assert_eq!(t.len(), capacity);
            assert_eq!(
                t.index_capacity(),
                reserved,
                "index reallocated while filling to capacity {capacity}"
            );
            // Churn past capacity must not grow it either: evictions keep
            // occupancy constant.
            for i in 0..(2 * capacity as u64) {
                t.insert(capacity as u64 + i, i);
            }
            assert_eq!(
                t.index_capacity(),
                reserved,
                "index reallocated under churn at capacity {capacity}"
            );
        }
        // Paper-scale sizes: the first fill may grow the clamped
        // reservation (bounded, one-time), but once full, churn must
        // never reallocate the index again.
        for capacity in [5000usize, 16 * 1024] {
            let mut t: LruTable<u64, u64> = LruTable::new(capacity);
            for i in 0..capacity as u64 {
                t.insert(i, i);
            }
            assert_eq!(t.len(), capacity);
            let filled = t.index_capacity();
            for i in 0..(2 * capacity as u64) {
                t.insert(capacity as u64 + i, i);
            }
            assert_eq!(
                t.index_capacity(),
                filled,
                "index reallocated under churn at capacity {capacity}"
            );
        }
    }

    /// The single-hash entry API must be behaviorally identical to the
    /// get-then-insert pattern it replaces: occupied refreshes recency
    /// exactly like `get`, vacant inserts exactly like `insert` of an
    /// absent key (same eviction, same MRU placement).
    #[test]
    fn entry_matches_get_then_insert_under_random_ops() {
        use crate::util::XorShift64;

        for seed in 0..20u64 {
            let mut rng = XorShift64::new(0x0E27 ^ seed);
            let capacity = 1 + rng.below(12) as usize;
            let mut via_entry: LruTable<u32, u32> = LruTable::new(capacity);
            let mut classic: LruTable<u32, u32> = LruTable::new(capacity);
            for step in 0..2000u32 {
                let key = rng.below(24) as u32;
                if rng.below(2) == 0 {
                    // get_or_insert_with vs get-then-insert.
                    let (v, evicted) = via_entry.get_or_insert_with(key, || step);
                    let (want_v, want_evicted) = match classic.get(&key) {
                        Some(v) => (*v, None),
                        None => (step, classic.insert(key, step)),
                    };
                    assert_eq!(*v, want_v, "value diverged at step {step} (seed {seed})");
                    assert_eq!(
                        evicted, want_evicted,
                        "eviction diverged at step {step} (seed {seed})"
                    );
                } else {
                    // Explicit entry match vs the classic pattern.
                    match via_entry.entry(key) {
                        Entry::Occupied(mut e) => {
                            *e.get_mut() += 1;
                            assert_eq!(
                                e.get(),
                                classic
                                    .get(&key)
                                    .map(|v| {
                                        *v += 1;
                                        &*v
                                    })
                                    .expect("oracle must agree on residency")
                            );
                        }
                        Entry::Vacant(e) => {
                            assert!(classic.get(&key).is_none(), "residency diverged");
                            assert_eq!(e.insert(step), classic.insert(key, step));
                        }
                    }
                }
                let a: Vec<(u32, u32)> = via_entry.iter().map(|(&k, &v)| (k, v)).collect();
                let b: Vec<(u32, u32)> = classic.iter().map(|(&k, &v)| (k, v)).collect();
                assert_eq!(a, b, "recency order diverged at step {step} (seed {seed})");
            }
        }
    }

    /// A naive, obviously-correct reference: a Vec ordered MRU-first.
    struct VecModel {
        entries: Vec<(u32, u32)>,
        capacity: usize,
    }

    impl VecModel {
        fn new(capacity: usize) -> Self {
            VecModel {
                entries: Vec::new(),
                capacity,
            }
        }

        fn get(&mut self, key: u32) -> Option<u32> {
            let pos = self.entries.iter().position(|&(k, _)| k == key)?;
            let e = self.entries.remove(pos);
            self.entries.insert(0, e);
            Some(e.1)
        }

        fn peek(&self, key: u32) -> Option<u32> {
            self.entries
                .iter()
                .find(|&&(k, _)| k == key)
                .map(|&(_, v)| v)
        }

        fn insert(&mut self, key: u32, value: u32) -> Option<(u32, u32)> {
            if let Some(pos) = self.entries.iter().position(|&(k, _)| k == key) {
                let old = self.entries.remove(pos);
                self.entries.insert(0, (key, value));
                return Some(old);
            }
            let evicted = if self.entries.len() == self.capacity {
                self.entries.pop()
            } else {
                None
            };
            self.entries.insert(0, (key, value));
            evicted
        }

        fn remove(&mut self, key: u32) -> Option<u32> {
            let pos = self.entries.iter().position(|&(k, _)| k == key)?;
            Some(self.entries.remove(pos).1)
        }
    }

    /// Property test against the model oracle: after the FxHash index
    /// swap, eviction order, `get` refresh, re-insert, `remove`, and
    /// MRU-first iteration must all behave exactly as a naive ordered
    /// Vec — across thousands of randomized operation sequences.
    #[test]
    fn matches_vec_model_under_random_ops() {
        use crate::util::XorShift64;

        for seed in 0..20u64 {
            let mut rng = XorShift64::new(0xBEEF ^ seed);
            let capacity = 1 + rng.below(12) as usize;
            let mut table: LruTable<u32, u32> = LruTable::new(capacity);
            let mut model = VecModel::new(capacity);
            for step in 0..2000u32 {
                let key = rng.below(24) as u32;
                match rng.below(10) {
                    0..=4 => {
                        let value = step;
                        assert_eq!(
                            table.insert(key, value),
                            model.insert(key, value),
                            "insert({key}) diverged at step {step} (seed {seed})"
                        );
                    }
                    5..=6 => {
                        assert_eq!(
                            table.get(&key).copied(),
                            model.get(key),
                            "get({key}) diverged at step {step} (seed {seed})"
                        );
                    }
                    7 => {
                        assert_eq!(
                            table.peek(&key).copied(),
                            model.peek(key),
                            "peek({key}) diverged at step {step} (seed {seed})"
                        );
                    }
                    8 => {
                        assert_eq!(
                            table.remove(&key),
                            model.remove(key),
                            "remove({key}) diverged at step {step} (seed {seed})"
                        );
                    }
                    _ => {
                        let got: Vec<(u32, u32)> = table.iter().map(|(&k, &v)| (k, v)).collect();
                        assert_eq!(
                            got, model.entries,
                            "recency order diverged at step {step} (seed {seed})"
                        );
                        assert_eq!(table.len(), model.entries.len());
                        assert_eq!(
                            table.lru_key().copied(),
                            model.entries.last().map(|&(k, _)| k)
                        );
                    }
                }
                assert!(table.len() <= capacity);
            }
        }
    }
}
