//! Internal utilities shared by the predictor implementations.

mod lru;
mod order_buffer;
mod xorshift;

pub use lru::{Entry, LruTable, OccupiedEntry, VacantEntry};
pub use order_buffer::{HasBlock, OrderBuffer};
pub use xorshift::XorShift64;
