//! Internal utilities shared by the predictor implementations.

mod lru;
mod order_buffer;
mod xorshift;

pub use lru::LruTable;
pub use order_buffer::{HasBlock, OrderBuffer};
pub use xorshift::XorShift64;
