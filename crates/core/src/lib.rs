//! # stems-core — Spatio-Temporal Memory Streaming
//!
//! A from-scratch implementation of the prefetchers evaluated in
//! *Spatio-Temporal Memory Streaming* (Somogyi, Wenisch, Ailamaki,
//! Falsafi; ISCA 2009):
//!
//! * [`StridePrefetcher`] — the baseline system's stride prefetcher;
//! * [`TmsPrefetcher`] — Temporal Memory Streaming: replays recorded
//!   off-chip miss sequences from a circular buffer;
//! * [`SmsPrefetcher`] — Spatial Memory Streaming: code-correlated spatial
//!   footprints over 2KB regions, with this paper's 2-bit counters;
//! * [`StemsPrefetcher`] — the paper's contribution: a reconstructed
//!   *total* predicted miss order interleaving temporal trigger sequences
//!   with per-region spatial sequences via recorded deltas;
//! * [`NaiveHybrid`] — TMS and SMS side by side (the strawman of §5.5).
//!
//! All predictors plug into the trace-driven [`engine::CoverageSim`],
//! which models one node's L1/L2 hierarchy plus the streamed value buffer
//! and produces the covered / uncovered / overpredicted accounting of the
//! paper's Figure 9. The [`session`] module is the front door: a
//! [`Predictor`] registry, the [`AnyPrefetcher`] factory, and the
//! [`Session`] builder over the engine's batched delivery path.
//!
//! # Quickstart
//!
//! ```
//! use stems_core::{Predictor, PrefetchConfig, Session};
//! use stems_memsim::SystemConfig;
//! use stems_trace::Trace;
//!
//! // A toy trace: two passes over a scattered region sequence.
//! let mut trace = Trace::new();
//! for _ in 0..2 {
//!     for r in 0..64u64 {
//!         let base = (r * 7919 % 4096) * 2048 + (1 << 30);
//!         trace.read(0x400, base);
//!         trace.read(0x404, base + 5 * 64);
//!     }
//! }
//!
//! let sys = SystemConfig::small();
//! let cfg = PrefetchConfig::small();
//! let baseline = Session::builder(&sys).prefetch(&cfg).run(&trace);
//! let stems = Session::builder(&sys)
//!     .prefetch(&cfg)
//!     .predictor(Predictor::Stems)
//!     .run(&trace);
//! assert!(stems.covered > 0);
//! assert!(stems.uncovered < baseline.uncovered);
//! ```

pub mod config;
pub mod engine;
pub mod naive;
pub mod protocol;
pub mod session;
pub mod sms;
pub mod stems;
pub mod streams;
pub mod stride;
pub mod tms;
pub mod util;

pub use config::PrefetchConfig;
pub use engine::{Counters, CoverageSim, NullPrefetcher, Prefetcher};
pub use naive::NaiveHybrid;
pub use session::{AnyPrefetcher, Predictor, Session, SessionBuilder};
pub use sms::SmsPrefetcher;
pub use stems::StemsPrefetcher;
pub use stride::StridePrefetcher;
pub use tms::TmsPrefetcher;
