//! Temporal Memory Streaming (TMS, Wenisch et al., ISCA 2005; Section 2.2).
//!
//! TMS records the sequence of off-chip read misses in a large circular
//! buffer (the CMOB, ~2MB = 384K entries per processor, held in main
//! memory) with an index from address to most recent occurrence. On an
//! unpredicted off-chip miss, TMS locates the miss in the CMOB and streams
//! the blocks whose addresses follow, throttled by the stream-queue
//! machinery: one probe block until the stream is confirmed, then a
//! constant lookahead matched to consumption.

use stems_types::BlockAddr;

use crate::engine::{AccessEvent, PrefetchSink, Prefetcher, Satisfied, StreamTag};
use crate::streams::StreamQueues;
use crate::util::OrderBuffer;
use crate::PrefetchConfig;

/// Per-stream source state: the CMOB position streaming continues from.
#[derive(Clone, Copy, Debug)]
pub struct CmobCursor {
    next: u64,
}

/// The TMS prefetcher.
///
/// # Example
///
/// ```
/// use stems_core::{PrefetchConfig, TmsPrefetcher};
/// use stems_core::engine::Prefetcher;
///
/// let p = TmsPrefetcher::new(&PrefetchConfig::commercial());
/// assert_eq!(p.name(), "TMS");
/// ```
#[derive(Clone, Debug)]
pub struct TmsPrefetcher {
    cmob: OrderBuffer<BlockAddr>,
    queues: StreamQueues<CmobCursor>,
}

impl TmsPrefetcher {
    /// Creates a TMS prefetcher sized by `cfg` (384K-entry CMOB, 8 stream
    /// queues, lookahead 8 at paper defaults).
    pub fn new(cfg: &PrefetchConfig) -> Self {
        TmsPrefetcher {
            cmob: OrderBuffer::new(cfg.cmob_entries),
            queues: StreamQueues::new(cfg),
        }
    }

    /// Entries appended to the CMOB so far.
    pub fn recorded_misses(&self) -> u64 {
        self.cmob.appended()
    }

    /// Streams allocated so far.
    pub fn streams_started(&self) -> u64 {
        self.queues.streams_started()
    }
}

impl Prefetcher for TmsPrefetcher {
    fn name(&self) -> &str {
        "TMS"
    }

    fn on_access(&mut self, ev: &AccessEvent, sink: &mut dyn PrefetchSink) {
        if ev.is_write {
            return;
        }
        let TmsPrefetcher { cmob, queues } = self;
        match ev.satisfied {
            Satisfied::Svb(tag) => {
                // Prefetch hit: the block is part of the recorded miss
                // order (it would have missed), and its consumption
                // advances the stream.
                queues.on_consumed(tag, sink, &mut |cursor: &mut CmobCursor, n, out| {
                    let read = cmob.read_from_into(cursor.next, n, out);
                    cursor.next += read as u64;
                    read
                });
                cmob.append(ev.block);
            }
            Satisfied::OffChip => {
                // If an active stream already predicted this block just
                // ahead, catch it up instead of thrashing the queues.
                let caught = queues
                    .catch_up(ev.block, sink, &mut |cursor: &mut CmobCursor, n, out| {
                        let read = cmob.read_from_into(cursor.next, n, out);
                        cursor.next += read as u64;
                        read
                    })
                    .is_some();
                // Locate the previous occurrence *before* recording this
                // one, then start streaming from the following entry.
                let found = cmob.lookup(ev.block);
                cmob.append(ev.block);
                if !caught {
                    if let Some(pos) = found {
                        // CmobCursor is Copy: nothing to recycle from the
                        // retired source.
                        let _ = queues.start(
                            CmobCursor { next: pos + 1 },
                            sink,
                            &mut |cursor, n, out| {
                                let read = cmob.read_from_into(cursor.next, n, out);
                                cursor.next += read as u64;
                                read
                            },
                        );
                    }
                }
            }
            Satisfied::L1 | Satisfied::L2 => {}
        }
    }

    fn on_svb_evict(&mut self, _block: BlockAddr, tag: StreamTag) {
        self.queues.on_svb_evicted(tag);
    }

    /// TMS records and predicts only off-chip-class misses; `on_access`
    /// is a no-op for `Satisfied::L1`, so the engine's L1-hit fast path
    /// may skip delivery entirely.
    fn observes_l1_hits(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Counters, CoverageSim};
    use stems_memsim::SystemConfig;
    use stems_trace::Trace;

    /// A pointer-chase loop: the same sequence of scattered blocks,
    /// repeated. The second iteration onward should stream.
    fn looping_trace(seq_len: u64, iters: u64) -> Trace {
        let mut t = Trace::new();
        for _ in 0..iters {
            for i in 0..seq_len {
                // Scattered, conflict-heavy addresses out of L2 reach.
                let addr = (i * 7919 + 13) % 4096 * (1 << 20);
                t.read(0x400, addr);
            }
        }
        t
    }

    fn run(t: &Trace) -> Counters {
        let cfg = PrefetchConfig::small();
        CoverageSim::new(&SystemConfig::small(), &cfg, TmsPrefetcher::new(&cfg)).run(t)
    }

    #[test]
    fn repeated_miss_sequence_is_streamed() {
        let c = run(&looping_trace(128, 6));
        let total = c.covered + c.uncovered;
        assert!(
            c.coverage_vs(total) > 0.5,
            "TMS should cover a repeating sequence: {c:?}"
        );
    }

    #[test]
    fn fresh_addresses_are_never_predicted() {
        // A pure scan: every address new (compulsory) — TMS blind.
        let mut t = Trace::new();
        for i in 0..2048u64 {
            t.read(0x400, i * (1 << 20));
        }
        let c = run(&t);
        assert_eq!(c.covered, 0);
        assert_eq!(c.uncovered, 2048);
    }

    #[test]
    fn first_iteration_trains_second_streams() {
        let cfg = PrefetchConfig::small();
        let mut sim = CoverageSim::new(&SystemConfig::small(), &cfg, TmsPrefetcher::new(&cfg));
        let c1 = {
            for a in looping_trace(256, 1).iter() {
                sim.step(a);
            }
            *sim.counters()
        };
        assert_eq!(c1.covered, 0, "first pass has no history");
        for a in looping_trace(256, 1).iter() {
            sim.step(a);
        }
        let c2 = sim.finalize();
        assert!(c2.covered > 128, "second pass should stream: {:?}", c2);
        assert!(sim.prefetcher().streams_started() >= 1);
        assert!(sim.prefetcher().recorded_misses() >= 256);
    }

    #[test]
    fn writes_are_not_recorded() {
        let cfg = PrefetchConfig::small();
        let mut sim = CoverageSim::new(&SystemConfig::small(), &cfg, TmsPrefetcher::new(&cfg));
        let mut t = Trace::new();
        for i in 0..32u64 {
            t.write(0x400, i * (1 << 20));
        }
        sim.run(&t);
        assert_eq!(sim.prefetcher().recorded_misses(), 0);
    }
}
