//! Spatio-Temporal Memory Streaming (STeMS) — the paper's contribution
//! (Sections 3 and 4).
//!
//! STeMS records the *temporal* sequence of spatial-region triggers in the
//! [RMOB](rmob::Rmob) and the *spatial* access sequence of each region in
//! the [PST](pst::Pst), both annotated with reconstruction deltas. On an
//! unpredicted off-chip miss it locates the miss in the RMOB and
//! [reconstructs](recon::Reconstructor) a single predicted total miss
//! order, interleaving temporal and spatial predictions, which is streamed
//! through the shared stream-queue/SVB machinery. Regions that were never
//! seen before (compulsory misses) are covered by *spatial-only streams*
//! initiated at generation triggers whose prediction index was not already
//! used during reconstruction.

pub mod pst;
pub mod recon;
pub mod rmob;

pub use pst::Pst;
pub use recon::{ReconPool, ReconStats, Reconstructor};
pub use rmob::{Rmob, RmobEntry};

use std::collections::VecDeque;

use stems_types::{
    BlockAddr, BlockOffset, Delta, Pc, RegionAddr, SequenceArena, SpatialPattern, SpatialSequence,
};

use crate::engine::{AccessEvent, EvictKind, PrefetchSink, Prefetcher, Satisfied, StreamTag};
use crate::sms::spatial_index;
use crate::streams::StreamQueues;
use crate::util::LruTable;
use crate::PrefetchConfig;

/// One in-flight spatial generation (AGT entry). STeMS's AGT records the
/// ordered sequence with deltas, not just a footprint bit vector
/// (Section 4.1), and remembers the PST prediction made at the trigger so
/// spatially predictable misses can be filtered from the RMOB.
#[derive(Clone, Debug)]
struct ActiveGeneration {
    trigger_pc: Pc,
    trigger_offset: BlockOffset,
    /// Non-trigger elements in first-miss order, with deltas.
    seq: SpatialSequence,
    /// Global miss position of the most recent recorded element.
    last_miss_pos: u64,
    /// Blocks the PST predicted at trigger time (RMOB filter).
    predicted_at_trigger: SpatialPattern,
}

impl Default for ActiveGeneration {
    fn default() -> Self {
        ActiveGeneration {
            trigger_pc: Pc::new(0),
            trigger_offset: BlockOffset::new(0),
            seq: SpatialSequence::new(),
            last_miss_pos: 0,
            predicted_at_trigger: SpatialPattern::empty(),
        }
    }
}

/// Per-stream history source: an in-progress reconstruction, or the fixed
/// remainder of a spatial-only stream (delta information ignored,
/// Section 4.2).
#[derive(Clone, Debug)]
enum StemsSource {
    Recon(Box<Reconstructor>),
    Fixed(VecDeque<BlockAddr>),
}

/// Returns a retired stream source's allocations to the arena.
fn retire_source(pool: &mut ReconPool, source: Option<StemsSource>) {
    match source {
        Some(StemsSource::Recon(r)) => pool.put_recon(r),
        Some(StemsSource::Fixed(q)) => pool.put_deque(q),
        None => {}
    }
}

fn refill_source(
    src: &mut StemsSource,
    n: usize,
    rmob: &Rmob,
    pst: &mut Pst,
    recon_predicted: &mut LruTable<RegionAddr, u64>,
    recon_stats: &mut ReconStats,
    out: &mut VecDeque<BlockAddr>,
) -> usize {
    match src {
        StemsSource::Recon(r) => {
            let before = r.stats;
            let appended = r.produce_into(
                n,
                rmob,
                pst,
                |region, index| {
                    recon_predicted.insert(region, index);
                },
                out,
            );
            recon_stats.merge(&r.stats.diff(&before));
            appended
        }
        StemsSource::Fixed(q) => {
            let take = n.min(q.len());
            out.extend(q.drain(..take));
            take
        }
    }
}

/// The STeMS prefetcher.
///
/// # Example
///
/// ```
/// use stems_core::{PrefetchConfig, StemsPrefetcher};
/// use stems_core::engine::Prefetcher;
///
/// let p = StemsPrefetcher::new(&PrefetchConfig::commercial());
/// assert_eq!(p.name(), "STeMS");
/// ```
#[derive(Clone, Debug)]
pub struct StemsPrefetcher {
    agt: LruTable<RegionAddr, ActiveGeneration>,
    pst: Pst,
    rmob: Rmob,
    queues: StreamQueues<StemsSource>,
    /// Regions whose spatial sequence was used during reconstruction, with
    /// the index used — suppresses redundant spatial-only streams.
    recon_predicted: LruTable<RegionAddr, u64>,
    /// Arena recycling per-stream allocations (reconstruction windows,
    /// PST-expansion scratch, spatial-only deques) across stream starts.
    recon_pool: ReconPool,
    /// Arena recycling `SpatialSequence` entry buffers across AGT
    /// generation churn and PST training/eviction.
    seq_arena: SequenceArena,
    /// Global off-chip-class read misses seen (the miss-order clock).
    miss_count: u64,
    /// Miss position of the previous RMOB append.
    last_rmob_pos: Option<u64>,
    recon_stats: ReconStats,
    recon_entries: usize,
    recon_search: usize,
    spatial_only_enabled: bool,
    spatial_only_streams: u64,
    recon_streams: u64,
}

impl StemsPrefetcher {
    /// Creates a STeMS prefetcher sized by `cfg` (Section 4.3 defaults:
    /// 64-entry AGT, 16K-entry PST, 128K-entry RMOB, 256-slot
    /// reconstruction buffer, 8 stream queues).
    pub fn new(cfg: &PrefetchConfig) -> Self {
        StemsPrefetcher {
            agt: LruTable::new(cfg.agt_entries),
            pst: Pst::new(cfg.pst_entries),
            rmob: Rmob::new(cfg.rmob_entries),
            queues: StreamQueues::new(cfg),
            recon_predicted: LruTable::new(4096),
            recon_pool: ReconPool::new(),
            seq_arena: SequenceArena::new(),
            miss_count: 0,
            last_rmob_pos: None,
            recon_stats: ReconStats::default(),
            recon_entries: cfg.recon_entries,
            recon_search: cfg.recon_search,
            spatial_only_enabled: cfg.spatial_only_streams,
            spatial_only_streams: 0,
            recon_streams: 0,
        }
    }

    /// Aggregate reconstruction placement statistics (Section 4.3 claims
    /// >=99% placed within +-2, ~92% exactly).
    pub fn recon_stats(&self) -> ReconStats {
        self.recon_stats
    }

    /// Reconstructed (temporal) streams started.
    pub fn recon_streams(&self) -> u64 {
        self.recon_streams
    }

    /// Spatial-only streams started (compulsory-region coverage).
    pub fn spatial_only_streams(&self) -> u64 {
        self.spatial_only_streams
    }

    /// Entries appended to the RMOB.
    pub fn rmob_appends(&self) -> u64 {
        self.rmob.appended()
    }

    /// The pattern sequence table (diagnostics).
    pub fn pst(&self) -> &Pst {
        &self.pst
    }

    fn rmob_append(
        rmob: &mut Rmob,
        last_rmob_pos: &mut Option<u64>,
        block: BlockAddr,
        pc: Pc,
        pos: u64,
    ) {
        let gap = match *last_rmob_pos {
            None => 0,
            Some(last) => (pos - last).saturating_sub(1),
        };
        rmob.append(RmobEntry {
            block,
            pc,
            delta: Delta::from_gap(gap as usize),
        });
        *last_rmob_pos = Some(pos);
    }

    fn train_generation(pst: &mut Pst, arena: &mut SequenceArena, generation: ActiveGeneration) {
        pst.train_owned(
            spatial_index(generation.trigger_pc, generation.trigger_offset),
            generation.seq,
            arena,
        );
    }

    /// The arena recycling `SpatialSequence` buffers (churn diagnostics).
    pub fn sequence_arena(&self) -> &SequenceArena {
        &self.seq_arena
    }
}

impl Prefetcher for StemsPrefetcher {
    fn name(&self) -> &str {
        "STeMS"
    }

    fn on_access(&mut self, ev: &AccessEvent, sink: &mut dyn PrefetchSink) {
        if ev.is_write {
            return;
        }
        let Self {
            agt,
            pst,
            rmob,
            queues,
            recon_predicted,
            recon_pool,
            seq_arena,
            miss_count,
            last_rmob_pos,
            recon_stats,
            recon_entries,
            recon_search,
            spatial_only_enabled,
            spatial_only_streams,
            recon_streams,
        } = self;
        let block = ev.block;
        let region = block.region();
        let offset = block.offset_in_region();

        // If an active stream already predicted this block just ahead,
        // catch it up instead of flushing a queue for a fresh stream.
        let caught = ev.satisfied == Satisfied::OffChip
            && queues
                .catch_up(block, sink, &mut |src, n, out| {
                    refill_source(src, n, rmob, pst, recon_predicted, recon_stats, out)
                })
                .is_some();
        // Look up temporal history *before* this miss is recorded, so we
        // find the previous occurrence, not ourselves.
        let recon_from = if ev.satisfied == Satisfied::OffChip && !caught {
            rmob.lookup(block)
        } else {
            None
        };

        // 1. Prefetch-hit consumption advances its stream.
        if let Satisfied::Svb(tag) = ev.satisfied {
            queues.on_consumed(tag, sink, &mut |src, n, out| {
                refill_source(src, n, rmob, pst, recon_predicted, recon_stats, out)
            });
        }

        // 2. Miss-order bookkeeping: generations, deltas, RMOB appends.
        let mut spatial_only: Option<VecDeque<BlockAddr>> = None;
        if ev.satisfied.is_off_chip_class() {
            let pos = *miss_count;
            *miss_count += 1;
            // Single-hash AGT→PST handoff: one index probe covers both
            // the in-generation update and the trigger insert (this runs
            // on every off-chip-class miss).
            match agt.entry(region) {
                crate::util::Entry::Occupied(mut slot) => {
                    let generation = slot.get_mut();
                    if offset != generation.trigger_offset && !generation.seq.contains(offset) {
                        let gap = (pos - generation.last_miss_pos).saturating_sub(1);
                        generation.seq.push(offset, Delta::from_gap(gap as usize));
                        generation.last_miss_pos = pos;
                        if !generation.predicted_at_trigger.contains(offset) {
                            // A spatial miss: the spatial predictor did not
                            // cover it, so it belongs in the temporal sequence.
                            Self::rmob_append(rmob, last_rmob_pos, block, ev.pc, pos);
                        }
                    }
                }
                crate::util::Entry::Vacant(slot) => {
                    // Trigger: a new spatial generation begins. One PST
                    // probe serves both the trigger-time pattern and the
                    // spatial-only stream below (the old `lookup` +
                    // `peek` pair paid a second probe for the stream).
                    let index = spatial_index(ev.pc, offset);
                    let hit = pst.lookup_id(index);
                    let predicted_at_trigger = if hit != pst::PST_MISS {
                        pst.sequence_at(hit).predicted_pattern()
                    } else {
                        SpatialPattern::empty()
                    };
                    let generation = ActiveGeneration {
                        trigger_pc: ev.pc,
                        trigger_offset: offset,
                        // Recycled buffer: generation churn allocates nothing
                        // in steady state.
                        seq: seq_arena.take(),
                        last_miss_pos: pos,
                        predicted_at_trigger,
                    };
                    if let Some((_, victim)) = slot.insert(generation) {
                        Self::train_generation(pst, seq_arena, victim);
                    }
                    Self::rmob_append(rmob, last_rmob_pos, block, ev.pc, pos);
                    // Spatial-only stream (Section 4.2): if reconstruction
                    // did not already predict this region with this index,
                    // stream the PST sequence directly, ignoring deltas.
                    let recon_index = recon_predicted.get(&region).copied();
                    if *spatial_only_enabled
                        && recon_index != Some(index)
                        && !predicted_at_trigger.is_empty()
                        // Probe-free revalidation in place of the old
                        // `peek`: the victim training above may have
                        // displaced the entry (only possible at
                        // degenerate PST capacities), in which case the
                        // peek would have missed too.
                        && pst.entry_matches(hit, index)
                    {
                        let seq = pst.sequence_at(hit);
                        let mut addrs = recon_pool.take_deque();
                        addrs.extend(
                            seq.predicted()
                                .filter(|e| e.offset != offset)
                                .map(|e| region.block_at(e.offset)),
                        );
                        if addrs.is_empty() {
                            recon_pool.put_deque(addrs);
                        } else {
                            spatial_only = Some(addrs);
                        }
                    }
                }
            }
        }
        if let Some(addrs) = spatial_only {
            *spatial_only_streams += 1;
            let (_, retired) = queues.start(StemsSource::Fixed(addrs), sink, &mut |src, n, out| {
                refill_source(src, n, rmob, pst, recon_predicted, recon_stats, out)
            });
            retire_source(recon_pool, retired);
        }

        // 3. An unpredicted off-chip miss with temporal history starts a
        // reconstructed stream.
        if let Some(pos) = recon_from {
            *recon_streams += 1;
            let recon = recon_pool.take_recon(pos, *recon_entries, *recon_search);
            let (_, retired) = queues.start(StemsSource::Recon(recon), sink, &mut |src, n, out| {
                refill_source(src, n, rmob, pst, recon_predicted, recon_stats, out)
            });
            retire_source(recon_pool, retired);
        }
    }

    fn on_l1_evict(&mut self, block: BlockAddr, _kind: EvictKind) {
        let region = block.region();
        let offset = block.offset_in_region();
        let ends = self
            .agt
            .peek(&region)
            .is_some_and(|g| g.trigger_offset == offset || g.seq.contains(offset));
        if ends {
            if let Some(generation) = self.agt.remove(&region) {
                Self::train_generation(&mut self.pst, &mut self.seq_arena, generation);
            }
        }
    }

    fn on_svb_evict(&mut self, _block: BlockAddr, tag: StreamTag) {
        self.queues.on_svb_evicted(tag);
    }

    /// STeMS clocks its miss order and trains its generations on
    /// off-chip-class events only; `on_access` is a no-op for
    /// `Satisfied::L1` reads (and all writes), so the engine's L1-hit
    /// fast path may skip delivery entirely.
    fn observes_l1_hits(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Counters, CoverageSim};
    use stems_memsim::SystemConfig;
    use stems_trace::Trace;
    use stems_types::REGION_BYTES;

    fn run(t: &Trace) -> (Counters, StemsPrefetcher) {
        let cfg = PrefetchConfig::small();
        let mut sim = CoverageSim::new(&SystemConfig::small(), &cfg, StemsPrefetcher::new(&cfg));
        let c = sim.run(t);
        let p = sim.prefetcher().clone();
        (c, p)
    }

    /// A repeating traversal of scattered regions with a fixed
    /// within-region pattern — the paper's index-scan motivating example
    /// (Figure 2).
    fn scan_loop(regions: u64, iters: u64, offsets: &[u64]) -> Trace {
        let mut t = Trace::new();
        for _ in 0..iters {
            for r in 0..regions {
                // Scatter regions over a large footprint.
                let base = ((r * 2654435761) % (1 << 16)) * REGION_BYTES + (1 << 32);
                for (i, &o) in offsets.iter().enumerate() {
                    t.read(0x400 + i as u64, base + o * 64);
                }
            }
        }
        t
    }

    #[test]
    fn repeating_spatio_temporal_traversal_is_covered() {
        let (c, p) = run(&scan_loop(96, 6, &[0, 5, 9, 17]));
        let total = c.covered + c.uncovered;
        assert!(
            c.coverage_vs(total) > 0.5,
            "STeMS should cover a repeating region traversal: {c:?}"
        );
        assert!(p.recon_streams() > 0);
    }

    #[test]
    fn compulsory_regions_covered_by_spatial_only_streams() {
        // Fresh regions each visited once, shared layout: temporal history
        // can never match, spatial-only streams must provide coverage.
        let mut t = Trace::new();
        for r in 0..512u64 {
            let base = (1u64 << 33) + r * REGION_BYTES;
            for (i, &o) in [0u64, 4, 11, 23].iter().enumerate() {
                t.read(0x900 + i as u64, base + o * 64);
            }
        }
        let (c, p) = run(&t);
        assert!(p.spatial_only_streams() > 100, "{p:?}");
        let total = c.covered + c.uncovered;
        assert!(
            c.coverage_vs(total) > 0.4,
            "spatial-only streams should cover a scan: {c:?}"
        );
    }

    #[test]
    fn rmob_filters_spatially_predicted_misses() {
        // After training, only the trigger of each region generation
        // should be appended (the rest are spatially predicted).
        let (_, p) = run(&scan_loop(64, 6, &[0, 3, 7]));
        // 64 regions x 6 iterations x 3 misses = 1152 off-chip-class
        // misses at most; with spatial filtering the RMOB should hold far
        // fewer than all of them.
        assert!(
            p.rmob_appends() < 1152 / 2,
            "RMOB should omit spatially predicted misses: {} appends",
            p.rmob_appends()
        );
    }

    #[test]
    fn reconstruction_places_most_addresses_exactly() {
        let (_, p) = run(&scan_loop(128, 6, &[0, 4, 9]));
        let stats = p.recon_stats();
        assert!(stats.attempts() > 100, "stats = {stats:?}");
        assert!(
            stats.placed_fraction() > 0.9,
            "placement should be reliable: {stats:?}"
        );
    }

    #[test]
    fn pure_pointer_chase_behaves_like_tms() {
        // Single-block regions in a repeating scattered order: no spatial
        // component at all, coverage must come from temporal streaming.
        let (c, p) = run(&scan_loop(128, 6, &[7]));
        let total = c.covered + c.uncovered;
        assert!(c.coverage_vs(total) > 0.4, "{c:?}");
        assert_eq!(p.spatial_only_streams(), 0, "no spatial history exists");
    }

    /// Sustained generation/stream churn must not leak sequence buffers:
    /// every buffer the arena hands out is either live in the AGT, live
    /// in the PST, or back in the arena's bounded spare list.
    #[test]
    fn sequence_arena_stays_bounded_under_stream_churn() {
        let cfg = PrefetchConfig::small();
        let mut sim = CoverageSim::new(&SystemConfig::small(), &cfg, StemsPrefetcher::new(&cfg));
        // Far more regions than the 4-entry AGT and 64-entry PST hold,
        // revisited so streams start, get victimized, and restart.
        let t = scan_loop(256, 8, &[0, 5, 9, 17]);
        sim.run(&t);
        let p = sim.prefetcher();
        let arena = p.sequence_arena();
        assert!(
            arena.taken() > 1000,
            "churn too low to be meaningful: {arena:?}"
        );
        let resident = (cfg.agt_entries + cfg.pst_entries) as u64;
        assert!(
            arena.outstanding() <= resident,
            "live sequences exceed AGT+PST residency: {} > {resident} ({arena:?})",
            arena.outstanding(),
        );
        assert!(
            arena.pooled() <= 2 * (cfg.agt_entries + cfg.pst_entries),
            "spare list unbounded: {arena:?}"
        );
    }

    #[test]
    fn writes_do_not_clock_the_miss_order() {
        let cfg = PrefetchConfig::small();
        let mut sim = CoverageSim::new(&SystemConfig::small(), &cfg, StemsPrefetcher::new(&cfg));
        let mut t = Trace::new();
        for i in 0..64u64 {
            t.write(0x1, (1 << 33) + i * (1 << 21));
        }
        sim.run(&t);
        assert_eq!(sim.prefetcher().rmob_appends(), 0);
        assert_eq!(sim.prefetcher().recon_streams(), 0);
    }
}
