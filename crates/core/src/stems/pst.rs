//! The pattern sequence table (PST).
//!
//! STeMS's spatial history (Section 4.1/4.3): like the SMS PHT it is
//! indexed by (trigger PC, trigger offset), but instead of a bit vector
//! each entry stores the region's access *sequence* — block offsets in
//! first-access order, each with an 8-bit reconstruction delta and a 2-bit
//! saturating counter. 16K entries x 40B puts it in main memory in
//! hardware; functionally it is a bounded LRU map.
//!
//! PR 5 profiling pinned PST probes during reconstruction expansion as
//! STeMS's last table-lookup bottleneck (~8–12 placement attempts per
//! access on em3d, each expansion consulting the table), so [`Pst`] is a
//! purpose-built open-addressed table rather than a general
//! [`LruTable`](crate::util::LruTable):
//!
//! * **spatial-index-keyed slots** — power-of-two probe array keyed by
//!   one [`fx_hash_u64`] multiply, linear probing, with occupancy and
//!   tombstone state folded into the slot's id field as sentinels
//!   (`EMPTY`/`TOMBSTONE`) and the key stored alongside, so a probe
//!   step is one 16-byte slot load with no dependent fetch. (Two
//!   earlier cuts measured slower and were replaced: separate
//!   occupancy/tombstone [`FlatBitmap`](stems_types::FlatBitmap) planes
//!   cost three loads per step — the bitmap helper now serves the
//!   reconstruction window's occupancy instead — and a key side array
//!   indexed by entry id serialized every step on a
//!   `slot → id → key` chase.);
//! * **dense side-array recency** — entries live in dense parallel
//!   arrays (`keys` / `values` / back-pointing `slot_of`) with the PR 5
//!   packed `u32`-pair recency links, so an LRU eviction clears its slot
//!   through the back-pointer in O(1) without rehashing and a recency
//!   splice never drags a fat `SpatialSequence` cache line;
//! * **single-probe trigger resolution** — the dense ids are public
//!   currency: [`Pst::lookup_id`] + [`Pst::sequence_at`] +
//!   [`Pst::entry_matches`] let the engine's generation-trigger path
//!   read the predicted pattern *and* stream the stored sequence off one
//!   probe, where the old surface forced a `lookup` followed by a
//!   re-probing `peek`;
//! * **batched region lookups** — [`Pst::lookup_regions`] resolves a
//!   whole batch of spatial indices in one pass, hashing each candidate
//!   exactly once and software-prefetching the next candidate's slot
//!   line while the current one probes. Batched probes deliberately skip
//!   the recency refresh: the caller applies [`Pst::touch`] when (and
//!   only when) an entry is actually expanded, which keeps the LRU
//!   eviction order — and therefore every simulation counter —
//!   byte-identical to per-expansion [`Pst::lookup`] calls. (Wiring this
//!   into the Reconstructor's expansion loop measured as an end-to-end
//!   loss — the engine's `refill_chunk`-sized drains keep batches too
//!   narrow to amortize the id bookkeeping — so per the house rules the
//!   expansion path stayed scalar; see
//!   [`Reconstructor::expand_one`](crate::stems::recon::Reconstructor::expand_one).)
//!
//! The previous `LruTable`-backed implementation is retained as
//! [`oracle::LruPst`] and pinned against this one by the property suite
//! in `tests/pst_differential.rs` (hit/miss results, victim order, arena
//! accounting), the way PR 5 kept
//! [`recon::oracle::DequeReconstructor`](crate::stems::recon::oracle).

use stems_types::{fx_hash_u64, SequenceArena, SpatialSequence};

const NIL: u32 = u32::MAX;

/// Sentinel returned by [`Pst::lookup_regions`] for an index with no
/// resident sequence.
pub const PST_MISS: u32 = u32::MAX;

/// Slot-word sentinel: this slot has never held an entry — a probe chain
/// ends here.
const EMPTY: u32 = u32::MAX;

/// Slot-word sentinel: this slot was vacated by an eviction — probe
/// chains continue through it, inserts may reclaim it.
const TOMBSTONE: u32 = u32::MAX - 1;

/// Packed recency-list node (PR 5 style): dense, so an unlink/push-front
/// splice lands in one or two cache lines away from the fat values.
#[derive(Clone, Copy, Debug)]
struct Link {
    prev: u32,
    next: u32,
}

/// One physical slot: the dense entry id (or [`EMPTY`]/[`TOMBSTONE`])
/// *with the key stored alongside*. Keeping the key in the slot makes a
/// probe step one 16-byte load with no dependent fetch — an earlier cut
/// kept keys in a dense side array, and the serialized
/// `slot → id → keys[id]` chase per step measurably lost to the
/// hash-map backing on reconstruction-heavy workloads (em3d).
#[derive(Clone, Copy, Debug)]
struct Slot {
    id: u32,
    /// Valid only when `id < TOMBSTONE`.
    key: u64,
}

/// Result of probing the slot array for a key.
enum Probe {
    /// Resident: dense entry id.
    Hit { id: u32 },
    /// Absent: the slot an insert should use — the first tombstone on
    /// the probe path if any, else the never-used slot that ended it.
    Miss { insert_slot: usize },
}

/// The bounded PST: an open-addressed, LRU-evicting map from spatial
/// index to [`SpatialSequence`].
#[derive(Clone, Debug)]
pub struct Pst {
    /// Physical slot array: id + occupancy state + key in one 16-byte
    /// unit, so a probe step loads exactly one slot (and usually one
    /// cache line) before deciding hit/continue/stop.
    slot_entry: Vec<Slot>,
    /// `64 - log2(slots)`: the slot is the hash's top bits, where the
    /// Fx multiply concentrates the mixing.
    hash_shift: u32,
    /// `slot_entry.len() - 1` for the wrap mask.
    slot_mask: usize,
    /// Set tombstone bits (rebuild trigger).
    tombstones: usize,
    /// Physical-size ceiling: `(2 * capacity).next_power_of_two()`, so a
    /// full table still probes at load factor <= 1/2. Growth toward it
    /// is lazy doubling — most sessions never fill the paper-size PST,
    /// and eager full pre-sizing measured as a net loss in PR 5.
    max_physical: usize,
    /// Dense entry storage, parallel by id.
    keys: Vec<u64>,
    values: Vec<SpatialSequence>,
    /// Dense id -> physical slot (back-pointer for O(1) eviction).
    slot_of: Vec<u32>,
    links: Vec<Link>,
    free: Vec<u32>,
    head: u32, // MRU
    tail: u32, // LRU
    len: usize,
    capacity: usize,
    trainings: u64,
    /// Slot-array probes issued (one per key resolved, not per probe
    /// step): the counter behind the `pst_probes_per_access` diagnostic.
    /// A `Cell` so read-only probes (`peek`, `lookup_regions`) count too.
    probes: std::cell::Cell<u64>,
}

impl Pst {
    /// Creates a PST with `entries` capacity (16K in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "Pst capacity must be nonzero");
        assert!(
            entries < TOMBSTONE as usize / 2,
            "capacity exceeds the u32 entry range"
        );
        let max_physical = (2 * entries).next_power_of_two();
        let physical = max_physical.min(64);
        Pst {
            slot_entry: vec![Slot { id: EMPTY, key: 0 }; physical],
            hash_shift: 64 - physical.trailing_zeros(),
            slot_mask: physical - 1,
            tombstones: 0,
            max_physical,
            keys: Vec::new(),
            values: Vec::new(),
            slot_of: Vec::new(),
            links: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
            capacity: entries,
            trainings: 0,
            probes: std::cell::Cell::new(0),
        }
    }

    #[inline]
    fn home_slot(&self, key: u64) -> usize {
        (fx_hash_u64(key) >> self.hash_shift) as usize
    }

    /// Linear probe from `slot` (the key's home slot). The loop is
    /// bounded by the physical size: occupancy never exceeds half the
    /// slots, so a full wrap — possible only in degenerate tiny tables
    /// where tombstones briefly fill the rest — still terminates with a
    /// reusable tombstone in hand.
    #[inline]
    fn probe_from(&self, mut slot: usize, key: u64) -> Probe {
        self.probes.set(self.probes.get() + 1);
        // Deriving the wrap mask from the slice length (physical size is
        // always a power of two) lets the compiler prove `slot & mask`
        // in-bounds and drop the per-step bounds check — measurable on
        // the `pst_probe` microbench, where this loop is everything.
        let entries = self.slot_entry.as_slice();
        let mask = entries.len() - 1;
        let mut insert_slot = usize::MAX;
        for _ in 0..entries.len() {
            let Slot { id, key: slot_key } = entries[slot & mask];
            if id < TOMBSTONE {
                if slot_key == key {
                    return Probe::Hit { id };
                }
            } else if id == EMPTY {
                return Probe::Miss {
                    insert_slot: if insert_slot != usize::MAX {
                        insert_slot
                    } else {
                        slot
                    },
                };
            } else if insert_slot == usize::MAX {
                insert_slot = slot;
            }
            slot = (slot + 1) & mask;
        }
        debug_assert_ne!(insert_slot, usize::MAX, "full wrap with no reusable slot");
        Probe::Miss { insert_slot }
    }

    #[inline]
    fn probe(&self, key: u64) -> Probe {
        self.probe_from(self.home_slot(key), key)
    }

    /// Hints the prefetcher at `slot`'s line of the slot array.
    #[inline]
    fn prefetch_slot(&self, slot: usize) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `slot` is masked into `slot_entry`'s bounds; a
        // prefetch of a valid address has no architectural effect.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(self.slot_entry.as_ptr().add(slot).cast::<i8>(), _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = slot;
    }

    fn unlink(&mut self, i: u32) {
        let Link { prev, next } = self.links[i as usize];
        if prev != NIL {
            self.links[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.links[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: u32) {
        self.links[i as usize] = Link {
            prev: NIL,
            next: self.head,
        };
        if self.head != NIL {
            self.links[self.head as usize].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Refreshes entry `id` to most-recently-used — exactly the recency
    /// effect a [`Pst::lookup`] hit has. Batched callers apply it at
    /// expansion time so deferred probes leave the LRU order (and the
    /// eviction-driven counters) identical to per-expansion lookups.
    ///
    /// `id` must come from [`Pst::lookup_regions`] with no intervening
    /// training (training can evict entries and recycle their ids).
    #[inline]
    pub fn touch(&mut self, id: u32) {
        debug_assert!(
            (self.slot_of[id as usize] as usize) <= self.slot_mask
                && self.slot_entry[self.slot_of[id as usize] as usize].id == id,
            "touch of a dead entry id"
        );
        if self.head != id {
            self.unlink(id);
            self.push_front(id);
        }
    }

    /// The sequence stored under a dense entry id from
    /// [`Pst::lookup_regions`] (same validity rule as [`Pst::touch`]).
    #[inline]
    pub fn sequence_at(&self, id: u32) -> &SpatialSequence {
        &self.values[id as usize]
    }

    /// The stored sequence for `index`, refreshing recency. Inlined into
    /// the reconstruction expansion loop (its hottest caller).
    #[inline]
    pub fn lookup(&mut self, index: u64) -> Option<&SpatialSequence> {
        match self.probe(index) {
            Probe::Hit { id } => {
                self.touch(id);
                Some(&self.values[id as usize])
            }
            Probe::Miss { .. } => None,
        }
    }

    /// Single-probe [`Pst::lookup`] returning the dense entry id
    /// ([`PST_MISS`] on a miss) instead of the sequence, with the same
    /// recency refresh. The trigger path pairs it with
    /// [`Pst::sequence_at`] and [`Pst::entry_matches`], so reading the
    /// predicted pattern *and* streaming the sequence costs one probe
    /// where `lookup` + `peek` cost two.
    #[inline]
    pub fn lookup_id(&mut self, index: u64) -> u32 {
        match self.probe(index) {
            Probe::Hit { id } => {
                self.touch(id);
                id
            }
            Probe::Miss { .. } => PST_MISS,
        }
    }

    /// O(1) revalidation (no probe) that dense id `id` still holds
    /// `index`: eviction kills the id (its back-pointer is cleared),
    /// free-list reuse rebinds it to a different key, and a retrain of
    /// the same index keeps both. For an id from this access's
    /// [`Pst::lookup_id`] hit — MRU, so a single intervening training
    /// can only displace it at capacity 1, necessarily with a different
    /// key — this is `true` exactly when a fresh [`Pst::peek`] of
    /// `index` would hit.
    #[inline]
    pub fn entry_matches(&self, id: u32, index: u64) -> bool {
        id != PST_MISS && self.slot_of[id as usize] != NIL && self.keys[id as usize] == index
    }

    /// The stored sequence without a recency update.
    pub fn peek(&self, index: u64) -> Option<&SpatialSequence> {
        match self.probe(index) {
            Probe::Hit { id } => Some(&self.values[id as usize]),
            Probe::Miss { .. } => None,
        }
    }

    /// Resolves a batch of spatial indices to dense entry ids
    /// ([`PST_MISS`] where absent), one hash per index, prefetching the
    /// next candidate's slot line while the current one probes.
    ///
    /// No recency is refreshed: the caller applies [`Pst::touch`] per id
    /// at the moment the old per-expansion [`Pst::lookup`] would have
    /// run, so LRU state evolves identically. Returned ids stay valid
    /// only until the next training call — batch within one
    /// reconstruction drain, never across.
    pub fn lookup_regions(&self, indices: &[u64], out: &mut Vec<u32>) {
        out.clear();
        let Some(&first) = indices.first() else {
            return;
        };
        let mut next_slot = self.home_slot(first);
        self.prefetch_slot(next_slot);
        for i in 0..indices.len() {
            let slot = next_slot;
            if let Some(&upcoming) = indices.get(i + 1) {
                next_slot = self.home_slot(upcoming);
                self.prefetch_slot(next_slot);
            }
            out.push(match self.probe_from(slot, indices[i]) {
                Probe::Hit { id } => id,
                Probe::Miss { .. } => PST_MISS,
            });
        }
    }

    /// Doubles toward `max_physical` when an insert would push load past
    /// 1/2, and rebuilds in place when tombstones reach a quarter of the
    /// slots (bounding probe chains). Called before any probe that may
    /// insert, since both invalidate probed slot positions.
    fn prepare_for_insert(&mut self) {
        let physical = self.slot_entry.len();
        if self.len + 1 > physical / 2 && physical < self.max_physical {
            let mut grown = physical;
            while self.len + 1 > grown / 2 && grown < self.max_physical {
                grown *= 2;
            }
            self.rebuild(grown);
        } else if self.tombstones * 4 >= physical {
            self.rebuild(physical);
        }
    }

    /// Rehashes every live entry into a clean slot array of
    /// `new_physical` slots (tombstones drop; probe chains reset).
    fn rebuild(&mut self, new_physical: usize) {
        self.slot_entry.clear();
        self.slot_entry
            .resize(new_physical, Slot { id: EMPTY, key: 0 });
        self.hash_shift = 64 - new_physical.trailing_zeros();
        self.slot_mask = new_physical - 1;
        self.tombstones = 0;
        let mut id = self.head;
        while id != NIL {
            let key = self.keys[id as usize];
            let mut slot = self.home_slot(key);
            while self.slot_entry[slot].id != EMPTY {
                slot = (slot + 1) & self.slot_mask;
            }
            self.slot_entry[slot] = Slot { id, key };
            self.slot_of[id as usize] = slot as u32;
            id = self.links[id as usize].next;
        }
    }

    /// Inserts a key known absent at its probed `slot`, evicting the LRU
    /// entry first when at capacity. Returns the victim's sequence for
    /// the caller to recycle (or drop).
    fn insert_at(
        &mut self,
        slot: usize,
        key: u64,
        value: SpatialSequence,
    ) -> Option<SpatialSequence> {
        let mut victim = None;
        if self.len == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            self.slot_entry[self.slot_of[lru as usize] as usize].id = TOMBSTONE;
            // Break the dense id: `entry_matches` must see an evicted id
            // as dead even before the free list recycles it.
            self.slot_of[lru as usize] = NIL;
            self.tombstones += 1;
            self.free.push(lru);
            self.len -= 1;
            victim = Some(std::mem::take(&mut self.values[lru as usize]));
        }
        if self.slot_entry[slot].id == TOMBSTONE {
            self.tombstones -= 1;
        }
        let id = match self.free.pop() {
            Some(id) => {
                self.keys[id as usize] = key;
                self.values[id as usize] = value;
                self.slot_of[id as usize] = slot as u32;
                id
            }
            None => {
                let id = self.keys.len() as u32;
                self.keys.push(key);
                self.values.push(value);
                self.slot_of.push(slot as u32);
                self.links.push(Link {
                    prev: NIL,
                    next: NIL,
                });
                id
            }
        };
        self.slot_entry[slot] = Slot { id, key };
        self.push_front(id);
        self.len += 1;
        victim
    }

    /// Trains `index` with the sequence observed over a completed
    /// generation (empty observations are ignored).
    pub fn train(&mut self, index: u64, observed: &SpatialSequence) {
        if observed.is_empty() {
            return;
        }
        self.trainings += 1;
        self.prepare_for_insert();
        match self.probe(index) {
            Probe::Hit { id } => {
                self.touch(id);
                self.values[id as usize].retrain(observed);
            }
            Probe::Miss { insert_slot } => {
                self.insert_at(insert_slot, index, observed.clone());
            }
        }
    }

    /// [`Pst::train`] taking ownership of the observed sequence and
    /// recycling every buffer through `arena`: the observed buffer
    /// returns to the arena after a retrain (or moves into the table on
    /// first insert, uncloned), the retrain merge runs in arena scratch,
    /// and an LRU-evicted victim's buffer is reclaimed too. Table state
    /// after the call is identical to [`Pst::train`].
    pub fn train_owned(
        &mut self,
        index: u64,
        observed: SpatialSequence,
        arena: &mut SequenceArena,
    ) {
        if observed.is_empty() {
            arena.put(observed);
            return;
        }
        self.trainings += 1;
        self.prepare_for_insert();
        // Single-probe train: the AGT→PST handoff runs on every retired
        // generation, and both the retrain and insert cases resolve the
        // slot array exactly once.
        match self.probe(index) {
            Probe::Hit { id } => {
                self.touch(id);
                self.values[id as usize].retrain_in(&observed, arena);
                arena.put(observed);
            }
            Probe::Miss { insert_slot } => {
                if let Some(victim) = self.insert_at(insert_slot, index, observed) {
                    arena.put(victim);
                }
            }
        }
    }

    /// Completed generations trained into the table.
    pub fn trainings(&self) -> u64 {
        self.trainings
    }

    /// Total key probes issued against the slot array (lookups, peeks,
    /// trainings, and each batched index), regardless of probe-chain
    /// length. Divided by simulated accesses this is the
    /// `pst_probes_per_access` diagnostic the bench harness reports.
    pub fn probes(&self) -> u64 {
        self.probes.get()
    }

    /// Number of resident sequences.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident spatial indices from most- to least-recently-used.
    /// Diagnostics for the differential suites (victim order is the
    /// suffix of this list); not part of the prediction API.
    #[doc(hidden)]
    pub fn recency_snapshot(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        let mut id = self.head;
        while id != NIL {
            out.push(self.keys[id as usize]);
            id = self.links[id as usize].next;
        }
        out
    }

    /// Physical slot count (diagnostics: growth stays bounded by
    /// `2 * capacity` rounded up to a power of two).
    #[doc(hidden)]
    pub fn physical_slots(&self) -> usize {
        self.slot_entry.len()
    }
}

/// The pre-open-addressing PST, retained verbatim as a differential
/// oracle: a general-purpose [`LruTable`](crate::util::LruTable) with an
/// FxHash map index. The property suite in `tests/pst_differential.rs`
/// (and the `pst_probe` microbench in `crates/bench`) drives identical
/// train/lookup streams through this and [`Pst`] and requires hit/miss
/// results, recency/victim order, and arena-buffer accounting to match
/// exactly. Not part of the public API; hidden rather than
/// `#[cfg(test)]` only so the benchmark crate can measure it.
#[doc(hidden)]
pub mod oracle {
    use stems_types::{SequenceArena, SpatialSequence};

    use crate::util::{Entry, LruTable};

    /// See [the module docs](self): the retained `LruTable`-backed PST,
    /// mirroring [`Pst`](super::Pst)'s training and lookup surface.
    #[derive(Clone, Debug)]
    pub struct LruPst {
        table: LruTable<u64, SpatialSequence>,
        trainings: u64,
    }

    impl LruPst {
        /// Mirrors [`Pst::new`](super::Pst::new).
        pub fn new(entries: usize) -> Self {
            LruPst {
                table: LruTable::new(entries),
                trainings: 0,
            }
        }

        /// Mirrors [`Pst::lookup`](super::Pst::lookup).
        pub fn lookup(&mut self, index: u64) -> Option<&SpatialSequence> {
            self.table.get(&index).map(|s| &*s)
        }

        /// Mirrors [`Pst::peek`](super::Pst::peek).
        pub fn peek(&self, index: u64) -> Option<&SpatialSequence> {
            self.table.peek(&index)
        }

        /// Mirrors [`Pst::train`](super::Pst::train).
        pub fn train(&mut self, index: u64, observed: &SpatialSequence) {
            if observed.is_empty() {
                return;
            }
            self.trainings += 1;
            match self.table.entry(index) {
                Entry::Occupied(mut stored) => stored.get_mut().retrain(observed),
                Entry::Vacant(slot) => {
                    slot.insert(observed.clone());
                }
            }
        }

        /// Mirrors [`Pst::train_owned`](super::Pst::train_owned).
        pub fn train_owned(
            &mut self,
            index: u64,
            observed: SpatialSequence,
            arena: &mut SequenceArena,
        ) {
            if observed.is_empty() {
                arena.put(observed);
                return;
            }
            self.trainings += 1;
            match self.table.entry(index) {
                Entry::Occupied(mut stored) => {
                    stored.get_mut().retrain_in(&observed, arena);
                    arena.put(observed);
                }
                Entry::Vacant(slot) => {
                    if let Some((_, victim)) = slot.insert(observed) {
                        arena.put(victim);
                    }
                }
            }
        }

        /// Mirrors [`Pst::trainings`](super::Pst::trainings).
        pub fn trainings(&self) -> u64 {
            self.trainings
        }

        /// Mirrors [`Pst::len`](super::Pst::len).
        pub fn len(&self) -> usize {
            self.table.len()
        }

        /// Mirrors [`Pst::is_empty`](super::Pst::is_empty).
        pub fn is_empty(&self) -> bool {
            self.table.is_empty()
        }

        /// Mirrors [`Pst::recency_snapshot`](super::Pst::recency_snapshot).
        pub fn recency_snapshot(&self) -> Vec<u64> {
            self.table.iter().map(|(&k, _)| k).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_types::{BlockOffset, Delta};

    fn seq(items: &[(u8, u8)]) -> SpatialSequence {
        items
            .iter()
            .map(|&(o, d)| (BlockOffset::new(o), Delta::from(d)))
            .collect()
    }

    #[test]
    fn lookup_after_train() {
        let mut pst = Pst::new(4);
        pst.train(1, &seq(&[(4, 0), (2, 1)]));
        let s = pst.lookup(1).unwrap();
        let order: Vec<u8> = s.iter().map(|e| e.offset.get()).collect();
        assert_eq!(order, [4, 2]);
        assert!(pst.lookup(2).is_none());
    }

    #[test]
    fn retrain_merges() {
        let mut pst = Pst::new(4);
        pst.train(1, &seq(&[(4, 0), (2, 1)]));
        pst.train(1, &seq(&[(4, 3)]));
        let s = pst.peek(1).unwrap();
        assert_eq!(s.get(BlockOffset::new(4)).unwrap().delta.get(), 3);
        assert_eq!(s.get(BlockOffset::new(4)).unwrap().counter.get(), 2);
        assert!(s.get(BlockOffset::new(2)).is_none(), "decayed to zero");
        assert_eq!(pst.trainings(), 2);
    }

    #[test]
    fn empty_observation_ignored() {
        let mut pst = Pst::new(4);
        pst.train(9, &SpatialSequence::new());
        assert!(pst.is_empty());
        assert_eq!(pst.trainings(), 0);
    }

    #[test]
    fn capacity_bounded() {
        let mut pst = Pst::new(2);
        pst.train(1, &seq(&[(1, 0)]));
        pst.train(2, &seq(&[(2, 0)]));
        pst.train(3, &seq(&[(3, 0)]));
        assert_eq!(pst.len(), 2);
        assert!(pst.peek(1).is_none());
    }

    #[test]
    fn batched_lookup_matches_scalar_and_defers_recency() {
        let mut pst = Pst::new(4);
        pst.train(10, &seq(&[(1, 0)]));
        pst.train(20, &seq(&[(2, 0)]));
        pst.train(30, &seq(&[(3, 0)]));
        let order_before = pst.recency_snapshot();
        let mut ids = Vec::new();
        pst.lookup_regions(&[20, 99, 10, 20], &mut ids);
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[1], PST_MISS);
        assert_eq!(ids[0], ids[3], "same index resolves to the same id");
        // Batched probing alone must not move anything.
        assert_eq!(pst.recency_snapshot(), order_before);
        // Resolved ids read the same sequences peek would.
        assert_eq!(pst.sequence_at(ids[0]), pst.peek(20).unwrap());
        assert_eq!(pst.sequence_at(ids[2]), pst.peek(10).unwrap());
        // Touching in expansion order reproduces lookup's recency walk.
        let mut shadow = Pst::new(4);
        shadow.train(10, &seq(&[(1, 0)]));
        shadow.train(20, &seq(&[(2, 0)]));
        shadow.train(30, &seq(&[(3, 0)]));
        for (&index, &id) in [20u64, 99, 10, 20].iter().zip(&ids) {
            if id != PST_MISS {
                pst.touch(id);
            }
            shadow.lookup(index);
        }
        assert_eq!(pst.recency_snapshot(), shadow.recency_snapshot());
    }

    #[test]
    fn growth_stays_bounded_and_lookups_survive_churn() {
        let mut pst = Pst::new(1000);
        for k in 0..5000u64 {
            pst.train(k, &seq(&[((k % 32) as u8, 0)]));
        }
        assert_eq!(pst.len(), 1000);
        assert_eq!(pst.physical_slots(), 2048, "ceiling is 2*capacity pow2");
        // The newest 1000 keys are resident, the rest evicted.
        for k in 4000..5000u64 {
            let s = pst.peek(k).unwrap();
            assert!(s.contains(BlockOffset::new((k % 32) as u8)));
        }
        assert!(pst.peek(3999).is_none());
    }

    #[test]
    fn tombstone_churn_at_tiny_capacity_keeps_probes_correct() {
        // Capacity 1 exercises the degenerate occupied+tombstone == slots
        // window between an eviction and the next rebuild.
        let mut pst = Pst::new(1);
        for k in 0..200u64 {
            pst.train(k, &seq(&[(1, 0)]));
            assert_eq!(pst.len(), 1);
            assert!(pst.peek(k).is_some());
            assert!(pst.peek(k + 1).is_none());
            assert!(pst.peek(k.wrapping_sub(1)).is_none());
        }
    }

    #[test]
    fn dense_id_dies_on_eviction_and_survives_retrain() {
        let mut pst = Pst::new(1);
        pst.train(7, &seq(&[(1, 0)]));
        let id = pst.lookup_id(7);
        assert_ne!(id, PST_MISS);
        assert!(pst.entry_matches(id, 7));
        assert!(!pst.entry_matches(id, 8), "wrong key must not revalidate");
        // Retraining the same index keeps the entry (and its id) alive.
        pst.train(7, &seq(&[(1, 2)]));
        assert!(pst.entry_matches(id, 7));
        // Training another key at capacity 1 evicts it; the recycled id
        // must read as dead for the old key even though it is live again
        // under the new one.
        pst.train(8, &seq(&[(2, 0)]));
        assert!(!pst.entry_matches(id, 7));
        assert_eq!(pst.lookup_id(7), PST_MISS);
    }

    #[test]
    fn probes_count_every_key_resolution() {
        let mut pst = Pst::new(4);
        let start = pst.probes();
        pst.train(1, &seq(&[(1, 0)]));
        pst.lookup(1);
        pst.peek(2);
        pst.lookup_id(1);
        let mut ids = Vec::new();
        pst.lookup_regions(&[1, 2, 3], &mut ids);
        // entry_matches is probe-free.
        assert!(pst.entry_matches(ids[0], 1));
        assert_eq!(pst.probes() - start, 1 + 1 + 1 + 1 + 3);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = Pst::new(0);
    }
}
