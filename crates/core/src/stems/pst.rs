//! The pattern sequence table (PST).
//!
//! STeMS's spatial history (Section 4.1/4.3): like the SMS PHT it is
//! indexed by (trigger PC, trigger offset), but instead of a bit vector
//! each entry stores the region's access *sequence* — block offsets in
//! first-access order, each with an 8-bit reconstruction delta and a 2-bit
//! saturating counter. 16K entries x 40B puts it in main memory in
//! hardware; functionally it is a bounded LRU map.

use stems_types::{SequenceArena, SpatialSequence};

use crate::util::{Entry, LruTable};

/// The bounded PST.
#[derive(Clone, Debug)]
pub struct Pst {
    table: LruTable<u64, SpatialSequence>,
    trainings: u64,
}

impl Pst {
    /// Creates a PST with `entries` capacity (16K in the paper).
    pub fn new(entries: usize) -> Self {
        Pst {
            table: LruTable::new(entries),
            trainings: 0,
        }
    }

    /// The stored sequence for `index`, refreshing recency. Inlined into
    /// the reconstruction expansion loop (its hottest caller).
    #[inline]
    pub fn lookup(&mut self, index: u64) -> Option<&SpatialSequence> {
        self.table.get(&index).map(|s| &*s)
    }

    /// The stored sequence without a recency update.
    pub fn peek(&self, index: u64) -> Option<&SpatialSequence> {
        self.table.peek(&index)
    }

    /// Trains `index` with the sequence observed over a completed
    /// generation (empty observations are ignored).
    pub fn train(&mut self, index: u64, observed: &SpatialSequence) {
        if observed.is_empty() {
            return;
        }
        self.trainings += 1;
        match self.table.entry(index) {
            Entry::Occupied(mut stored) => stored.get_mut().retrain(observed),
            Entry::Vacant(slot) => {
                slot.insert(observed.clone());
            }
        }
    }

    /// [`Pst::train`] taking ownership of the observed sequence and
    /// recycling every buffer through `arena`: the observed buffer
    /// returns to the arena after a retrain (or moves into the table on
    /// first insert, uncloned), the retrain merge runs in arena scratch,
    /// and an LRU-evicted victim's buffer is reclaimed too. Table state
    /// after the call is identical to [`Pst::train`].
    pub fn train_owned(
        &mut self,
        index: u64,
        observed: SpatialSequence,
        arena: &mut SequenceArena,
    ) {
        if observed.is_empty() {
            arena.put(observed);
            return;
        }
        self.trainings += 1;
        // Single-hash train: the AGT→PST handoff runs on every retired
        // generation, and the common retrain case now probes the index
        // exactly once.
        match self.table.entry(index) {
            Entry::Occupied(mut stored) => {
                stored.get_mut().retrain_in(&observed, arena);
                arena.put(observed);
            }
            Entry::Vacant(slot) => {
                if let Some((_, victim)) = slot.insert(observed) {
                    arena.put(victim);
                }
            }
        }
    }

    /// Completed generations trained into the table.
    pub fn trainings(&self) -> u64 {
        self.trainings
    }

    /// Number of resident sequences.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_types::{BlockOffset, Delta};

    fn seq(items: &[(u8, u8)]) -> SpatialSequence {
        items
            .iter()
            .map(|&(o, d)| (BlockOffset::new(o), Delta::from(d)))
            .collect()
    }

    #[test]
    fn lookup_after_train() {
        let mut pst = Pst::new(4);
        pst.train(1, &seq(&[(4, 0), (2, 1)]));
        let s = pst.lookup(1).unwrap();
        let order: Vec<u8> = s.iter().map(|e| e.offset.get()).collect();
        assert_eq!(order, [4, 2]);
        assert!(pst.lookup(2).is_none());
    }

    #[test]
    fn retrain_merges() {
        let mut pst = Pst::new(4);
        pst.train(1, &seq(&[(4, 0), (2, 1)]));
        pst.train(1, &seq(&[(4, 3)]));
        let s = pst.peek(1).unwrap();
        assert_eq!(s.get(BlockOffset::new(4)).unwrap().delta.get(), 3);
        assert_eq!(s.get(BlockOffset::new(4)).unwrap().counter.get(), 2);
        assert!(s.get(BlockOffset::new(2)).is_none(), "decayed to zero");
        assert_eq!(pst.trainings(), 2);
    }

    #[test]
    fn empty_observation_ignored() {
        let mut pst = Pst::new(4);
        pst.train(9, &SpatialSequence::new());
        assert!(pst.is_empty());
        assert_eq!(pst.trainings(), 0);
    }

    #[test]
    fn capacity_bounded() {
        let mut pst = Pst::new(2);
        pst.train(1, &seq(&[(1, 0)]));
        pst.train(2, &seq(&[(2, 0)]));
        pst.train(3, &seq(&[(3, 0)]));
        assert_eq!(pst.len(), 2);
        assert!(pst.peek(1).is_none());
    }
}
