//! The region miss-order buffer (RMOB).
//!
//! STeMS's temporal history (Section 4.1): like TMS's CMOB it is a large
//! circular buffer of off-chip misses, but spatially predictable misses
//! are *omitted* — only generation triggers and spatial misses (misses the
//! spatial predictor did not cover) are appended, which is why 128K
//! entries suffice where TMS needs 384K. Each entry additionally records
//! the 16-bit PC of the miss instruction (for the PST lookup during
//! reconstruction) and the 8-bit reconstruction delta (global misses
//! skipped since the previous RMOB append).

use stems_types::{BlockAddr, Delta, Pc};

use crate::util::{HasBlock, OrderBuffer};

/// One RMOB record: 5B block address + 16-bit PC + 8-bit delta = 8B in
/// hardware (Section 4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RmobEntry {
    /// The miss block address.
    pub block: BlockAddr,
    /// PC of the miss instruction (drives the reconstruction-time PST
    /// lookup).
    pub pc: Pc,
    /// Global misses skipped since the previous RMOB entry.
    pub delta: Delta,
}

impl HasBlock for RmobEntry {
    fn block(&self) -> BlockAddr {
        self.block
    }
}

/// The RMOB is an [`OrderBuffer`] of [`RmobEntry`] records.
pub type Rmob = OrderBuffer<RmobEntry>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmob_indexes_by_block() {
        let mut rmob = Rmob::new(8);
        let e = RmobEntry {
            block: BlockAddr::new(42),
            pc: Pc::new(0x400),
            delta: Delta::from(3),
        };
        let pos = rmob.append(e);
        assert_eq!(rmob.lookup(BlockAddr::new(42)), Some(pos));
        assert_eq!(rmob.get(pos), Some(&e));
    }
}
