//! The reconstruction engine (Section 4.2, Figure 5).
//!
//! Reconstruction rebuilds a predicted *total* miss order from the two
//! recorded components:
//!
//! 1. the initial miss is placed at slot 0 of the reconstruction buffer;
//! 2. each subsequent RMOB entry is placed `delta` empty slots after the
//!    previous one (the temporal skeleton);
//! 3. each RMOB entry triggers a PST lookup; the predicted spatial
//!    sequence's elements are interleaved at slots chained by their own
//!    deltas from the trigger's slot.
//!
//! If a slot is already occupied, up to `search` adjacent slots each way
//! are tried (Section 4.3 reports >=99% of addresses place within +-2,
//! ~92% exactly); otherwise the address is dropped. The buffer is a
//! sliding 256-slot window: draining from the front yields the predicted
//! address sequence and frees space, so reconstruction resumes on demand
//! when the stream queue runs low — "STeMS resumes reconstruction from
//! where it left off previously".

use std::collections::VecDeque;

use stems_types::BlockAddr;

use crate::stems::rmob::RmobEntry;
use crate::util::OrderBuffer;

use super::pst::Pst;
use crate::sms::spatial_index;

/// Placement accuracy statistics (reported by `--bin recon_stats`,
/// reproducing the Section 4.3 claim).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReconStats {
    /// Placed at the exact slot its delta chain named.
    pub exact: u64,
    /// Placed one slot away.
    pub shifted1: u64,
    /// Placed two slots away.
    pub shifted2: u64,
    /// Dropped: no free slot within the search distance.
    pub dropped_conflict: u64,
    /// Dropped: target beyond the reconstruction window.
    pub dropped_window: u64,
}

impl ReconStats {
    /// Total placement attempts.
    pub fn attempts(&self) -> u64 {
        self.exact + self.shifted1 + self.shifted2 + self.dropped_conflict + self.dropped_window
    }

    /// Fraction placed at their exact slot.
    pub fn exact_fraction(&self) -> f64 {
        let n = self.attempts();
        if n == 0 {
            0.0
        } else {
            self.exact as f64 / n as f64
        }
    }

    /// Fraction placed within the +-2 search distance.
    pub fn placed_fraction(&self) -> f64 {
        let n = self.attempts();
        if n == 0 {
            0.0
        } else {
            (self.exact + self.shifted1 + self.shifted2) as f64 / n as f64
        }
    }

    /// The component-wise difference `self - earlier` (saturating), used
    /// to extract the increment between two snapshots.
    pub fn diff(&self, earlier: &ReconStats) -> ReconStats {
        ReconStats {
            exact: self.exact.saturating_sub(earlier.exact),
            shifted1: self.shifted1.saturating_sub(earlier.shifted1),
            shifted2: self.shifted2.saturating_sub(earlier.shifted2),
            dropped_conflict: self
                .dropped_conflict
                .saturating_sub(earlier.dropped_conflict),
            dropped_window: self.dropped_window.saturating_sub(earlier.dropped_window),
        }
    }

    /// Accumulates another run's statistics.
    pub fn merge(&mut self, other: &ReconStats) {
        self.exact += other.exact;
        self.shifted1 += other.shifted1;
        self.shifted2 += other.shifted2;
        self.dropped_conflict += other.dropped_conflict;
        self.dropped_window += other.dropped_window;
    }
}

/// An in-progress reconstruction: one per active reconstructed stream.
#[derive(Clone, Debug)]
pub struct Reconstructor {
    /// Sliding window of predicted slots; `slots[0]` is absolute `base`.
    slots: VecDeque<Option<BlockAddr>>,
    /// Absolute slot index of the window front.
    base: u64,
    /// Absolute slot of the most recently placed RMOB trigger.
    horizon: u64,
    /// Next RMOB position to expand.
    next_rmob: u64,
    /// Window capacity (256 in the paper).
    capacity: usize,
    /// Adjacent-slot search distance (2 in the paper).
    search: usize,
    /// Whether the first (initiating) entry has been expanded.
    primed: bool,
    /// Whether the temporal history has run out (stream end).
    exhausted: bool,
    /// Scratch for one RMOB entry's predicted spatial sequence, reused
    /// across expansions to keep the refill path allocation-free.
    predicted_scratch: Vec<(u8, u8)>,
    /// Placement statistics for this reconstruction.
    pub stats: ReconStats,
}

impl Reconstructor {
    /// Starts a reconstruction whose initiating miss matched the RMOB at
    /// `rmob_pos`.
    pub fn new(rmob_pos: u64, capacity: usize, search: usize) -> Self {
        Reconstructor {
            slots: VecDeque::with_capacity(capacity.min(256)),
            base: 0,
            horizon: 0,
            next_rmob: rmob_pos,
            capacity,
            search,
            primed: false,
            exhausted: false,
            predicted_scratch: Vec::new(),
            stats: ReconStats::default(),
        }
    }

    /// Re-initializes a recycled reconstructor to exactly the state
    /// [`Reconstructor::new`] would produce, keeping the window and
    /// PST-expansion scratch allocations.
    pub fn reset(&mut self, rmob_pos: u64, capacity: usize, search: usize) {
        self.slots.clear();
        self.base = 0;
        self.horizon = 0;
        self.next_rmob = rmob_pos;
        self.capacity = capacity;
        self.search = search;
        self.primed = false;
        self.exhausted = false;
        self.predicted_scratch.clear();
        self.stats = ReconStats::default();
    }

    fn slot_at(&mut self, abs: u64) -> Option<&mut Option<BlockAddr>> {
        if abs < self.base {
            return None; // already drained past
        }
        let rel = (abs - self.base) as usize;
        if rel >= self.capacity {
            return None; // beyond the window
        }
        while self.slots.len() <= rel {
            self.slots.push_back(None);
        }
        Some(&mut self.slots[rel])
    }

    /// Places `block` as close to absolute slot `abs` as the search
    /// distance allows; records stats. Returns the slot used, if any.
    fn place(&mut self, abs: u64, block: BlockAddr) -> Option<u64> {
        if abs >= self.base + self.capacity as u64 {
            self.stats.dropped_window += 1;
            return None;
        }
        // Try exact, then +-1, then +-2 (forward first: a later slot only
        // delays the prefetch, an earlier one reorders it). Candidate
        // order is materialized inline rather than via an allocated list:
        // this runs for every placed address.
        if self.try_place(abs, block) {
            self.stats.exact += 1;
            return Some(abs);
        }
        for d in 1..=self.search as u64 {
            if self.try_place(abs + d, block) {
                self.bump_shifted(d);
                return Some(abs + d);
            }
            if abs >= self.base + d && self.try_place(abs - d, block) {
                self.bump_shifted(d);
                return Some(abs - d);
            }
        }
        self.stats.dropped_conflict += 1;
        None
    }

    fn try_place(&mut self, candidate: u64, block: BlockAddr) -> bool {
        match self.slot_at(candidate) {
            Some(slot @ None) => {
                *slot = Some(block);
                true
            }
            _ => false,
        }
    }

    fn bump_shifted(&mut self, dist: u64) {
        if dist == 1 {
            self.stats.shifted1 += 1;
        } else {
            self.stats.shifted2 += 1;
        }
    }

    /// Expands one RMOB entry into the window: places its trigger address
    /// and interleaves its PST spatial sequence. Returns `false` when the
    /// RMOB has no further readable entry or the window is full.
    ///
    /// `predicted_region` is invoked with each region whose spatial
    /// sequence was used, so the caller can remember the reconstruction
    /// index (suppressing redundant spatial-only streams, Section 4.2).
    pub fn expand_one(
        &mut self,
        rmob: &OrderBuffer<RmobEntry>,
        pst: &mut Pst,
        mut predicted_region: impl FnMut(stems_types::RegionAddr, u64),
    ) -> bool {
        let Some(entry) = rmob.get(self.next_rmob).copied() else {
            return false;
        };
        let trigger_slot = if !self.primed {
            self.primed = true;
            // The initiating miss occupies slot 0; it was demand-fetched,
            // and the residency filter will refuse a refetch when drained.
            if let Some(slot) = self.slot_at(0) {
                *slot = Some(entry.block);
            }
            Some(0)
        } else {
            let target = self.horizon + entry.delta.get() as u64 + 1;
            if target >= self.base + self.capacity as u64 {
                // The temporal skeleton has outrun the window; resume
                // after the consumer drains some slots.
                return false;
            }
            self.horizon = target;
            self.place(target, entry.block)
        };
        let anchor = match trigger_slot {
            Some(s) => s,
            None => self.horizon, // trigger dropped: chain spatials anyway
        };
        let region = entry.block.region();
        let index = spatial_index(entry.pc, entry.block.offset_in_region());
        self.predicted_scratch.clear();
        if let Some(seq) = pst.lookup(index) {
            self.predicted_scratch
                .extend(seq.predicted().map(|e| (e.offset.get(), e.delta.get())));
        }
        if !self.predicted_scratch.is_empty() {
            predicted_region(region, index);
            let mut prev = anchor;
            for i in 0..self.predicted_scratch.len() {
                let (offset, delta) = self.predicted_scratch[i];
                let target = prev + delta as u64 + 1;
                let off = stems_types::BlockOffset::new(offset);
                match self.place(target, region.block_at(off)) {
                    Some(slot) => prev = slot,
                    None => prev = target.min(self.base + self.capacity as u64 - 1),
                }
            }
        }
        self.next_rmob += 1;
        true
    }

    /// Drains up to `n` predicted addresses from the window front,
    /// expanding further RMOB entries as needed. An empty return means the
    /// temporal history is exhausted.
    ///
    /// A front slot is only emitted once it is *final*: expansion has run
    /// far enough ahead that no future RMOB entry (whose trigger lands
    /// beyond the current horizon, minus the ±search adjustment) can still
    /// place an address there.
    pub fn produce(
        &mut self,
        n: usize,
        rmob: &OrderBuffer<RmobEntry>,
        pst: &mut Pst,
        predicted_region: impl FnMut(stems_types::RegionAddr, u64),
    ) -> Vec<BlockAddr> {
        let mut out = VecDeque::with_capacity(n);
        self.produce_into(n, rmob, pst, predicted_region, &mut out);
        out.into()
    }

    /// Like [`Reconstructor::produce`], but appends into a caller-provided
    /// buffer (the stream queue's pending deque) instead of allocating.
    /// Returns the number of addresses appended.
    pub fn produce_into(
        &mut self,
        n: usize,
        rmob: &OrderBuffer<RmobEntry>,
        pst: &mut Pst,
        mut predicted_region: impl FnMut(stems_types::RegionAddr, u64),
        out: &mut VecDeque<BlockAddr>,
    ) -> usize {
        let mut appended = 0;
        while appended < n {
            let safe_frontier = self.base + 2 * self.search as u64 + 1;
            if !self.exhausted && self.horizon < safe_frontier {
                // The front slot could still receive placements: expand.
                if !self.expand_one(rmob, pst, &mut predicted_region) {
                    self.exhausted = true;
                }
                continue;
            }
            match self.slots.pop_front() {
                Some(opt) => {
                    self.base += 1;
                    if let Some(block) = opt {
                        out.push_back(block);
                        appended += 1;
                    }
                }
                None => {
                    if self.exhausted || !self.expand_one(rmob, pst, &mut predicted_region) {
                        break;
                    }
                }
            }
        }
        appended
    }
}

/// A reusable arena for per-stream allocations, handed down from the
/// engine so stream churn stops allocating in steady state.
///
/// Every reconstructed stream needs a boxed [`Reconstructor`] (a 256-slot
/// window deque plus PST-expansion scratch) and every spatial-only stream
/// a `VecDeque` of fixed addresses. Both live exactly as long as their
/// stream queue, so when [`crate::streams::StreamQueues::start`] retires a
/// victim's source, its buffers come back here instead of being freed.
#[derive(Clone, Debug, Default)]
pub struct ReconPool {
    // Deliberately Box: the box moves into `StemsSource::Recon` whole, so
    // pooling it recycles that allocation too, not just the buffers inside.
    #[allow(clippy::vec_box)]
    recons: Vec<Box<Reconstructor>>,
    deques: Vec<VecDeque<BlockAddr>>,
}

/// Spare-list bound: the paper runs 8 stream queues, so a few times that
/// covers every live-plus-retiring stream without hoarding.
const POOL_CAPACITY: usize = 32;

impl ReconPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A reconstructor initialized as `Reconstructor::new(rmob_pos,
    /// capacity, search)`, reusing a pooled allocation when available.
    pub fn take_recon(
        &mut self,
        rmob_pos: u64,
        capacity: usize,
        search: usize,
    ) -> Box<Reconstructor> {
        match self.recons.pop() {
            Some(mut r) => {
                r.reset(rmob_pos, capacity, search);
                r
            }
            None => Box::new(Reconstructor::new(rmob_pos, capacity, search)),
        }
    }

    /// Returns a retired reconstructor's allocations to the pool.
    pub fn put_recon(&mut self, recon: Box<Reconstructor>) {
        if self.recons.len() < POOL_CAPACITY {
            self.recons.push(recon);
        }
    }

    /// An empty deque for a spatial-only stream's fixed addresses,
    /// reusing a pooled allocation when available.
    pub fn take_deque(&mut self) -> VecDeque<BlockAddr> {
        let mut q = self.deques.pop().unwrap_or_default();
        q.clear();
        q
    }

    /// Returns a retired fixed-address deque to the pool.
    pub fn put_deque(&mut self, deque: VecDeque<BlockAddr>) {
        if self.deques.len() < POOL_CAPACITY {
            self.deques.push(deque);
        }
    }

    /// Spare allocations currently pooled (diagnostics).
    pub fn spares(&self) -> (usize, usize) {
        (self.recons.len(), self.deques.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_types::{BlockOffset, Delta, Pc, RegionAddr, SpatialSequence};

    fn entry(region: u64, offset: u8, pc: u64, delta: u8) -> RmobEntry {
        RmobEntry {
            block: RegionAddr::new(region).block_at(BlockOffset::new(offset)),
            pc: Pc::new(pc),
            delta: Delta::from(delta),
        }
    }

    fn seq(items: &[(u8, u8)]) -> SpatialSequence {
        items
            .iter()
            .map(|&(o, d)| (BlockOffset::new(o), Delta::from(d)))
            .collect()
    }

    /// Rebuilds the Figure 3 / Figure 5 example and checks the
    /// reconstructed total order.
    ///
    /// Observed order: A A+4 B A+2 B+6 A-1 C D D+1 D+2 (regions A,B,C,D;
    /// "X+n" meaning offset n within region X; the paper's relative
    /// offsets are encoded region-relative here with the trigger at a
    /// nonzero offset).
    #[test]
    fn figure5_reconstruction() {
        // Region-relative encoding: trigger of A at offset 8; A+4 -> 12,
        // A+2 -> 10, A-1 -> 7. Triggers of B, C, D at offset 0.
        let mut rmob: OrderBuffer<RmobEntry> = OrderBuffer::new(64);
        rmob.append(entry(0xA, 8, 1, 0)); // A (pos 0)
        rmob.append(entry(0xB, 0, 2, 1)); // B skips one (A+4)
        rmob.append(entry(0xC, 0, 3, 3)); // C skips A+2, B+6, A-1
        rmob.append(entry(0xD, 0, 4, 0)); // D immediately follows

        let mut pst = Pst::new(16);
        // Each sequence is trained twice: elements predict at counter 2.
        for _ in 0..2 {
            pst.train(
                spatial_index(Pc::new(1), BlockOffset::new(8)),
                &seq(&[(12, 0), (10, 1), (7, 1)]),
            );
            pst.train(
                spatial_index(Pc::new(2), BlockOffset::new(0)),
                &seq(&[(6, 1)]),
            );
            pst.train(
                spatial_index(Pc::new(4), BlockOffset::new(0)),
                &seq(&[(1, 0), (2, 0)]),
            );
        }

        let mut r = Reconstructor::new(0, 64, 2);
        let out = r.produce(16, &rmob, &mut pst, |_, _| {});
        let expect: Vec<BlockAddr> = vec![
            RegionAddr::new(0xA).block_at(BlockOffset::new(8)), // A (slot 0)
            RegionAddr::new(0xA).block_at(BlockOffset::new(12)), // A+4
            RegionAddr::new(0xB).block_at(BlockOffset::new(0)), // B
            RegionAddr::new(0xA).block_at(BlockOffset::new(10)), // A+2
            RegionAddr::new(0xB).block_at(BlockOffset::new(6)), // B+6
            RegionAddr::new(0xA).block_at(BlockOffset::new(7)), // A-1
            RegionAddr::new(0xC).block_at(BlockOffset::new(0)), // C
            RegionAddr::new(0xD).block_at(BlockOffset::new(0)), // D
            RegionAddr::new(0xD).block_at(BlockOffset::new(1)), // D+1
            RegionAddr::new(0xD).block_at(BlockOffset::new(2)), // D+2
        ];
        assert_eq!(out, expect);
        assert_eq!(r.stats.exact, r.stats.attempts());
        assert_eq!(r.stats.dropped_conflict + r.stats.dropped_window, 0);
    }

    #[test]
    fn conflicting_slot_searches_adjacent() {
        let mut rmob: OrderBuffer<RmobEntry> = OrderBuffer::new(8);
        rmob.append(entry(0xA, 0, 1, 0));
        let mut pst = Pst::new(8);
        // Two spatial elements whose deltas name the same slot: (1,0) at
        // slot 1, then from slot 1 delta... make second element collide:
        // (2, delta such that lands on slot 1 again is impossible going
        // forward). Instead collide trigger+spatial: spatial (1,0) -> slot
        // 1, (2,0) -> slot 2, (3, 0) -> slot 3: no conflict. Build a
        // conflict via two sequences is not possible with one region, so
        // collide with slot 0 (occupied by the initial miss): delta chain
        // starting before it cannot happen; instead verify the drop path
        // with a saturated window.
        for _ in 0..2 {
            pst.train(
                spatial_index(Pc::new(1), BlockOffset::new(0)),
                &seq(&[(1, 0), (2, 0)]),
            );
        }
        let mut r = Reconstructor::new(0, 2, 2); // tiny window: cap 2 slots
        let out = r.produce(8, &rmob, &mut pst, |_, _| {});
        // Window holds slots 0..2: initial miss + first spatial element;
        // the second is beyond the window. Draining frees slots, but
        // expansion already consumed the entry.
        assert_eq!(out.len(), 2);
        assert!(r.stats.dropped_window >= 1);
    }

    #[test]
    fn produce_in_small_chunks_resumes() {
        let mut rmob: OrderBuffer<RmobEntry> = OrderBuffer::new(64);
        for i in 0..10 {
            rmob.append(entry(i, 0, 100 + i, 0));
        }
        let mut pst = Pst::new(8);
        let mut r = Reconstructor::new(0, 64, 2);
        let mut all = Vec::new();
        loop {
            let chunk = r.produce(3, &rmob, &mut pst, |_, _| {});
            if chunk.is_empty() {
                break;
            }
            all.extend(chunk);
        }
        assert_eq!(all.len(), 10);
        for (i, b) in all.iter().enumerate() {
            assert_eq!(b.region(), RegionAddr::new(i as u64));
        }
    }

    #[test]
    fn predicted_region_callback_reports_index() {
        let mut rmob: OrderBuffer<RmobEntry> = OrderBuffer::new(8);
        rmob.append(entry(0xA, 0, 1, 0));
        let mut pst = Pst::new(8);
        let idx = spatial_index(Pc::new(1), BlockOffset::new(0));
        pst.train(idx, &seq(&[(5, 0)]));
        pst.train(idx, &seq(&[(5, 0)]));
        let mut seen = Vec::new();
        let mut r = Reconstructor::new(0, 64, 2);
        r.produce(4, &rmob, &mut pst, |region, i| seen.push((region, i)));
        assert_eq!(seen, vec![(RegionAddr::new(0xA), idx)]);
    }

    #[test]
    fn stats_fractions() {
        let s = ReconStats {
            exact: 92,
            shifted1: 5,
            shifted2: 2,
            dropped_conflict: 1,
            dropped_window: 0,
        };
        assert_eq!(s.attempts(), 100);
        assert!((s.exact_fraction() - 0.92).abs() < 1e-12);
        assert!((s.placed_fraction() - 0.99).abs() < 1e-12);
        let mut t = ReconStats::default();
        t.merge(&s);
        t.merge(&s);
        assert_eq!(t.attempts(), 200);
    }
}
