//! The reconstruction engine (Section 4.2, Figure 5).
//!
//! Reconstruction rebuilds a predicted *total* miss order from the two
//! recorded components:
//!
//! 1. the initial miss is placed at slot 0 of the reconstruction buffer;
//! 2. each subsequent RMOB entry is placed `delta` empty slots after the
//!    previous one (the temporal skeleton);
//! 3. each RMOB entry triggers a PST lookup; the predicted spatial
//!    sequence's elements are interleaved at slots chained by their own
//!    deltas from the trigger's slot.
//!
//! If a slot is already occupied, up to `search` adjacent slots each way
//! are tried (Section 4.3 reports >=99% of addresses place within +-2,
//! ~92% exactly); otherwise the address is dropped. The buffer is a
//! sliding 256-slot window: draining from the front yields the predicted
//! address sequence and frees space, so reconstruction resumes on demand
//! when the stream queue runs low — "STeMS resumes reconstruction from
//! where it left off previously".

use std::collections::VecDeque;

use stems_types::{BlockAddr, FlatBitmap};

use crate::stems::rmob::RmobEntry;
use crate::util::OrderBuffer;

use super::pst::Pst;
use crate::sms::spatial_index;

/// Placement accuracy statistics (reported by `--bin recon_stats`,
/// reproducing the Section 4.3 claim).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReconStats {
    /// Placed at the exact slot its delta chain named.
    pub exact: u64,
    /// Placed one slot away.
    pub shifted1: u64,
    /// Placed two slots away.
    pub shifted2: u64,
    /// Dropped: no free slot within the search distance.
    pub dropped_conflict: u64,
    /// Dropped: target beyond the reconstruction window.
    pub dropped_window: u64,
}

impl ReconStats {
    /// Total placement attempts.
    pub fn attempts(&self) -> u64 {
        self.exact + self.shifted1 + self.shifted2 + self.dropped_conflict + self.dropped_window
    }

    /// Fraction placed at their exact slot.
    pub fn exact_fraction(&self) -> f64 {
        let n = self.attempts();
        if n == 0 {
            0.0
        } else {
            self.exact as f64 / n as f64
        }
    }

    /// Fraction placed within the +-2 search distance.
    pub fn placed_fraction(&self) -> f64 {
        let n = self.attempts();
        if n == 0 {
            0.0
        } else {
            (self.exact + self.shifted1 + self.shifted2) as f64 / n as f64
        }
    }

    /// The component-wise difference `self - earlier` (saturating), used
    /// to extract the increment between two snapshots.
    pub fn diff(&self, earlier: &ReconStats) -> ReconStats {
        ReconStats {
            exact: self.exact.saturating_sub(earlier.exact),
            shifted1: self.shifted1.saturating_sub(earlier.shifted1),
            shifted2: self.shifted2.saturating_sub(earlier.shifted2),
            dropped_conflict: self
                .dropped_conflict
                .saturating_sub(earlier.dropped_conflict),
            dropped_window: self.dropped_window.saturating_sub(earlier.dropped_window),
        }
    }

    /// Accumulates another run's statistics.
    pub fn merge(&mut self, other: &ReconStats) {
        self.exact += other.exact;
        self.shifted1 += other.shifted1;
        self.shifted2 += other.shifted2;
        self.dropped_conflict += other.dropped_conflict;
        self.dropped_window += other.dropped_window;
    }
}

/// An in-progress reconstruction: one per active reconstructed stream.
///
/// The sliding window is a flat power-of-two ring of predicted blocks
/// carrying a `u64`-word occupancy bitmap: exact/±`search` placement is a
/// bounds check plus a mask-and-shift bit test per candidate (the old
/// `VecDeque<Option<_>>` window paid lazy `push_back(None)` materialization
/// and a bounds-checked deque index per probe), and draining walks set
/// bits a word at a time instead of popping empty slots one by one.
/// Behavior is pinned exactly — placement slots, [`ReconStats`], and drain
/// order — against the retained deque implementation
/// ([`oracle::DequeReconstructor`]) by differential tests below and the
/// property suite in `tests/recon_differential.rs`.
#[derive(Clone, Debug)]
pub struct Reconstructor {
    /// Predicted block per physical ring slot; validity is governed by
    /// `occupancy` (a stale value under a clear bit is never read).
    slots: Vec<BlockAddr>,
    /// One bit per physical slot: set = slot holds a prediction.
    occupancy: FlatBitmap,
    /// `slots.len() - 1`; absolute slot & mask = physical slot.
    slot_mask: u64,
    /// Absolute slot index of the window front.
    base: u64,
    /// Absolute end of the materialized prefix: slots in
    /// `[base, materialized)` exist (occupied or empty); beyond it the
    /// window has never been touched. Mirrors the deque's length.
    materialized: u64,
    /// Absolute slot of the most recently placed RMOB trigger.
    horizon: u64,
    /// Next RMOB position to expand.
    next_rmob: u64,
    /// Window capacity (256 in the paper).
    capacity: usize,
    /// Adjacent-slot search distance (2 in the paper).
    search: usize,
    /// Whether the first (initiating) entry has been expanded.
    primed: bool,
    /// Whether the temporal history has run out (stream end).
    exhausted: bool,
    /// Placement statistics for this reconstruction.
    pub stats: ReconStats,
}

/// Physical ring size for a logical window capacity: the next power of
/// two, at least one occupancy word wide so the bitmap walk never
/// special-cases a partial word.
fn ring_size(capacity: usize) -> usize {
    capacity.next_power_of_two().max(64)
}

impl Reconstructor {
    /// Starts a reconstruction whose initiating miss matched the RMOB at
    /// `rmob_pos`.
    pub fn new(rmob_pos: u64, capacity: usize, search: usize) -> Self {
        let physical = ring_size(capacity);
        Reconstructor {
            slots: vec![BlockAddr::new(0); physical],
            occupancy: FlatBitmap::new(physical),
            slot_mask: physical as u64 - 1,
            base: 0,
            materialized: 0,
            horizon: 0,
            next_rmob: rmob_pos,
            capacity,
            search,
            primed: false,
            exhausted: false,
            stats: ReconStats::default(),
        }
    }

    /// Re-initializes a recycled reconstructor to exactly the state
    /// [`Reconstructor::new`] would produce, keeping the window and
    /// PST-expansion scratch allocations.
    pub fn reset(&mut self, rmob_pos: u64, capacity: usize, search: usize) {
        let physical = ring_size(capacity);
        if physical != self.slots.len() {
            self.slots = vec![BlockAddr::new(0); physical];
            self.occupancy.reset(physical);
            self.slot_mask = physical as u64 - 1;
        } else {
            self.occupancy.clear_all();
        }
        self.base = 0;
        self.materialized = 0;
        self.horizon = 0;
        self.next_rmob = rmob_pos;
        self.capacity = capacity;
        self.search = search;
        self.primed = false;
        self.exhausted = false;
        self.stats = ReconStats::default();
    }

    #[inline]
    fn is_occupied(&self, abs: u64) -> bool {
        self.occupancy.get((abs & self.slot_mask) as usize)
    }

    /// Marks `abs` occupied with `block`, extending the materialized
    /// prefix (the deque's lazy `push_back(None)` growth collapses to a
    /// cursor bump: intermediate slots are empty by bitmap invariant).
    #[inline]
    fn set_slot(&mut self, abs: u64, block: BlockAddr) {
        let s = abs & self.slot_mask;
        self.occupancy.set(s as usize);
        self.slots[s as usize] = block;
        if abs >= self.materialized {
            self.materialized = abs + 1;
        }
    }

    /// Places `block` as close to absolute slot `abs` as the search
    /// distance allows; records stats. Returns the slot used, if any.
    /// Inlined into the expansion loop so the window bounds stay in
    /// registers across the candidate probes.
    #[inline]
    fn place(&mut self, abs: u64, block: BlockAddr) -> Option<u64> {
        if abs >= self.base + self.capacity as u64 {
            self.stats.dropped_window += 1;
            return None;
        }
        // Try exact, then +-1, then +-2 (forward first: a later slot only
        // delays the prefetch, an earlier one reorders it). Each probe is
        // a window-bounds check plus one occupancy bit test: this runs
        // for every placed address.
        if self.try_place(abs, block) {
            self.stats.exact += 1;
            return Some(abs);
        }
        for d in 1..=self.search as u64 {
            if self.try_place(abs + d, block) {
                self.bump_shifted(d);
                return Some(abs + d);
            }
            if abs >= self.base + d && self.try_place(abs - d, block) {
                self.bump_shifted(d);
                return Some(abs - d);
            }
        }
        self.stats.dropped_conflict += 1;
        None
    }

    #[inline]
    fn try_place(&mut self, candidate: u64, block: BlockAddr) -> bool {
        // Candidates drained past (< base) or beyond the window read as
        // unplaceable, exactly as the deque's `slot_at` refused them.
        if candidate < self.base
            || candidate - self.base >= self.capacity as u64
            || self.is_occupied(candidate)
        {
            return false;
        }
        self.set_slot(candidate, block);
        true
    }

    fn bump_shifted(&mut self, dist: u64) {
        if dist == 1 {
            self.stats.shifted1 += 1;
        } else {
            self.stats.shifted2 += 1;
        }
    }

    /// First occupied absolute slot in `[from, limit)`, walking the
    /// occupancy words. `limit - from` never exceeds the window capacity,
    /// so the scan touches each physical word at most once.
    fn next_occupied(&self, from: u64, limit: u64) -> Option<u64> {
        let mut abs = from;
        while abs < limit {
            let s = abs & self.slot_mask;
            let bit = s & 63;
            let word = self.occupancy.word((s >> 6) as usize) >> bit;
            if word != 0 {
                let cand = abs + word.trailing_zeros() as u64;
                return (cand < limit).then_some(cand);
            }
            abs += 64 - bit; // next word boundary
        }
        None
    }

    /// Expands one RMOB entry into the window: places its trigger address
    /// and interleaves its PST spatial sequence. Returns `false` when the
    /// RMOB has no further readable entry or the window is full.
    ///
    /// `predicted_region` is invoked with each region whose spatial
    /// sequence was used, so the caller can remember the reconstruction
    /// index (suppressing redundant spatial-only streams, Section 4.2).
    ///
    /// The PST consult here is deliberately a *scalar* [`Pst::lookup`].
    /// Resolving upcoming expansions in one [`Pst::lookup_regions`] batch
    /// (with the recency touch deferred to expansion time) was built and
    /// measured for PR 6, and lost end-to-end: the engine drains streams
    /// in `refill_chunk`-sized nibbles (4 addresses ≈ 1–3 expansions), so
    /// batches stayed too narrow for the probe pipelining to pay for the
    /// id-cache bookkeeping — even with the batch width ramping 1→8
    /// within a drain. Per the house rules that measured pessimization
    /// was reverted, not shipped; the batch API remains on [`Pst`] for
    /// wider-drain callers and is pinned by the differential suite.
    pub fn expand_one(
        &mut self,
        rmob: &OrderBuffer<RmobEntry>,
        pst: &mut Pst,
        mut predicted_region: impl FnMut(stems_types::RegionAddr, u64),
    ) -> bool {
        let Some(entry) = rmob.get(self.next_rmob).copied() else {
            return false;
        };
        let trigger_slot = if !self.primed {
            self.primed = true;
            // The initiating miss occupies slot 0; it was demand-fetched,
            // and the residency filter will refuse a refetch when drained.
            if self.base == 0 && self.capacity > 0 {
                self.set_slot(0, entry.block);
            }
            Some(0)
        } else {
            let target = self.horizon + entry.delta.get() as u64 + 1;
            if target >= self.base + self.capacity as u64 {
                // The temporal skeleton has outrun the window; resume
                // after the consumer drains some slots.
                return false;
            }
            self.horizon = target;
            self.place(target, entry.block)
        };
        let anchor = match trigger_slot {
            Some(s) => s,
            None => self.horizon, // trigger dropped: chain spatials anyway
        };
        let region = entry.block.region();
        // Placement reads the sequence in place: `lookup` borrows `pst`
        // while placement mutates `self`, so no staging buffer is needed.
        // Callback timing: `predicted_region` fires before the first
        // placement, and only when the sequence predicts >= one element.
        let index = spatial_index(entry.pc, entry.block.offset_in_region());
        if let Some(seq) = pst.lookup(index) {
            let mut predicted = seq.predicted();
            if let Some(first) = predicted.next() {
                predicted_region(region, index);
                let mut prev = anchor;
                for e in std::iter::once(first).chain(predicted) {
                    let target = prev + e.delta.get() as u64 + 1;
                    match self.place(target, region.block_at(e.offset)) {
                        Some(slot) => prev = slot,
                        None => prev = target.min(self.base + self.capacity as u64 - 1),
                    }
                }
            }
        }
        self.next_rmob += 1;
        true
    }

    /// Drains up to `n` predicted addresses from the window front,
    /// expanding further RMOB entries as needed. An empty return means the
    /// temporal history is exhausted.
    ///
    /// A front slot is only emitted once it is *final*: expansion has run
    /// far enough ahead that no future RMOB entry (whose trigger lands
    /// beyond the current horizon, minus the ±search adjustment) can still
    /// place an address there.
    pub fn produce(
        &mut self,
        n: usize,
        rmob: &OrderBuffer<RmobEntry>,
        pst: &mut Pst,
        predicted_region: impl FnMut(stems_types::RegionAddr, u64),
    ) -> Vec<BlockAddr> {
        let mut out = VecDeque::with_capacity(n);
        self.produce_into(n, rmob, pst, predicted_region, &mut out);
        out.into()
    }

    /// Like [`Reconstructor::produce`], but appends into a caller-provided
    /// buffer (the stream queue's pending deque) instead of allocating.
    /// Returns the number of addresses appended.
    pub fn produce_into(
        &mut self,
        n: usize,
        rmob: &OrderBuffer<RmobEntry>,
        pst: &mut Pst,
        mut predicted_region: impl FnMut(stems_types::RegionAddr, u64),
        out: &mut VecDeque<BlockAddr>,
    ) -> usize {
        let mut appended = 0;
        while appended < n {
            let safe_frontier = self.base + 2 * self.search as u64 + 1;
            if !self.exhausted && self.horizon < safe_frontier {
                // The front slot could still receive placements: expand.
                if !self.expand_one(rmob, pst, &mut predicted_region) {
                    self.exhausted = true;
                }
                continue;
            }
            if self.base < self.materialized {
                if self.is_occupied(self.base) {
                    // Emit the front slot and clear its bit so the
                    // physical slot is clean when the ring wraps back.
                    let s = (self.base & self.slot_mask) as usize;
                    self.occupancy.clear(s);
                    out.push_back(self.slots[s]);
                    appended += 1;
                    self.base += 1;
                } else {
                    // Drain walks set bits: empty slots emit nothing, so
                    // skip straight to the next occupied slot — bounded
                    // by the materialized prefix and, while expansion can
                    // still run, by the frontier up to which the deque
                    // loop would have popped empties one at a time
                    // without re-triggering expansion (popping at slot b
                    // requires `horizon >= b + 2*search + 1`).
                    let limit = if self.exhausted {
                        self.materialized
                    } else {
                        self.materialized
                            .min(self.horizon.saturating_sub(2 * self.search as u64))
                    };
                    self.base = self.next_occupied(self.base, limit).unwrap_or(limit);
                }
            } else if self.exhausted || !self.expand_one(rmob, pst, &mut predicted_region) {
                break;
            }
        }
        appended
    }

    /// The window contents as the deque implementation would store them
    /// (`[base, materialized)`, `None` = empty slot). Diagnostics for the
    /// differential suites; not part of the reconstruction API.
    #[doc(hidden)]
    pub fn window_snapshot(&self) -> Vec<Option<BlockAddr>> {
        (self.base..self.materialized)
            .map(|abs| {
                self.is_occupied(abs)
                    .then(|| self.slots[(abs & self.slot_mask) as usize])
            })
            .collect()
    }

    /// `(base, horizon, next_rmob, primed, exhausted)` for the
    /// differential suites.
    #[doc(hidden)]
    pub fn cursor_state(&self) -> (u64, u64, u64, bool, bool) {
        (
            self.base,
            self.horizon,
            self.next_rmob,
            self.primed,
            self.exhausted,
        )
    }
}

/// A reusable arena for per-stream allocations, handed down from the
/// engine so stream churn stops allocating in steady state.
///
/// Every reconstructed stream needs a boxed [`Reconstructor`] (a 256-slot
/// window deque plus PST-expansion scratch) and every spatial-only stream
/// a `VecDeque` of fixed addresses. Both live exactly as long as their
/// stream queue, so when [`crate::streams::StreamQueues::start`] retires a
/// victim's source, its buffers come back here instead of being freed.
#[derive(Clone, Debug, Default)]
pub struct ReconPool {
    // Deliberately Box: the box moves into `StemsSource::Recon` whole, so
    // pooling it recycles that allocation too, not just the buffers inside.
    #[allow(clippy::vec_box)]
    recons: Vec<Box<Reconstructor>>,
    deques: Vec<VecDeque<BlockAddr>>,
}

/// Spare-list bound: the paper runs 8 stream queues, so a few times that
/// covers every live-plus-retiring stream without hoarding.
const POOL_CAPACITY: usize = 32;

impl ReconPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A reconstructor initialized as `Reconstructor::new(rmob_pos,
    /// capacity, search)`, reusing a pooled allocation when available.
    pub fn take_recon(
        &mut self,
        rmob_pos: u64,
        capacity: usize,
        search: usize,
    ) -> Box<Reconstructor> {
        match self.recons.pop() {
            Some(mut r) => {
                r.reset(rmob_pos, capacity, search);
                r
            }
            None => Box::new(Reconstructor::new(rmob_pos, capacity, search)),
        }
    }

    /// Returns a retired reconstructor's allocations to the pool.
    pub fn put_recon(&mut self, recon: Box<Reconstructor>) {
        if self.recons.len() < POOL_CAPACITY {
            self.recons.push(recon);
        }
    }

    /// An empty deque for a spatial-only stream's fixed addresses,
    /// reusing a pooled allocation when available.
    pub fn take_deque(&mut self) -> VecDeque<BlockAddr> {
        let mut q = self.deques.pop().unwrap_or_default();
        q.clear();
        q
    }

    /// Returns a retired fixed-address deque to the pool.
    pub fn put_deque(&mut self, deque: VecDeque<BlockAddr>) {
        if self.deques.len() < POOL_CAPACITY {
            self.deques.push(deque);
        }
    }

    /// Spare allocations currently pooled (diagnostics).
    pub fn spares(&self) -> (usize, usize) {
        (self.recons.len(), self.deques.len())
    }
}

/// The pre-bitmap reconstruction window, retained verbatim as a
/// differential oracle: a `VecDeque<Option<BlockAddr>>` window with lazy
/// `push_back(None)` materialization and per-slot probing. The unit and
/// property differential suites (and the `recon_placement` microbench in
/// `crates/bench`) drive identical RMOB/PST streams through this and the
/// bitmap ring and require placement slots, [`ReconStats`], window
/// contents, and drain order to match exactly. Not part of the public
/// API; hidden rather than `#[cfg(test)]` only so the benchmark crate can
/// measure it.
#[doc(hidden)]
pub mod oracle {
    use super::*;

    /// See [the module docs](self): the retained deque-window
    /// reconstruction engine, mirroring [`Reconstructor`]'s API.
    #[derive(Clone, Debug)]
    pub struct DequeReconstructor {
        slots: VecDeque<Option<BlockAddr>>,
        base: u64,
        horizon: u64,
        next_rmob: u64,
        capacity: usize,
        search: usize,
        primed: bool,
        exhausted: bool,
        predicted_scratch: Vec<(u8, u8)>,
        /// Placement statistics for this reconstruction.
        pub stats: ReconStats,
    }

    impl DequeReconstructor {
        /// Mirrors [`Reconstructor::new`].
        pub fn new(rmob_pos: u64, capacity: usize, search: usize) -> Self {
            DequeReconstructor {
                slots: VecDeque::with_capacity(capacity.min(256)),
                base: 0,
                horizon: 0,
                next_rmob: rmob_pos,
                capacity,
                search,
                primed: false,
                exhausted: false,
                predicted_scratch: Vec::new(),
                stats: ReconStats::default(),
            }
        }

        fn slot_at(&mut self, abs: u64) -> Option<&mut Option<BlockAddr>> {
            if abs < self.base {
                return None; // already drained past
            }
            let rel = (abs - self.base) as usize;
            if rel >= self.capacity {
                return None; // beyond the window
            }
            while self.slots.len() <= rel {
                self.slots.push_back(None);
            }
            Some(&mut self.slots[rel])
        }

        fn place(&mut self, abs: u64, block: BlockAddr) -> Option<u64> {
            if abs >= self.base + self.capacity as u64 {
                self.stats.dropped_window += 1;
                return None;
            }
            if self.try_place(abs, block) {
                self.stats.exact += 1;
                return Some(abs);
            }
            for d in 1..=self.search as u64 {
                if self.try_place(abs + d, block) {
                    self.bump_shifted(d);
                    return Some(abs + d);
                }
                if abs >= self.base + d && self.try_place(abs - d, block) {
                    self.bump_shifted(d);
                    return Some(abs - d);
                }
            }
            self.stats.dropped_conflict += 1;
            None
        }

        fn try_place(&mut self, candidate: u64, block: BlockAddr) -> bool {
            match self.slot_at(candidate) {
                Some(slot @ None) => {
                    *slot = Some(block);
                    true
                }
                _ => false,
            }
        }

        fn bump_shifted(&mut self, dist: u64) {
            if dist == 1 {
                self.stats.shifted1 += 1;
            } else {
                self.stats.shifted2 += 1;
            }
        }

        /// Mirrors [`Reconstructor::expand_one`].
        pub fn expand_one(
            &mut self,
            rmob: &OrderBuffer<RmobEntry>,
            pst: &mut Pst,
            mut predicted_region: impl FnMut(stems_types::RegionAddr, u64),
        ) -> bool {
            let Some(entry) = rmob.get(self.next_rmob).copied() else {
                return false;
            };
            let trigger_slot = if !self.primed {
                self.primed = true;
                if let Some(slot) = self.slot_at(0) {
                    *slot = Some(entry.block);
                }
                Some(0)
            } else {
                let target = self.horizon + entry.delta.get() as u64 + 1;
                if target >= self.base + self.capacity as u64 {
                    return false;
                }
                self.horizon = target;
                self.place(target, entry.block)
            };
            let anchor = match trigger_slot {
                Some(s) => s,
                None => self.horizon,
            };
            let region = entry.block.region();
            let index = spatial_index(entry.pc, entry.block.offset_in_region());
            self.predicted_scratch.clear();
            if let Some(seq) = pst.lookup(index) {
                self.predicted_scratch
                    .extend(seq.predicted().map(|e| (e.offset.get(), e.delta.get())));
            }
            if !self.predicted_scratch.is_empty() {
                predicted_region(region, index);
                let mut prev = anchor;
                for i in 0..self.predicted_scratch.len() {
                    let (offset, delta) = self.predicted_scratch[i];
                    let target = prev + delta as u64 + 1;
                    let off = stems_types::BlockOffset::new(offset);
                    match self.place(target, region.block_at(off)) {
                        Some(slot) => prev = slot,
                        None => prev = target.min(self.base + self.capacity as u64 - 1),
                    }
                }
            }
            self.next_rmob += 1;
            true
        }

        /// Mirrors [`Reconstructor::produce_into`].
        pub fn produce_into(
            &mut self,
            n: usize,
            rmob: &OrderBuffer<RmobEntry>,
            pst: &mut Pst,
            mut predicted_region: impl FnMut(stems_types::RegionAddr, u64),
            out: &mut VecDeque<BlockAddr>,
        ) -> usize {
            let mut appended = 0;
            while appended < n {
                let safe_frontier = self.base + 2 * self.search as u64 + 1;
                if !self.exhausted && self.horizon < safe_frontier {
                    if !self.expand_one(rmob, pst, &mut predicted_region) {
                        self.exhausted = true;
                    }
                    continue;
                }
                match self.slots.pop_front() {
                    Some(opt) => {
                        self.base += 1;
                        if let Some(block) = opt {
                            out.push_back(block);
                            appended += 1;
                        }
                    }
                    None => {
                        if self.exhausted || !self.expand_one(rmob, pst, &mut predicted_region) {
                            break;
                        }
                    }
                }
            }
            appended
        }

        /// Mirrors [`Reconstructor::window_snapshot`].
        pub fn window_snapshot(&self) -> Vec<Option<BlockAddr>> {
            self.slots.iter().copied().collect()
        }

        /// Mirrors [`Reconstructor::cursor_state`].
        pub fn cursor_state(&self) -> (u64, u64, u64, bool, bool) {
            (
                self.base,
                self.horizon,
                self.next_rmob,
                self.primed,
                self.exhausted,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_types::{BlockOffset, Delta, Pc, RegionAddr, SpatialSequence};

    fn entry(region: u64, offset: u8, pc: u64, delta: u8) -> RmobEntry {
        RmobEntry {
            block: RegionAddr::new(region).block_at(BlockOffset::new(offset)),
            pc: Pc::new(pc),
            delta: Delta::from(delta),
        }
    }

    fn seq(items: &[(u8, u8)]) -> SpatialSequence {
        items
            .iter()
            .map(|&(o, d)| (BlockOffset::new(o), Delta::from(d)))
            .collect()
    }

    /// Rebuilds the Figure 3 / Figure 5 example and checks the
    /// reconstructed total order.
    ///
    /// Observed order: A A+4 B A+2 B+6 A-1 C D D+1 D+2 (regions A,B,C,D;
    /// "X+n" meaning offset n within region X; the paper's relative
    /// offsets are encoded region-relative here with the trigger at a
    /// nonzero offset).
    #[test]
    fn figure5_reconstruction() {
        // Region-relative encoding: trigger of A at offset 8; A+4 -> 12,
        // A+2 -> 10, A-1 -> 7. Triggers of B, C, D at offset 0.
        let mut rmob: OrderBuffer<RmobEntry> = OrderBuffer::new(64);
        rmob.append(entry(0xA, 8, 1, 0)); // A (pos 0)
        rmob.append(entry(0xB, 0, 2, 1)); // B skips one (A+4)
        rmob.append(entry(0xC, 0, 3, 3)); // C skips A+2, B+6, A-1
        rmob.append(entry(0xD, 0, 4, 0)); // D immediately follows

        let mut pst = Pst::new(16);
        // Each sequence is trained twice: elements predict at counter 2.
        for _ in 0..2 {
            pst.train(
                spatial_index(Pc::new(1), BlockOffset::new(8)),
                &seq(&[(12, 0), (10, 1), (7, 1)]),
            );
            pst.train(
                spatial_index(Pc::new(2), BlockOffset::new(0)),
                &seq(&[(6, 1)]),
            );
            pst.train(
                spatial_index(Pc::new(4), BlockOffset::new(0)),
                &seq(&[(1, 0), (2, 0)]),
            );
        }

        let mut r = Reconstructor::new(0, 64, 2);
        let out = r.produce(16, &rmob, &mut pst, |_, _| {});
        let expect: Vec<BlockAddr> = vec![
            RegionAddr::new(0xA).block_at(BlockOffset::new(8)), // A (slot 0)
            RegionAddr::new(0xA).block_at(BlockOffset::new(12)), // A+4
            RegionAddr::new(0xB).block_at(BlockOffset::new(0)), // B
            RegionAddr::new(0xA).block_at(BlockOffset::new(10)), // A+2
            RegionAddr::new(0xB).block_at(BlockOffset::new(6)), // B+6
            RegionAddr::new(0xA).block_at(BlockOffset::new(7)), // A-1
            RegionAddr::new(0xC).block_at(BlockOffset::new(0)), // C
            RegionAddr::new(0xD).block_at(BlockOffset::new(0)), // D
            RegionAddr::new(0xD).block_at(BlockOffset::new(1)), // D+1
            RegionAddr::new(0xD).block_at(BlockOffset::new(2)), // D+2
        ];
        assert_eq!(out, expect);
        assert_eq!(r.stats.exact, r.stats.attempts());
        assert_eq!(r.stats.dropped_conflict + r.stats.dropped_window, 0);
    }

    #[test]
    fn conflicting_slot_searches_adjacent() {
        let mut rmob: OrderBuffer<RmobEntry> = OrderBuffer::new(8);
        rmob.append(entry(0xA, 0, 1, 0));
        let mut pst = Pst::new(8);
        // Two spatial elements whose deltas name the same slot: (1,0) at
        // slot 1, then from slot 1 delta... make second element collide:
        // (2, delta such that lands on slot 1 again is impossible going
        // forward). Instead collide trigger+spatial: spatial (1,0) -> slot
        // 1, (2,0) -> slot 2, (3, 0) -> slot 3: no conflict. Build a
        // conflict via two sequences is not possible with one region, so
        // collide with slot 0 (occupied by the initial miss): delta chain
        // starting before it cannot happen; instead verify the drop path
        // with a saturated window.
        for _ in 0..2 {
            pst.train(
                spatial_index(Pc::new(1), BlockOffset::new(0)),
                &seq(&[(1, 0), (2, 0)]),
            );
        }
        let mut r = Reconstructor::new(0, 2, 2); // tiny window: cap 2 slots
        let out = r.produce(8, &rmob, &mut pst, |_, _| {});
        // Window holds slots 0..2: initial miss + first spatial element;
        // the second is beyond the window. Draining frees slots, but
        // expansion already consumed the entry.
        assert_eq!(out.len(), 2);
        assert!(r.stats.dropped_window >= 1);
    }

    #[test]
    fn produce_in_small_chunks_resumes() {
        let mut rmob: OrderBuffer<RmobEntry> = OrderBuffer::new(64);
        for i in 0..10 {
            rmob.append(entry(i, 0, 100 + i, 0));
        }
        let mut pst = Pst::new(8);
        let mut r = Reconstructor::new(0, 64, 2);
        let mut all = Vec::new();
        loop {
            let chunk = r.produce(3, &rmob, &mut pst, |_, _| {});
            if chunk.is_empty() {
                break;
            }
            all.extend(chunk);
        }
        assert_eq!(all.len(), 10);
        for (i, b) in all.iter().enumerate() {
            assert_eq!(b.region(), RegionAddr::new(i as u64));
        }
    }

    #[test]
    fn predicted_region_callback_reports_index() {
        let mut rmob: OrderBuffer<RmobEntry> = OrderBuffer::new(8);
        rmob.append(entry(0xA, 0, 1, 0));
        let mut pst = Pst::new(8);
        let idx = spatial_index(Pc::new(1), BlockOffset::new(0));
        pst.train(idx, &seq(&[(5, 0)]));
        pst.train(idx, &seq(&[(5, 0)]));
        let mut seen = Vec::new();
        let mut r = Reconstructor::new(0, 64, 2);
        r.produce(4, &rmob, &mut pst, |region, i| seen.push((region, i)));
        assert_eq!(seen, vec![(RegionAddr::new(0xA), idx)]);
    }

    /// Drives random RMOB/PST streams through the bitmap ring and the
    /// retained deque oracle in lockstep: window contents, cursor state,
    /// ReconStats, and drain order must match exactly after every
    /// expansion and every drain chunk.
    #[test]
    fn bitmap_ring_matches_deque_oracle_under_random_streams() {
        use crate::util::XorShift64;
        use oracle::DequeReconstructor;

        for seed in 0..24u64 {
            let mut rng = XorShift64::new(0x2ECC ^ seed);
            let search = (seed % 5) as usize; // search distances 0..=4
            let capacity = [2usize, 7, 64, 256][(seed % 4) as usize];
            // Random temporal skeleton over a few regions with clustered
            // PCs so PST lookups fire often.
            let mut rmob: OrderBuffer<RmobEntry> = OrderBuffer::new(512);
            for _ in 0..200 {
                rmob.append(entry(
                    rng.below(24),
                    rng.below(32) as u8,
                    1 + rng.below(6),
                    rng.below(5) as u8,
                ));
            }
            // Random spatial sequences, trained twice so elements predict.
            let mut pst_new = Pst::new(32);
            let mut pst_old = Pst::new(32);
            for _ in 0..40 {
                let pc = 1 + rng.below(6);
                let off = rng.below(32) as u8;
                let len = 1 + rng.below(4) as usize;
                let s: Vec<(u8, u8)> = (0..len)
                    .map(|_| (rng.below(32) as u8, rng.below(4) as u8))
                    .collect();
                for _ in 0..2 {
                    pst_new.train(spatial_index(Pc::new(pc), BlockOffset::new(off)), &seq(&s));
                    pst_old.train(spatial_index(Pc::new(pc), BlockOffset::new(off)), &seq(&s));
                }
            }
            let start = rng.below(64);
            let mut ring = Reconstructor::new(start, capacity, search);
            let mut deque = DequeReconstructor::new(start, capacity, search);
            let mut ring_out = std::collections::VecDeque::new();
            let mut deque_out = std::collections::VecDeque::new();
            let mut ring_regions = Vec::new();
            let mut deque_regions = Vec::new();
            for round in 0..120u32 {
                let n = 1 + rng.below(7) as usize;
                let a = ring.produce_into(
                    n,
                    &rmob,
                    &mut pst_new,
                    |r, i| ring_regions.push((r, i)),
                    &mut ring_out,
                );
                let b = deque.produce_into(
                    n,
                    &rmob,
                    &mut pst_old,
                    |r, i| deque_regions.push((r, i)),
                    &mut deque_out,
                );
                let ctx = format!("seed {seed} round {round} (cap {capacity} search {search})");
                assert_eq!(a, b, "appended count diverged: {ctx}");
                assert_eq!(ring_out, deque_out, "drain order diverged: {ctx}");
                assert_eq!(ring.stats, deque.stats, "stats diverged: {ctx}");
                assert_eq!(
                    ring.cursor_state(),
                    deque.cursor_state(),
                    "cursor state diverged: {ctx}"
                );
                assert_eq!(
                    ring.window_snapshot(),
                    deque.window_snapshot(),
                    "window contents (placement slots) diverged: {ctx}"
                );
                if a == 0 {
                    break;
                }
            }
        }
    }

    /// A recycled (reset) bitmap reconstructor must behave exactly like a
    /// fresh one — stale occupancy bits from the previous stream must not
    /// leak into placements, including across capacity changes.
    #[test]
    fn reset_clears_occupancy_exactly() {
        let mut rmob: OrderBuffer<RmobEntry> = OrderBuffer::new(64);
        for i in 0..24 {
            rmob.append(entry(i, (i % 32) as u8, 100 + i, (i % 3) as u8));
        }
        let mut pst = Pst::new(8);
        let mut recycled = Reconstructor::new(0, 64, 2);
        // Leave the window mid-reconstruction with occupied slots.
        recycled.produce_into(5, &rmob, &mut pst, |_, _| {}, &mut VecDeque::new());
        for (cap, search) in [(64usize, 2usize), (16, 1), (256, 4)] {
            recycled.reset(3, cap, search);
            let mut fresh = Reconstructor::new(3, cap, search);
            let mut a = VecDeque::new();
            let mut b = VecDeque::new();
            recycled.produce_into(32, &rmob, &mut pst, |_, _| {}, &mut a);
            fresh.produce_into(32, &rmob, &mut pst, |_, _| {}, &mut b);
            assert_eq!(a, b, "cap {cap} search {search}");
            assert_eq!(recycled.stats, fresh.stats, "cap {cap} search {search}");
            assert_eq!(
                recycled.window_snapshot(),
                fresh.window_snapshot(),
                "cap {cap} search {search}"
            );
        }
    }

    #[test]
    fn stats_fractions() {
        let s = ReconStats {
            exact: 92,
            shifted1: 5,
            shifted2: 2,
            dropped_conflict: 1,
            dropped_window: 0,
        };
        assert_eq!(s.attempts(), 100);
        assert!((s.exact_fraction() - 0.92).abs() < 1e-12);
        assert!((s.placed_fraction() - 0.99).abs() < 1e-12);
        let mut t = ReconStats::default();
        t.merge(&s);
        t.merge(&s);
        assert_eq!(t.attempts(), 200);
    }
}
