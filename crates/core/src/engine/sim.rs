//! The coverage simulator: caches + SVB + prefetcher over a trace.

use stems_memsim::{Hierarchy, ProbeLevel, SystemConfig};
use stems_trace::{Access, Trace};
use stems_types::{BlockAddr, FetchList, FxHashSet};

use crate::util::XorShift64;

use super::{
    AccessEvent, EvictKind, PrefetchSink, Prefetcher, Satisfied, StreamTag, Svb, SvbInsert,
};

/// Counters produced by a coverage run (Figure 9 accounting).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Demand accesses processed.
    pub accesses: u64,
    /// Demand reads processed.
    pub reads: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits (after missing L1 and SVB).
    pub l2_hits: u64,
    /// Off-chip read misses eliminated by prefetching.
    pub covered: u64,
    /// Off-chip read misses suffered.
    pub uncovered: u64,
    /// Erroneously fetched blocks (evicted/invalidated/never used).
    pub overpredictions: u64,
    /// Blocks fetched from off-chip by the prefetcher (bandwidth).
    pub fetches: u64,
    /// Off-chip write misses (not part of read-coverage metrics).
    pub offchip_writes: u64,
    /// Coherence invalidations injected.
    pub invalidations: u64,
}

impl Counters {
    /// Off-chip read misses the un-prefetched run would suffer
    /// (covered + uncovered in this run).
    pub fn offchip_reads(&self) -> u64 {
        self.covered + self.uncovered
    }

    /// Coverage as a fraction of `baseline` off-chip read misses.
    pub fn coverage_vs(&self, baseline: u64) -> f64 {
        if baseline == 0 {
            0.0
        } else {
            self.covered as f64 / baseline as f64
        }
    }

    /// Overpredictions as a fraction of `baseline` off-chip read misses.
    pub fn overprediction_vs(&self, baseline: u64) -> f64 {
        if baseline == 0 {
            0.0
        } else {
            self.overpredictions as f64 / baseline as f64
        }
    }
}

/// Injects coherence invalidations, standing in for the write traffic of
/// the other 15 nodes of the paper's multiprocessor (see DESIGN.md §2).
///
/// Every access, with probability `rate`, one recently touched block is
/// invalidated from the L1/L2/SVB — ending any spatial generation covering
/// it, exactly as a remote write would.
#[derive(Clone, Debug)]
pub struct InvalidationInjector {
    rate: f64,
    rng: XorShift64,
    recent: Vec<BlockAddr>,
    cursor: usize,
}

/// Recently-touched blocks the injector picks victims from. Must stay a
/// power of two: `observe` wraps the cursor with a mask, not a modulo.
const RECENT_CAPACITY: usize = 1024;

impl InvalidationInjector {
    /// Creates an injector firing with probability `rate` per access.
    pub fn new(rate: f64, seed: u64) -> Self {
        InvalidationInjector {
            rate,
            rng: XorShift64::new(seed),
            recent: Vec::with_capacity(RECENT_CAPACITY),
            cursor: 0,
        }
    }

    fn observe(&mut self, block: BlockAddr) {
        if self.recent.len() < RECENT_CAPACITY {
            self.recent.push(block);
        } else {
            self.recent[self.cursor] = block;
            self.cursor = (self.cursor + 1) & (RECENT_CAPACITY - 1);
        }
    }

    fn pick(&mut self) -> Option<BlockAddr> {
        if self.recent.is_empty() || !self.rng.chance(self.rate) {
            return None;
        }
        let i = self.rng.below(self.recent.len() as u64) as usize;
        Some(self.recent[i])
    }
}

/// Per-access outcome reported by [`CoverageSim::step`], consumed by the
/// timing model (which needs to know where each access was satisfied and
/// which prefetches were issued when).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepOutcome {
    /// Where the demand access was satisfied.
    pub satisfied: Satisfied,
    /// Whether it was satisfied by a previously prefetched block (an SVB
    /// hit, or the first touch of an SMS-style L1 prefetch).
    pub prefetched_hit: bool,
    /// Blocks fetched from off-chip by the prefetcher during this step,
    /// inline up to [`FetchList`]'s capacity so the common case performs
    /// no heap allocation.
    pub fetched: FetchList,
}

/// Trace-driven simulator of one node: L1/L2 hierarchy, SVB, and a
/// [`Prefetcher`].
///
/// # Example
///
/// ```
/// use stems_core::engine::{CoverageSim, NullPrefetcher};
/// use stems_core::PrefetchConfig;
/// use stems_memsim::SystemConfig;
/// use stems_trace::Trace;
///
/// let mut t = Trace::new();
/// t.read(0x400, 0x10_0000);
/// t.read(0x400, 0x10_0000);
/// let mut sim = CoverageSim::new(&SystemConfig::small(), &PrefetchConfig::small(), NullPrefetcher);
/// let counters = sim.run(&t);
/// assert_eq!(counters.uncovered, 1); // cold miss, then L1 hit
/// ```
#[derive(Debug)]
pub struct CoverageSim<P> {
    hierarchy: Hierarchy,
    svb: Svb,
    l1_prefetched_unused: FxHashSet<BlockAddr>,
    counters: Counters,
    prefetcher: P,
    /// [`Prefetcher::observes_l1_hits`] resolved once at construction
    /// (the hint is documented state-independent), so neither the scalar
    /// nor the batched path consults the prefetcher per access.
    observes_l1_hits: bool,
    injector: Option<InvalidationInjector>,
    scratch: StepScratch,
}

/// Buffers reused across [`CoverageSim::step`] calls so the per-access
/// path performs no heap allocation in steady state: each step drains
/// them but keeps their capacity.
#[derive(Debug, Default)]
struct StepScratch {
    l1_evicted: Vec<BlockAddr>,
    svb_evictions: Vec<(BlockAddr, StreamTag)>,
    l1_evictions: Vec<BlockAddr>,
}

struct EngineSink<'a> {
    hierarchy: &'a mut Hierarchy,
    svb: &'a mut Svb,
    l1_prefetched_unused: &'a mut FxHashSet<BlockAddr>,
    counters: &'a mut Counters,
    svb_evictions: &'a mut Vec<(BlockAddr, StreamTag)>,
    l1_evictions: &'a mut Vec<BlockAddr>,
    fetched: FetchList,
}

impl PrefetchSink for EngineSink<'_> {
    fn fetch_svb(&mut self, block: BlockAddr, tag: StreamTag) -> bool {
        if self.hierarchy.in_l1(block) || self.hierarchy.in_l2(block) {
            return false;
        }
        // Single-hash SVB admission: residency check and insert share one
        // index probe (this runs for every candidate a stream pumps).
        match self.svb.try_insert(block, tag) {
            SvbInsert::AlreadyResident => false,
            SvbInsert::Inserted(evicted) => {
                self.counters.fetches += 1;
                self.fetched.push(block);
                if let Some((b, t)) = evicted {
                    self.counters.overpredictions += 1;
                    self.svb_evictions.push((b, t));
                }
                true
            }
        }
    }

    fn fetch_l1(&mut self, block: BlockAddr) -> bool {
        if self.hierarchy.in_l1(block) || self.hierarchy.in_l2(block) || self.svb.contains(block) {
            return false;
        }
        self.counters.fetches += 1;
        self.fetched.push(block);
        self.l1_prefetched_unused.insert(block);
        let start = self.l1_evictions.len();
        self.hierarchy.fill_into(block, self.l1_evictions);
        for i in start..self.l1_evictions.len() {
            let evicted = self.l1_evictions[i];
            if self.l1_prefetched_unused.remove(&evicted) {
                self.counters.overpredictions += 1;
            }
        }
        true
    }

    fn flush_stream(&mut self, tag: StreamTag) {
        self.counters.overpredictions += self.svb.flush_tag(tag) as u64;
    }

    fn in_l1(&self, block: BlockAddr) -> bool {
        self.hierarchy.in_l1(block)
    }

    fn in_l2(&self, block: BlockAddr) -> bool {
        self.hierarchy.in_l2(block)
    }

    fn in_svb(&self, block: BlockAddr) -> bool {
        self.svb.contains(block)
    }
}

impl<P: Prefetcher> CoverageSim<P> {
    /// Creates a simulator with empty caches.
    pub fn new(system: &SystemConfig, prefetch: &crate::PrefetchConfig, prefetcher: P) -> Self {
        let observes_l1_hits = prefetcher.observes_l1_hits();
        CoverageSim {
            hierarchy: Hierarchy::new(system),
            svb: Svb::new(prefetch.svb_entries),
            l1_prefetched_unused: stems_types::fx_set_with_capacity(prefetch.svb_entries.max(64)),
            counters: Counters::default(),
            prefetcher,
            observes_l1_hits,
            injector: None,
            scratch: StepScratch::default(),
        }
    }

    /// Enables coherence-invalidation injection at `rate` per access.
    pub fn with_invalidations(mut self, rate: f64, seed: u64) -> Self {
        self.injector = Some(InvalidationInjector::new(rate, seed));
        self
    }

    /// The prefetcher under test.
    pub fn prefetcher(&self) -> &P {
        &self.prefetcher
    }

    /// Mutable access to the prefetcher (for inspecting internal stats).
    pub fn prefetcher_mut(&mut self) -> &mut P {
        &mut self.prefetcher
    }

    /// Counters accumulated so far (call [`CoverageSim::finalize`] first
    /// for end-of-run overprediction accounting).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Processes one access, returning where it was satisfied and which
    /// prefetches were issued.
    ///
    /// This is the scalar wrapper around the same per-access core the
    /// batched [`CoverageSim::run_chunk`] path drives; prefer the chunked
    /// entry points when the accesses are already materialized in a
    /// slice.
    pub fn step(&mut self, access: &Access) -> StepOutcome {
        self.maybe_invalidate();
        self.counters.accesses += 1;
        if access.is_read() {
            self.counters.reads += 1;
        }
        let block = access.addr.block();
        if let Some(inj) = &mut self.injector {
            inj.observe(block);
        }
        let l1_base = self.hierarchy.l1_set_base(block);
        self.step_core(access, block, l1_base, self.observes_l1_hits)
    }

    /// Processes `chunk` in one call, hoisting the per-access overheads
    /// the scalar wrapper pays on every step: the injector presence
    /// branch, the `observes_l1_hits` consult, and the access/read
    /// counter bookkeeping (accumulated locally, committed per chunk).
    /// Each access's block address and L1 set base are decoded ahead of
    /// the per-access core and redeemed via `Hierarchy::probe_at`. (A
    /// chunk-wide pre-decode pass staging them through a scratch vector
    /// was measured 4-10% *slower* — the extra pass and buffer traffic
    /// outweighed any vectorization of the address arithmetic — so the
    /// decode stays per-access, just hoisted out of `step_core`.)
    ///
    /// Counters, prefetcher event order, and RNG streams are identical to
    /// an access-by-access [`CoverageSim::step`] loop over the same
    /// slice; only intermediate `accesses`/`reads` counter values differ
    /// mid-chunk (both are committed by the time the call returns).
    pub fn run_chunk(&mut self, chunk: &[Access]) {
        self.run_chunk_with(chunk, |_, _| {});
    }

    /// [`CoverageSim::run_chunk`] with a per-access observer: `visit` is
    /// called with each access and its [`StepOutcome`] in trace order.
    /// This is how the timing model consumes a batched run.
    pub fn run_chunk_with(
        &mut self,
        chunk: &[Access],
        mut visit: impl FnMut(&Access, &StepOutcome),
    ) {
        let observes_l1_hits = self.observes_l1_hits;
        self.counters.accesses += chunk.len() as u64;
        let mut reads: u64 = 0;
        if self.injector.is_some() {
            for access in chunk {
                reads += access.is_read() as u64;
                self.maybe_invalidate();
                let block = access.addr.block();
                if let Some(inj) = &mut self.injector {
                    inj.observe(block);
                }
                let l1_base = self.hierarchy.l1_set_base(block);
                let out = self.step_core(access, block, l1_base, observes_l1_hits);
                visit(access, &out);
            }
        } else {
            for access in chunk {
                reads += access.is_read() as u64;
                let block = access.addr.block();
                let l1_base = self.hierarchy.l1_set_base(block);
                let out = self.step_core(access, block, l1_base, observes_l1_hits);
                visit(access, &out);
            }
        }
        self.counters.reads += reads;
    }

    /// The per-access core shared by [`CoverageSim::step`] and the
    /// chunked paths: cache/SVB resolution, counter classification, event
    /// delivery, and eviction hooks. Counter bookkeeping for
    /// `accesses`/`reads`, invalidation injection, and the
    /// block/L1-set-base decode (`l1_base` must equal
    /// `hierarchy.l1_set_base(block)`) happen in the callers.
    fn step_core(
        &mut self,
        access: &Access,
        block: BlockAddr,
        l1_base: usize,
        observes_l1_hits: bool,
    ) -> StepOutcome {
        let is_write = !access.is_read();

        self.scratch.l1_evicted.clear();
        let mut prefetched_hit = false;
        // Single-pass probe: the pre-decoded L1 set base resolves the
        // whole SVB/L1/L2 pipeline, with the SVB consulted (exactly once)
        // only after the L1 missed, and evictions appended to scratch.
        let Self {
            hierarchy,
            svb,
            scratch,
            ..
        } = self;
        let mut svb_tag = None;
        let level = hierarchy.probe_at(
            l1_base,
            block,
            is_write,
            || {
                if svb.is_empty() {
                    return false;
                }
                match svb.take(block) {
                    Some(tag) => {
                        svb_tag = Some(tag);
                        true
                    }
                    None => false,
                }
            },
            &mut scratch.l1_evicted,
        );
        let satisfied = match level {
            ProbeLevel::L1 => {
                self.counters.l1_hits += 1;
                // The fast path pays the prefetched-block hash probe only
                // when SMS-style L1 prefetches are actually outstanding.
                if !self.l1_prefetched_unused.is_empty() && self.l1_prefetched_unused.remove(&block)
                {
                    prefetched_hit = true;
                    if access.is_read() {
                        // First use of an SMS-style prefetched block: an
                        // off-chip miss avoided.
                        self.counters.covered += 1;
                    }
                }
                Satisfied::L1
            }
            ProbeLevel::Svb => {
                prefetched_hit = true;
                if access.is_read() {
                    self.counters.covered += 1;
                }
                Satisfied::Svb(svb_tag.expect("probe reported an SVB consumption"))
            }
            ProbeLevel::L2 => {
                self.counters.l2_hits += 1;
                Satisfied::L2
            }
            ProbeLevel::Memory => {
                if access.is_read() {
                    self.counters.uncovered += 1;
                } else {
                    self.counters.offchip_writes += 1;
                }
                Satisfied::OffChip
            }
        };

        // An L1 hit evicts nothing and — for predictors that train only
        // on miss traffic — needs no event delivery at all: the fast path
        // ends here.
        if satisfied == Satisfied::L1 && !observes_l1_hits {
            return StepOutcome {
                satisfied,
                prefetched_hit,
                fetched: FetchList::new(),
            };
        }

        for i in 0..self.scratch.l1_evicted.len() {
            let b = self.scratch.l1_evicted[i];
            if self.l1_prefetched_unused.remove(&b) {
                self.counters.overpredictions += 1;
            }
            self.prefetcher.on_l1_evict(b, EvictKind::Replacement);
        }

        let ev = AccessEvent {
            pc: access.pc,
            block,
            is_write,
            satisfied,
        };
        let mut sink = EngineSink {
            hierarchy: &mut self.hierarchy,
            svb: &mut self.svb,
            l1_prefetched_unused: &mut self.l1_prefetched_unused,
            counters: &mut self.counters,
            svb_evictions: &mut self.scratch.svb_evictions,
            l1_evictions: &mut self.scratch.l1_evictions,
            fetched: FetchList::new(),
        };
        self.prefetcher.on_access(&ev, &mut sink);
        let fetched = sink.fetched;
        for i in 0..self.scratch.svb_evictions.len() {
            let (b, t) = self.scratch.svb_evictions[i];
            self.prefetcher.on_svb_evict(b, t);
        }
        self.scratch.svb_evictions.clear();
        for i in 0..self.scratch.l1_evictions.len() {
            let b = self.scratch.l1_evictions[i];
            self.prefetcher.on_l1_evict(b, EvictKind::Replacement);
        }
        self.scratch.l1_evictions.clear();
        StepOutcome {
            satisfied,
            prefetched_hit,
            fetched,
        }
    }

    fn maybe_invalidate(&mut self) {
        let Some(inj) = &mut self.injector else {
            return;
        };
        let Some(block) = inj.pick() else {
            return;
        };
        self.counters.invalidations += 1;
        if self.hierarchy.invalidate(block) {
            if self.l1_prefetched_unused.remove(&block) {
                self.counters.overpredictions += 1;
            }
            self.prefetcher.on_l1_evict(block, EvictKind::Coherence);
        }
        if let Some(tag) = self.svb.take(block) {
            self.counters.overpredictions += 1;
            self.prefetcher.on_svb_evict(block, tag);
        }
    }

    /// Counts blocks still sitting unconsumed in the SVB or tagged in the
    /// L1 as overpredictions. Call once at end of run.
    pub fn finalize(&mut self) -> Counters {
        self.counters.overpredictions += self.svb.drain_all() as u64;
        self.counters.overpredictions += self.l1_prefetched_unused.len() as u64;
        self.l1_prefetched_unused.clear();
        self.counters
    }

    /// Runs the whole trace through the batched path and finalizes.
    pub fn run(&mut self, trace: &Trace) -> Counters {
        self.run_chunk(trace.as_slice());
        self.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NullPrefetcher;
    use crate::PrefetchConfig;

    fn sys() -> SystemConfig {
        SystemConfig::small()
    }

    fn cfg() -> PrefetchConfig {
        PrefetchConfig::small()
    }

    #[test]
    fn cold_misses_are_uncovered() {
        let mut t = Trace::new();
        for i in 0..10u64 {
            t.read(0x400, i * 1024 * 1024);
        }
        let c = CoverageSim::new(&sys(), &cfg(), NullPrefetcher).run(&t);
        assert_eq!(c.uncovered, 10);
        assert_eq!(c.covered, 0);
        assert_eq!(c.reads, 10);
    }

    #[test]
    fn repeat_accesses_hit_l1() {
        let mut t = Trace::new();
        t.read(1, 0x1000);
        t.read(1, 0x1000);
        t.read(1, 0x1010); // same block
        let c = CoverageSim::new(&sys(), &cfg(), NullPrefetcher).run(&t);
        assert_eq!(c.uncovered, 1);
        assert_eq!(c.l1_hits, 2);
    }

    /// A prefetcher that fetches block+1 into the SVB on every off-chip
    /// read miss (degenerate next-line prefetcher) — exercises the SVB
    /// cover path.
    struct NextLine;

    impl Prefetcher for NextLine {
        fn name(&self) -> &str {
            "next-line"
        }
        fn on_access(&mut self, ev: &AccessEvent, sink: &mut dyn PrefetchSink) {
            if ev.satisfied == Satisfied::OffChip && !ev.is_write {
                if let Some(next) = ev.block.offset_by(1) {
                    sink.fetch_svb(next, StreamTag(0));
                }
            }
        }
    }

    #[test]
    fn svb_hit_counts_as_covered() {
        let mut t = Trace::new();
        t.read(1, 0); // miss, prefetches block 1
        t.read(1, 64); // SVB hit -> covered
        let c = CoverageSim::new(&sys(), &cfg(), NextLine).run(&t);
        assert_eq!(c.uncovered, 1);
        assert_eq!(c.covered, 1);
        assert_eq!(c.fetches, 1);
        assert_eq!(c.overpredictions, 0);
        assert_eq!(c.offchip_reads(), 2);
    }

    #[test]
    fn unused_prefetch_counts_as_overprediction() {
        let mut t = Trace::new();
        t.read(1, 0); // prefetches block 1, never used
        let c = CoverageSim::new(&sys(), &cfg(), NextLine).run(&t);
        assert_eq!(c.covered, 0);
        assert_eq!(c.overpredictions, 1);
    }

    #[test]
    fn fetches_are_filtered_by_residency() {
        let mut t = Trace::new();
        t.read(1, 64); // miss on block 1; prefetches block 2
        t.read(1, 0); // miss on block 0; prefetch of block 1 refused (L1)
        let mut sim = CoverageSim::new(&sys(), &cfg(), NextLine);
        let c = sim.run(&t);
        assert_eq!(c.fetches, 1);
        assert_eq!(c.overpredictions, 1); // block 2 never consumed
    }

    #[test]
    fn coverage_ratios() {
        let c = Counters {
            covered: 30,
            uncovered: 70,
            overpredictions: 20,
            ..Counters::default()
        };
        assert!((c.coverage_vs(100) - 0.3).abs() < 1e-12);
        assert!((c.overprediction_vs(100) - 0.2).abs() < 1e-12);
        assert_eq!(c.coverage_vs(0), 0.0);
    }

    /// A deterministic synthetic trace mixing spatial region walks,
    /// recurring pointer-chase sequences, writes, and noise — enough to
    /// exercise every predictor's hot path.
    fn golden_trace() -> Trace {
        let mut t = Trace::new();
        let mut rng = XorShift64::new(0xD1CE);
        for _rep in 0..3 {
            for _visit in 0..400u64 {
                let region = rng.below(64);
                let len = 1 + rng.below(6);
                let stride = 1 + region % 3;
                for k in 0..len {
                    let off = (k * stride) % 32;
                    let addr = region * 2048 + off * 64 + rng.below(2) * 8;
                    let pc = 0x400 + (region % 7) * 4;
                    if rng.chance(0.2) {
                        t.write(pc, addr);
                    } else {
                        t.read(pc, addr);
                    }
                }
            }
        }
        t
    }

    /// Runs every predictor over `trace` through the batched session
    /// path, printing each row in golden-table form (regenerate an
    /// expected table by running with `--nocapture` and copying the
    /// printed values).
    fn golden_rows(
        sys: &SystemConfig,
        cfg: &PrefetchConfig,
        trace: &Trace,
        inval: (f64, u64),
    ) -> Vec<(&'static str, [u64; 10])> {
        use crate::session::{Predictor, Session};
        Predictor::all()
            .into_iter()
            .map(|p| {
                let c = Session::builder(sys)
                    .prefetch(cfg)
                    .predictor(p)
                    .invalidations(inval.0, inval.1)
                    .run(trace);
                let row = [
                    c.accesses,
                    c.reads,
                    c.l1_hits,
                    c.l2_hits,
                    c.covered,
                    c.uncovered,
                    c.overpredictions,
                    c.fetches,
                    c.offchip_writes,
                    c.invalidations,
                ];
                println!("(\"{}\", {row:?}),", p.name());
                (p.name(), row)
            })
            .collect()
    }

    /// Golden counters for every predictor over [`golden_trace`]: guards
    /// the batched session path (and any engine refactor) against
    /// behavioral drift. Regenerate by running with `--nocapture` and
    /// copying the printed values.
    #[test]
    fn golden_counters_are_stable() {
        let expected: [(&str, [u64; 10]); 6] = [
            ("none", [4088, 3237, 183, 2562, 0, 1056, 0, 0, 287, 39]),
            (
                "stride",
                [4088, 3237, 183, 2562, 66, 990, 295, 377, 271, 39],
            ),
            ("TMS", [4088, 3237, 183, 2562, 86, 970, 653, 758, 268, 39]),
            ("SMS", [4088, 3237, 401, 2289, 193, 1095, 574, 813, 303, 39]),
            ("STeMS", [4088, 3237, 183, 2562, 99, 957, 741, 865, 262, 39]),
            // The TMS+SMS row moved by 4 overpredictions/fetches when the
            // SVB gained eviction-order fidelity (stale lazy-deletion FIFO
            // entries can no longer victimize a re-inserted block); every
            // other row is byte-identical to the pre-fix goldens.
            (
                "TMS+SMS",
                [4088, 3237, 183, 2562, 169, 887, 1359, 1573, 242, 39],
            ),
        ];
        let golden = golden_rows(&sys(), &cfg(), &golden_trace(), (0.01, 42));
        for ((name, got), (ename, e)) in golden.iter().zip(expected.iter()) {
            assert_eq!(name, ename);
            assert_eq!(got, e, "{name}: counters drifted from golden values");
        }
    }

    /// A trace that keeps the hierarchy under pressure: fresh regions
    /// sharing one layout (spatial-only stream fodder), a hot small set
    /// driving L1-hit fast-path traffic, writes, and a repeating
    /// scattered traversal for the temporal predictors.
    fn pressure_trace() -> Trace {
        let mut t = Trace::new();
        let mut rng = XorShift64::new(0xBEEF);
        for r in 0..300u64 {
            let base = (1u64 << 33) + r * 2048;
            for (i, &o) in [0u64, 4, 11, 23].iter().enumerate() {
                let addr = base + o * 64;
                let pc = 0x900 + i as u64;
                if rng.chance(0.15) {
                    t.write(pc, addr);
                } else {
                    t.read(pc, addr);
                }
            }
            for _ in 0..3 {
                t.read(0x400, rng.below(16) * 64);
            }
        }
        for _ in 0..2 {
            for r in 0..64u64 {
                let base = ((r * 2654435761) % (1 << 14)) * 2048 + (1 << 32);
                for (i, &o) in [0u64, 5, 9].iter().enumerate() {
                    t.read(0x700 + i as u64, base + o * 64);
                }
            }
        }
        t
    }

    /// Second golden configuration: a tiny 1KB 2-way L1 over a 16KB L2,
    /// invalidations enabled, spatial-only streams active — the L1-hit
    /// fast path and the eviction/generation machinery run under constant
    /// pressure. Guards the probe pipeline exactly like
    /// [`golden_counters_are_stable`] guards the default geometry.
    /// Regenerate with `--nocapture` and copy the printed rows.
    #[test]
    fn golden_counters_under_pressure_are_stable() {
        use stems_memsim::CacheConfig;

        let sys = SystemConfig {
            l1: CacheConfig {
                size_bytes: 1024,
                associativity: 2,
            },
            l2: CacheConfig {
                size_bytes: 16 * 1024,
                associativity: 4,
            },
            ..SystemConfig::default()
        };
        let cfg = PrefetchConfig::small();
        assert!(cfg.spatial_only_streams, "pressure config needs them on");
        let expected: [(&str, [u64; 10]); 6] = [
            ("none", [2484, 2321, 524, 296, 0, 1501, 0, 0, 163, 52]),
            (
                "stride",
                [2484, 2321, 524, 296, 253, 1248, 72, 333, 155, 52],
            ),
            ("TMS", [2484, 2321, 524, 296, 193, 1308, 73, 266, 163, 52]),
            ("SMS", [2484, 2321, 1667, 296, 1023, 478, 1, 1144, 43, 52]),
            ("STeMS", [2484, 2321, 524, 296, 947, 554, 67, 1116, 61, 52]),
            (
                "TMS+SMS",
                [2484, 2321, 524, 296, 1089, 412, 68, 1277, 43, 52],
            ),
        ];
        let golden = golden_rows(&sys, &cfg, &pressure_trace(), (0.02, 7));
        for ((name, got), (ename, e)) in golden.iter().zip(expected.iter()) {
            assert_eq!(name, ename);
            assert_eq!(got, e, "{name}: counters drifted from golden values");
        }
    }

    #[test]
    fn invalidation_injection_invalidates_and_counts() {
        let mut t = Trace::new();
        for i in 0..2000u64 {
            t.read(1, (i % 16) * 64);
        }
        let mut sim = CoverageSim::new(&sys(), &cfg(), NullPrefetcher).with_invalidations(0.05, 7);
        let c = sim.run(&t);
        assert!(c.invalidations > 0);
        // Invalidations force re-misses of the 16-block working set.
        assert!(c.uncovered > 16);
    }
}
