//! The streamed value buffer (SVB).
//!
//! A small fully-associative buffer (64 entries, Section 4.3) holding
//! prefetched blocks next to the L1. Blocks move to the L1 when consumed;
//! capacity evictions are FIFO and count as overpredictions at the engine.

use std::collections::VecDeque;

use stems_types::{fx_map_with_capacity, BlockAddr, FxHashMap};

use super::StreamTag;

/// The streamed value buffer: block tags plus owning-stream tags.
#[derive(Clone, Debug)]
pub struct Svb {
    capacity: usize,
    fifo: VecDeque<(BlockAddr, StreamTag)>,
    index: FxHashMap<BlockAddr, StreamTag>,
    /// Resident blocks per stream tag: lets `flush_tag` skip the index
    /// scan entirely when the victimized stream has nothing in flight —
    /// the common case on every stream start.
    per_tag: [u32; 256],
}

impl Svb {
    /// Creates an empty SVB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "SVB capacity must be nonzero");
        Svb {
            capacity,
            fifo: VecDeque::with_capacity(capacity),
            index: fx_map_with_capacity(capacity),
            per_tag: [0; 256],
        }
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the SVB is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `block` is resident.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.index.contains_key(&block)
    }

    /// Inserts a prefetched block; returns the FIFO-evicted victim if the
    /// buffer was full. Inserting a resident block is a no-op.
    pub fn insert(&mut self, block: BlockAddr, tag: StreamTag) -> Option<(BlockAddr, StreamTag)> {
        if self.index.contains_key(&block) {
            return None;
        }
        let mut evicted = None;
        if self.index.len() == self.capacity {
            // Oldest entry still resident (lazy deletion: skip stale).
            while let Some((b, t)) = self.fifo.pop_front() {
                if let Some(vt) = self.index.remove(&b) {
                    self.per_tag[vt.0 as usize] -= 1;
                    evicted = Some((b, t));
                    break;
                }
            }
        }
        self.index.insert(block, tag);
        self.per_tag[tag.0 as usize] += 1;
        self.fifo.push_back((block, tag));
        evicted
    }

    /// Consumes `block` (prefetch hit), returning its stream tag.
    pub fn take(&mut self, block: BlockAddr) -> Option<StreamTag> {
        // FIFO entry is removed lazily on rotation.
        let tag = self.index.remove(&block)?;
        self.per_tag[tag.0 as usize] -= 1;
        Some(tag)
    }

    /// Removes every block owned by `tag`, returning how many were
    /// dropped (stream reallocation flush; callers only account counts).
    pub fn flush_tag(&mut self, tag: StreamTag) -> usize {
        if self.per_tag[tag.0 as usize] == 0 {
            return 0;
        }
        let before = self.index.len();
        self.index.retain(|_, &mut t| t != tag);
        let removed = before - self.index.len();
        debug_assert_eq!(
            removed, self.per_tag[tag.0 as usize] as usize,
            "per-tag count out of sync with index"
        );
        self.per_tag[tag.0 as usize] = 0;
        removed
    }

    /// Removes all blocks, returning how many were resident (end-of-run
    /// accounting of never-consumed prefetches).
    pub fn drain_all(&mut self) -> usize {
        let count = self.index.len();
        self.fifo.clear();
        self.index.clear();
        self.per_tag = [0; 256];
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> BlockAddr {
        BlockAddr::new(n)
    }

    #[test]
    fn insert_take_round_trip() {
        let mut s = Svb::new(4);
        assert_eq!(s.insert(b(1), StreamTag(0)), None);
        assert!(s.contains(b(1)));
        assert_eq!(s.take(b(1)), Some(StreamTag(0)));
        assert!(!s.contains(b(1)));
        assert_eq!(s.take(b(1)), None);
    }

    #[test]
    fn fifo_eviction_when_full() {
        let mut s = Svb::new(2);
        s.insert(b(1), StreamTag(0));
        s.insert(b(2), StreamTag(1));
        let evicted = s.insert(b(3), StreamTag(2));
        assert_eq!(evicted, Some((b(1), StreamTag(0))));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut s = Svb::new(2);
        s.insert(b(1), StreamTag(0));
        assert_eq!(s.insert(b(1), StreamTag(5)), None);
        assert_eq!(s.take(b(1)), Some(StreamTag(0)));
    }

    #[test]
    fn lazy_deletion_skips_taken_entries() {
        let mut s = Svb::new(2);
        s.insert(b(1), StreamTag(0));
        s.insert(b(2), StreamTag(0));
        s.take(b(1)); // stale FIFO entry for 1 remains
                      // Inserting two more should evict 2 (the oldest *resident*).
        let e = s.insert(b(3), StreamTag(1));
        assert_eq!(e, None); // room freed by take
        let e = s.insert(b(4), StreamTag(1));
        assert_eq!(e, Some((b(2), StreamTag(0))));
    }

    #[test]
    fn flush_tag_removes_only_that_stream() {
        let mut s = Svb::new(8);
        s.insert(b(1), StreamTag(0));
        s.insert(b(2), StreamTag(1));
        s.insert(b(3), StreamTag(0));
        assert_eq!(s.flush_tag(StreamTag(0)), 2);
        assert!(!s.contains(b(1)) && !s.contains(b(3)));
        assert!(s.contains(b(2)));
        assert_eq!(s.flush_tag(StreamTag(0)), 0, "already flushed");
    }

    #[test]
    fn drain_all_empties() {
        let mut s = Svb::new(4);
        s.insert(b(1), StreamTag(0));
        s.insert(b(2), StreamTag(1));
        assert_eq!(s.drain_all(), 2);
        assert!(s.is_empty());
        assert_eq!(s.drain_all(), 0);
    }
}
