//! The streamed value buffer (SVB).
//!
//! A small fully-associative buffer (64 entries, Section 4.3) holding
//! prefetched blocks next to the L1. Blocks move to the L1 when consumed;
//! capacity evictions are FIFO and count as overpredictions at the engine.

use std::collections::VecDeque;

use stems_types::{fx_map_with_capacity, BlockAddr, FxHashMap};

use super::StreamTag;

/// Outcome of [`Svb::try_insert`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SvbInsert {
    /// The block was already resident; nothing changed.
    AlreadyResident,
    /// The block was admitted, evicting the carried victim if the buffer
    /// was full.
    Inserted(Option<(BlockAddr, StreamTag)>),
}

/// The streamed value buffer: block tags plus owning-stream tags.
///
/// Eviction is FIFO over *residencies*, not over raw insertions: each
/// admission stamps a unique sequence number into both the index entry
/// and its FIFO entry, and the capacity-eviction walk only honors a
/// FIFO entry whose sequence still matches the index. A block that was
/// consumed ([`Svb::take`]) and later re-inserted gets a fresh
/// sequence, so the stale lazy-deletion FIFO entry left by the take can
/// never victimize the re-inserted block nor leak its old stream tag to
/// the eviction report (the eviction-order fidelity bug the PR 3
/// residency oracle pinned; see README "Design notes").
#[derive(Clone, Debug)]
pub struct Svb {
    capacity: usize,
    fifo: VecDeque<(BlockAddr, u64)>,
    index: FxHashMap<BlockAddr, (StreamTag, u64)>,
    /// Admission stamp source; unique per [`Svb::try_insert`] admission.
    next_seq: u64,
    /// Resident blocks per stream tag: lets `flush_tag` skip the index
    /// scan entirely when the victimized stream has nothing in flight —
    /// the common case on every stream start.
    per_tag: [u32; 256],
}

impl Svb {
    /// Creates an empty SVB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "SVB capacity must be nonzero");
        Svb {
            capacity,
            fifo: VecDeque::with_capacity(capacity),
            index: fx_map_with_capacity(capacity),
            next_seq: 0,
            per_tag: [0; 256],
        }
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the SVB is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `block` is resident.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.index.contains_key(&block)
    }

    /// Resident blocks owned by `tag` (the fast-reject count behind
    /// [`Svb::flush_tag`]; exposed for tests and diagnostics).
    pub fn tag_count(&self, tag: StreamTag) -> usize {
        self.per_tag[tag.0 as usize] as usize
    }

    /// Inserts a prefetched block; returns the FIFO-evicted victim if the
    /// buffer was full. Inserting a resident block is a no-op.
    pub fn insert(&mut self, block: BlockAddr, tag: StreamTag) -> Option<(BlockAddr, StreamTag)> {
        match self.try_insert(block, tag) {
            SvbInsert::AlreadyResident => None,
            SvbInsert::Inserted(evicted) => evicted,
        }
    }

    /// Single-hash [`Svb::insert`] that distinguishes "was already
    /// resident" from "inserted without eviction" — the engine's
    /// fetch-residency filter needs that distinction and previously paid
    /// a separate `contains` probe for it.
    ///
    /// The capacity eviction walks the lazy-deletion FIFO *after* the
    /// new entry is admitted. Each admission carries a unique sequence
    /// stamp, and the walk only honors a FIFO entry whose stamp still
    /// matches the index — a stale entry (its block was consumed, and
    /// possibly re-admitted under a new stamp) is dropped, never
    /// victimized through. The new entry itself sits at the FIFO back
    /// behind at least one older resident entry (over-capacity
    /// guarantees one), so the walk always terminates on a true victim
    /// and reports that victim's *current* stream tag.
    pub fn try_insert(&mut self, block: BlockAddr, tag: StreamTag) -> SvbInsert {
        use std::collections::hash_map::Entry;
        match self.index.entry(block) {
            Entry::Occupied(_) => SvbInsert::AlreadyResident,
            Entry::Vacant(slot) => {
                let seq = self.next_seq;
                self.next_seq += 1;
                slot.insert((tag, seq));
                self.per_tag[tag.0 as usize] += 1;
                self.fifo.push_back((block, seq));
                let mut evicted = None;
                if self.index.len() > self.capacity {
                    // Oldest *current* residency: entries whose stamp no
                    // longer matches the index are lazy-deleted leftovers.
                    while let Some((b, s)) = self.fifo.pop_front() {
                        match self.index.get(&b) {
                            Some(&(vt, vs)) if vs == s => {
                                self.index.remove(&b);
                                self.per_tag[vt.0 as usize] -= 1;
                                evicted = Some((b, vt));
                                break;
                            }
                            _ => continue, // stale: consumed or re-admitted
                        }
                    }
                }
                SvbInsert::Inserted(evicted)
            }
        }
    }

    /// Consumes `block` (prefetch hit), returning its stream tag.
    pub fn take(&mut self, block: BlockAddr) -> Option<StreamTag> {
        // The FIFO entry stays behind, but its admission stamp dies with
        // the index entry: a later eviction walk drops it, and a
        // re-insert of the same block gets a fresh stamp — the stale
        // entry can never victimize the new residency.
        let (tag, _seq) = self.index.remove(&block)?;
        self.per_tag[tag.0 as usize] -= 1;
        Some(tag)
    }

    /// Removes every block owned by `tag`, returning how many were
    /// dropped (stream reallocation flush; callers only account counts).
    pub fn flush_tag(&mut self, tag: StreamTag) -> usize {
        if self.per_tag[tag.0 as usize] == 0 {
            return 0;
        }
        let before = self.index.len();
        self.index.retain(|_, &mut (t, _)| t != tag);
        let removed = before - self.index.len();
        debug_assert_eq!(
            removed, self.per_tag[tag.0 as usize] as usize,
            "per-tag count out of sync with index"
        );
        self.per_tag[tag.0 as usize] = 0;
        removed
    }

    /// Removes all blocks, returning how many were resident (end-of-run
    /// accounting of never-consumed prefetches).
    pub fn drain_all(&mut self) -> usize {
        let count = self.index.len();
        self.fifo.clear();
        self.index.clear();
        self.per_tag = [0; 256];
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> BlockAddr {
        BlockAddr::new(n)
    }

    #[test]
    fn insert_take_round_trip() {
        let mut s = Svb::new(4);
        assert_eq!(s.insert(b(1), StreamTag(0)), None);
        assert!(s.contains(b(1)));
        assert_eq!(s.take(b(1)), Some(StreamTag(0)));
        assert!(!s.contains(b(1)));
        assert_eq!(s.take(b(1)), None);
    }

    #[test]
    fn fifo_eviction_when_full() {
        let mut s = Svb::new(2);
        s.insert(b(1), StreamTag(0));
        s.insert(b(2), StreamTag(1));
        let evicted = s.insert(b(3), StreamTag(2));
        assert_eq!(evicted, Some((b(1), StreamTag(0))));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut s = Svb::new(2);
        s.insert(b(1), StreamTag(0));
        assert_eq!(s.insert(b(1), StreamTag(5)), None);
        assert_eq!(s.take(b(1)), Some(StreamTag(0)));
    }

    #[test]
    fn lazy_deletion_skips_taken_entries() {
        let mut s = Svb::new(2);
        s.insert(b(1), StreamTag(0));
        s.insert(b(2), StreamTag(0));
        s.take(b(1)); // stale FIFO entry for 1 remains
                      // Inserting two more should evict 2 (the oldest *resident*).
        let e = s.insert(b(3), StreamTag(1));
        assert_eq!(e, None); // room freed by take
        let e = s.insert(b(4), StreamTag(1));
        assert_eq!(e, Some((b(2), StreamTag(0))));
    }

    #[test]
    fn flush_tag_removes_only_that_stream() {
        let mut s = Svb::new(8);
        s.insert(b(1), StreamTag(0));
        s.insert(b(2), StreamTag(1));
        s.insert(b(3), StreamTag(0));
        assert_eq!(s.flush_tag(StreamTag(0)), 2);
        assert!(!s.contains(b(1)) && !s.contains(b(3)));
        assert!(s.contains(b(2)));
        assert_eq!(s.flush_tag(StreamTag(0)), 0, "already flushed");
    }

    /// `try_insert` must distinguish residency from admission, and its
    /// post-insert eviction walk must drop a stale FIFO entry naming the
    /// block being re-inserted (the admission stamp no longer matches)
    /// instead of victimizing the fresh residency through it.
    #[test]
    fn try_insert_skips_own_stale_entry_in_eviction_walk() {
        let mut s = Svb::new(2);
        assert_eq!(s.try_insert(b(1), StreamTag(0)), SvbInsert::Inserted(None));
        s.insert(b(2), StreamTag(1));
        assert_eq!(s.try_insert(b(2), StreamTag(9)), SvbInsert::AlreadyResident);
        s.take(b(1)); // stale FIFO entry for 1 remains at the front
        s.insert(b(3), StreamTag(2)); // full again: [stale 1, 2, 3]
                                      // Re-inserting 1 at capacity: the walk must pop its own stale
                                      // entry without victimizing the fresh 1, and evict 2 instead.
        assert_eq!(
            s.try_insert(b(1), StreamTag(3)),
            SvbInsert::Inserted(Some((b(2), StreamTag(1))))
        );
        assert!(s.contains(b(1)) && s.contains(b(3)) && !s.contains(b(2)));
    }

    #[test]
    fn drain_all_empties() {
        let mut s = Svb::new(4);
        s.insert(b(1), StreamTag(0));
        s.insert(b(2), StreamTag(1));
        assert_eq!(s.drain_all(), 2);
        assert!(s.is_empty());
        assert_eq!(s.drain_all(), 0);
    }

    /// A naive reimplementation of the SVB with plain `Vec`s and linear
    /// scans everywhere — no hash index, no `per_tag` fast path, no
    /// sequence stamps — used as a differential oracle. Instead of the
    /// production buffer's lazy stamp-mismatch deletion it repairs the
    /// FIFO eagerly at insert time (dropping any stale entry naming the
    /// re-inserted block), which is observably equivalent: in both, a
    /// capacity eviction victimizes the oldest *current residency* and
    /// reports that victim's current tag.
    struct SvbModel {
        capacity: usize,
        /// Insertion order, stale entries included (the FIFO).
        fifo: Vec<(u64, u8)>,
        /// Currently resident `(block, tag)` pairs.
        resident: Vec<(u64, u8)>,
    }

    impl SvbModel {
        fn new(capacity: usize) -> Self {
            SvbModel {
                capacity,
                fifo: Vec::new(),
                resident: Vec::new(),
            }
        }

        fn insert(&mut self, block: u64, tag: u8) -> Option<(u64, u8)> {
            if self.resident.iter().any(|&(rb, _)| rb == block) {
                return None;
            }
            // Insert-time FIFO repair: a consumed-then-re-inserted block
            // must not be reachable through its old entry.
            self.fifo.retain(|&(fb, _)| fb != block);
            let mut evicted = None;
            if self.resident.len() == self.capacity {
                while !self.fifo.is_empty() {
                    let (fb, ft) = self.fifo.remove(0);
                    if let Some(pos) = self.resident.iter().position(|&(rb, _)| rb == fb) {
                        self.resident.remove(pos);
                        evicted = Some((fb, ft));
                        break;
                    }
                }
            }
            self.resident.push((block, tag));
            self.fifo.push((block, tag));
            evicted
        }

        fn take(&mut self, block: u64) -> Option<u8> {
            // FIFO entry removed lazily, exactly like the real buffer.
            let pos = self.resident.iter().position(|&(rb, _)| rb == block)?;
            Some(self.resident.remove(pos).1)
        }

        fn flush_tag(&mut self, tag: u8) -> usize {
            let before = self.resident.len();
            self.resident.retain(|&(_, rt)| rt != tag);
            before - self.resident.len()
        }

        fn drain_all(&mut self) -> usize {
            let count = self.resident.len();
            self.resident.clear();
            self.fifo.clear();
            count
        }

        fn count_tag(&self, tag: u8) -> usize {
            self.resident.iter().filter(|&&(_, rt)| rt == tag).count()
        }
    }

    /// Pins the eviction-order fidelity fix for the lazy-deletion corner
    /// the residency oracle found (PR 3): a block consumed and
    /// re-inserted leaves a stale FIFO entry ahead of its fresh one. The
    /// admission stamp makes that entry dead — a capacity eviction must
    /// walk past it, victimize the oldest *current* residency instead,
    /// and report that victim's current tag, never the stale one.
    #[test]
    fn reinserted_block_can_be_victimized_through_stale_fifo_entry() {
        let mut s = Svb::new(3);
        s.insert(b(1), StreamTag(0));
        s.insert(b(2), StreamTag(1));
        s.take(b(1)); // stale FIFO entry for 1 remains at the front
        s.insert(b(3), StreamTag(2));
        s.insert(b(1), StreamTag(3)); // re-inserted: buffer full again
        let evicted = s.insert(b(4), StreamTag(4));
        assert_eq!(
            evicted,
            Some((b(2), StreamTag(1))),
            "the oldest current residency is the victim, with its current tag"
        );
        assert!(
            s.contains(b(1)),
            "the re-inserted block must survive its stale FIFO entry"
        );
        assert_eq!(
            s.flush_tag(StreamTag(3)),
            1,
            "the re-inserted block is resident under its new tag"
        );
        assert_eq!(s.flush_tag(StreamTag(0)), 0, "the stale tag owns nothing");
    }

    /// Per-tag residency oracle: under random insert / take / flush /
    /// drain interleavings, `flush_tag` and `drain_all` counts (and the
    /// fast-reject `per_tag` table behind them) must match a linear-scan
    /// model exactly — `flush_tag`'s early-out is only correct if
    /// `per_tag` never goes stale across lazy FIFO deletion.
    #[test]
    fn per_tag_residency_matches_linear_scan_oracle() {
        use crate::util::XorShift64;

        for seed in 0..16u64 {
            let mut rng = XorShift64::new(0x5B_B0A7 ^ (seed << 8));
            let capacity = 1 + rng.below(12) as usize;
            let mut svb = Svb::new(capacity);
            let mut model = SvbModel::new(capacity);
            for step in 0..3000u32 {
                let block = rng.below(24);
                let tag = rng.below(6) as u8;
                match rng.below(12) {
                    0..=5 => {
                        let got = svb.insert(b(block), StreamTag(tag));
                        let want = model.insert(block, tag);
                        assert_eq!(
                            got,
                            want.map(|(eb, et)| (b(eb), StreamTag(et))),
                            "insert eviction diverged (seed {seed}, step {step})"
                        );
                    }
                    6..=8 => {
                        let got = svb.take(b(block));
                        let want = model.take(block).map(StreamTag);
                        assert_eq!(got, want, "take diverged (seed {seed}, step {step})");
                    }
                    9..=10 => {
                        let got = svb.flush_tag(StreamTag(tag));
                        let want = model.flush_tag(tag);
                        assert_eq!(got, want, "flush_tag diverged (seed {seed}, step {step})");
                    }
                    _ => {
                        if rng.chance(0.1) {
                            let got = svb.drain_all();
                            let want = model.drain_all();
                            assert_eq!(got, want, "drain_all diverged (seed {seed}, step {step})");
                        }
                    }
                }
                assert_eq!(svb.len(), model.resident.len(), "seed {seed}, step {step}");
                assert_eq!(
                    svb.contains(b(block)),
                    model.resident.iter().any(|&(rb, _)| rb == block),
                    "residency diverged (seed {seed}, step {step})"
                );
                for t in 0..6u8 {
                    assert_eq!(
                        svb.per_tag[t as usize] as usize,
                        model.count_tag(t),
                        "per-tag count stale for tag {t} (seed {seed}, step {step})"
                    );
                }
            }
        }
    }
}
