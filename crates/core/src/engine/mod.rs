//! The trace-driven prefetch evaluation engine.
//!
//! [`CoverageSim`] drives a memory trace through one node's cache
//! hierarchy, a streamed value buffer (SVB), and a pluggable
//! [`Prefetcher`], producing the covered / uncovered / overpredicted
//! accounting of Figure 9:
//!
//! * **covered** — an off-chip read miss eliminated because the block was
//!   prefetched and still resides in the SVB at the time of the
//!   processor request" (Section 5.5), or was prefetched directly into the
//!   L1 (SMS-style) and used;
//! * **uncovered** — an off-chip read miss the processor suffers;
//! * **overpredictions** — "erroneously fetched blocks": prefetched blocks
//!   evicted, invalidated, or never consumed.
//!
//! Prefetch requests are filtered against the L1, L2, and SVB, so every
//! fetched block really would have come from off-chip — which makes an SVB
//! (or prefetched-L1) hit an off-chip miss avoided, and keeps the covered
//! metric well defined under cache perturbation.

mod sim;
mod svb;

pub use sim::{Counters, CoverageSim, InvalidationInjector, StepOutcome};
pub use svb::{Svb, SvbInsert};

use stems_types::{BlockAddr, Pc};

/// Identifies one of the prefetcher's stream queues; tags partition the
/// SVB so a reallocated stream can flush its stale blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StreamTag(pub u8);

impl std::fmt::Display for StreamTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Where a demand access was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Satisfied {
    /// L1 hit.
    L1,
    /// L1 miss satisfied by the streamed value buffer (prefetch hit); the
    /// tag identifies the stream that fetched the block.
    Svb(StreamTag),
    /// L1 miss, L2 hit.
    L2,
    /// Off-chip miss (missed L1, SVB, and L2).
    OffChip,
}

impl Satisfied {
    /// Whether the access went (or would have gone) off chip: the events
    /// the paper's predictors train on and predict.
    pub fn is_off_chip_class(self) -> bool {
        matches!(self, Satisfied::OffChip | Satisfied::Svb(_))
    }
}

/// One demand access as seen by a prefetcher, after the memory system
/// resolved it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessEvent {
    /// PC of the access instruction.
    pub pc: Pc,
    /// Block accessed.
    pub block: BlockAddr,
    /// Whether the access is a store.
    pub is_write: bool,
    /// Where it was satisfied.
    pub satisfied: Satisfied,
}

/// Why a block left the L1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EvictKind {
    /// Capacity/conflict replacement (or inclusion back-invalidation).
    Replacement,
    /// Coherence invalidation from another node.
    Coherence,
}

/// The engine-side services a prefetcher may invoke while handling an
/// access. Fetch requests are filtered: a block already in the L1, L2, or
/// SVB is refused (returns `false`) and costs no bandwidth.
pub trait PrefetchSink {
    /// Fetches `block` into the SVB on behalf of stream `tag`.
    fn fetch_svb(&mut self, block: BlockAddr, tag: StreamTag) -> bool;

    /// Fetches `block` directly into the L1 (SMS-style spatial prefetch).
    fn fetch_l1(&mut self, block: BlockAddr) -> bool;

    /// Discards all SVB blocks belonging to `tag` (stream reallocation);
    /// they count as overpredictions.
    fn flush_stream(&mut self, tag: StreamTag);

    /// Whether `block` is in the L1.
    fn in_l1(&self, block: BlockAddr) -> bool;

    /// Whether `block` is in the L2.
    fn in_l2(&self, block: BlockAddr) -> bool;

    /// Whether `block` is in the SVB.
    fn in_svb(&self, block: BlockAddr) -> bool;
}

/// A hardware prefetcher under evaluation.
///
/// The engine calls [`Prefetcher::on_access`] for every demand access
/// (after the caches and SVB resolved it), and the eviction hooks as blocks
/// leave the L1 or SVB. Implementations issue fetches through the sink.
pub trait Prefetcher {
    /// Short display name ("TMS", "SMS", "STeMS", ...).
    fn name(&self) -> &str;

    /// Observes a demand access; may issue prefetches.
    fn on_access(&mut self, ev: &AccessEvent, sink: &mut dyn PrefetchSink);

    /// Whether this prefetcher needs to observe accesses satisfied in the
    /// L1. When `false`, the engine's L1-hit fast path skips event
    /// construction and the [`Prefetcher::on_access`] call entirely —
    /// legal only for predictors whose `on_access` is a provable no-op
    /// for [`Satisfied::L1`] events (TMS, STeMS, and the null predictor
    /// train exclusively on L1-miss traffic). SMS-style predictors that
    /// accumulate spatial generations over *all* L1 accesses must keep
    /// the default `true`. Must be state-independent: the engine
    /// resolves it once at construction and never re-consults it.
    fn observes_l1_hits(&self) -> bool {
        true
    }

    /// A block left the L1 (ends spatial generations covering it).
    fn on_l1_evict(&mut self, _block: BlockAddr, _kind: EvictKind) {}

    /// A block belonging to stream `tag` was evicted from the SVB without
    /// being consumed (capacity pressure or invalidation).
    fn on_svb_evict(&mut self, _block: BlockAddr, _tag: StreamTag) {}
}

/// The no-op prefetcher: the un-prefetched system used to count baseline
/// off-chip read misses (the denominator of Figure 9's bars).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullPrefetcher;

impl Prefetcher for NullPrefetcher {
    fn name(&self) -> &str {
        "none"
    }

    fn on_access(&mut self, _ev: &AccessEvent, _sink: &mut dyn PrefetchSink) {}

    /// The un-prefetched baseline does nothing on any access; letting the
    /// engine skip L1 hits entirely makes this run measure the raw
    /// hierarchy cost (the `none` throughput ceiling in BENCH_harness).
    fn observes_l1_hits(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satisfied_off_chip_class() {
        assert!(Satisfied::OffChip.is_off_chip_class());
        assert!(Satisfied::Svb(StreamTag(0)).is_off_chip_class());
        assert!(!Satisfied::L1.is_off_chip_class());
        assert!(!Satisfied::L2.is_off_chip_class());
    }

    #[test]
    fn null_prefetcher_has_a_name() {
        assert_eq!(NullPrefetcher.name(), "none");
    }
}
