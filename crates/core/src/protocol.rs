//! Typed messages for the trace-streaming session service.
//!
//! The framing below these messages (hello, kind byte, length prefix,
//! CRC-32) lives in `stems_types::wire`; this module defines what the
//! payloads *mean*: a client opens sessions (each with its own
//! [`SystemConfig`]/[`PrefetchConfig`]/[`Predictor`]), streams trace
//! chunks into them, and receives per-chunk counter snapshots plus an
//! end-of-stream summary. Chunk payloads reuse the trace store's
//! columnar record codec ([`stems_trace::store::encode_records`]) so a
//! persisted trace can be streamed to a server without transcoding.
//! The byte-level spec is `docs/WIRE_PROTOCOL.md`.
//!
//! Every decode path returns a typed [`WireError`] on hostile bytes —
//! unknown kinds, out-of-range config fields, truncated columns — and
//! never panics.
//!
//! # Example
//!
//! ```
//! use stems_core::protocol::{Request, Response, ChunkStats};
//! use stems_core::{Counters, PrefetchConfig, Predictor};
//! use stems_memsim::SystemConfig;
//!
//! let req = Request::Open(Box::new(stems_core::protocol::OpenRequest {
//!     system: SystemConfig::small(),
//!     prefetch: PrefetchConfig::small(),
//!     predictor: Predictor::Stems,
//!     invalidations: None,
//! }));
//! let mut wire = Vec::new();
//! let mut scratch = Vec::new();
//! req.encode(&mut wire, &mut scratch);
//! let (kind, payload, _) = stems_types::wire::decode_message(&wire).unwrap();
//! let back = Request::decode(kind, payload).unwrap();
//! assert!(matches!(back, Request::Open(o) if o.predictor == Predictor::Stems));
//! ```

use crate::config::PrefetchConfig;
use crate::engine::Counters;
use crate::session::Predictor;
use crate::stems::recon::ReconStats;
use std::io::{Read, Write};
use stems_memsim::{CacheConfig, SystemConfig};
use stems_trace::store::{decode_records, encode_records, MAX_FRAME_RECORDS};
use stems_trace::Access;
use stems_types::varint;
use stems_types::wire::{self, WireError};

/// Message kind: client opens a session.
pub const KIND_OPEN: u8 = 0x01;
/// Message kind: client streams a chunk of trace records into a session.
pub const KIND_CHUNK: u8 = 0x02;
/// Message kind: client closes a session (server replies with a summary).
pub const KIND_CLOSE: u8 = 0x03;
/// Message kind: client asks the server to drain all sessions and exit.
pub const KIND_SHUTDOWN: u8 = 0x04;
/// Message kind: client asks for a metrics scrape (and optionally the
/// buffered event log).
pub const KIND_METRICS: u8 = 0x05;
/// Message kind: client streams a *sequenced* chunk — a `Chunk` plus a
/// monotonic per-session sequence number, the resumable-delivery path
/// (`docs/FAULT_TOLERANCE.md`).
pub const KIND_SEQ_CHUNK: u8 = 0x06;
/// Message kind: a reconnecting client re-attaches to a session and
/// asks where delivery stopped.
pub const KIND_RESUME: u8 = 0x07;
/// Message kind: server acknowledges an open with the session id.
pub const KIND_OPENED: u8 = 0x81;
/// Message kind: server returns a counter snapshot after a chunk.
pub const KIND_STATS: u8 = 0x82;
/// Message kind: server returns a session's end-of-stream summary.
pub const KIND_SUMMARY: u8 = 0x83;
/// Message kind: server acknowledges a shutdown after draining.
pub const KIND_SHUTDOWN_ACK: u8 = 0x84;
/// Message kind: server returns a rendered metrics scrape.
pub const KIND_METRICS_REPLY: u8 = 0x85;
/// Message kind: server answers a `Resume` with the session's journal
/// position (last applied sequence number + counter snapshot).
pub const KIND_RESUMED: u8 = 0x86;
/// Message kind: server sheds load — the request was refused by
/// admission control and is safe to retry after a hinted delay.
pub const KIND_BUSY: u8 = 0x87;
/// Message kind: server reports a typed failure.
pub const KIND_ERROR: u8 = 0x8F;

/// Prefix the server puts on `Error` messages that report a *framing*
/// failure (corrupt, truncated, or oversized bytes on the wire) rather
/// than an application-level refusal. A client seeing it knows the
/// request may have been mangled in flight and is safe to retry over a
/// fresh connection (idempotently, via the resume protocol) — unlike
/// every other server error, which is authoritative.
pub const FRAMING_ERROR_PREFIX: &str = "bad frame: ";

/// Upper bound accepted for any table-size field in a decoded config.
/// A corrupt-but-checksummed open request must not drive a giant
/// allocation when the session is built.
pub const MAX_CONFIG_ENTRIES: u64 = 1 << 28;

/// Everything a tenant chooses at session-open time.
#[derive(Clone, Debug, PartialEq)]
pub struct OpenRequest {
    /// Cache hierarchy + latency model for this tenant.
    pub system: SystemConfig,
    /// Predictor table geometry for this tenant.
    pub prefetch: PrefetchConfig,
    /// Which predictor to run.
    pub predictor: Predictor,
    /// Optional coherence-invalidation injection `(rate, seed)`.
    pub invalidations: Option<(f64, u64)>,
}

/// Per-chunk counter snapshot streamed back after every chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkStats {
    /// Which session the snapshot describes.
    pub session: u32,
    /// Cumulative records fed into the session so far.
    pub accesses_fed: u64,
    /// Counter state after the chunk (not finalized).
    pub counters: Counters,
}

/// End-of-stream summary returned on close (and per session on drain).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SessionSummary {
    /// Which session the summary describes.
    pub session: u32,
    /// Total records fed into the session.
    pub accesses_fed: u64,
    /// Finalized counters (in-flight prefetches counted as
    /// overpredictions, exactly like [`crate::Session::finalize`]).
    pub counters: Counters,
    /// Reconstruction placement stats, when the predictor was STeMS.
    pub recon: Option<ReconStats>,
    /// Total PST key probes, when the predictor was STeMS.
    pub pst_probes: Option<u64>,
}

/// A metrics scrape rendered by the server.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MetricsReply {
    /// Prometheus-style text exposition (`name{label="v"} value`
    /// lines): the process-wide registry followed by each live
    /// session's registry labeled `session="N"`.
    pub exposition: String,
    /// JSON-lines event log drained from the server's ring; empty when
    /// the request did not ask for events (draining is destructive, so
    /// it is opt-in).
    pub events: String,
}

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Open a session with the given tenant configuration.
    Open(Box<OpenRequest>),
    /// Feed a chunk of records into an open session.
    Chunk {
        /// Target session id (from [`Response::Opened`]).
        session: u32,
        /// The records, in trace order.
        records: Vec<Access>,
    },
    /// Feed a *sequenced* chunk: like [`Request::Chunk`], but tagged
    /// with a monotonic per-session sequence number so delivery is
    /// idempotent — a chunk whose `seq` the session has already applied
    /// is skipped and answered from the journal instead of re-run
    /// (exactly-once application under retries).
    SeqChunk {
        /// Target session id.
        session: u32,
        /// 1-based position of this chunk in the session's stream. The
        /// server applies `seq == last_seq + 1`, dedupes
        /// `seq <= last_seq`, and rejects gaps.
        seq: u64,
        /// The records, in trace order.
        records: Vec<Access>,
    },
    /// Re-attach to a session after a connection fault and learn where
    /// delivery stopped. `last_seq` is the highest sequence number the
    /// client saw acknowledged; the server replies
    /// [`Response::Resumed`] with its own (authoritative, possibly
    /// higher) journal position.
    Resume {
        /// Session to re-attach to.
        session: u32,
        /// Highest sequence number the client saw acknowledged.
        last_seq: u64,
    },
    /// Close a session; the server replies with its [`SessionSummary`].
    Close {
        /// Session to close.
        session: u32,
    },
    /// Drain every open session (each produces a summary) and shut the
    /// server down.
    Shutdown,
    /// Ask for a metrics scrape; the server replies with a
    /// [`MetricsReply`]. Read-only with respect to sessions — safe to
    /// issue from a monitoring connection while tenants stream.
    Metrics {
        /// Also drain the buffered event ring into the reply
        /// (destructive: drained events are gone).
        drain_events: bool,
    },
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A session was opened.
    Opened {
        /// Server-assigned session id, unique per connection lifetime.
        session: u32,
    },
    /// Counter snapshot after a chunk.
    Stats(ChunkStats),
    /// End-of-stream summary for a closed (or drained) session.
    Summary(Box<SessionSummary>),
    /// A rendered metrics scrape.
    MetricsReply(Box<MetricsReply>),
    /// Answer to [`Request::Resume`]: the session's journal position.
    /// The client drops buffered chunks with `seq <= last_seq` (they
    /// were applied) and resends the rest.
    Resumed {
        /// The re-attached session.
        session: u32,
        /// Highest sequence number the session has applied.
        last_seq: u64,
        /// Cumulative records fed through `last_seq`.
        accesses_fed: u64,
        /// Counter snapshot at `last_seq` (not finalized).
        counters: Counters,
    },
    /// Admission control refused the request; unlike [`Response::Error`]
    /// this is a *retryable* condition — the server is shedding load,
    /// not reporting a broken request. Clients should back off at least
    /// `retry_after_ms` before retrying.
    Busy {
        /// The session the refusal concerns, when there is one.
        session: Option<u32>,
        /// Server's load-derived hint for the minimum retry delay.
        retry_after_ms: u32,
    },
    /// Drain finished; the server is about to close the connection.
    ShutdownAck {
        /// How many sessions were drained (their summaries precede
        /// this message).
        drained: u32,
    },
    /// A request failed. The connection stays usable unless the
    /// failure was a framing error.
    Error {
        /// The session the failure concerns, when there is one.
        session: Option<u32>,
        /// Human-readable description.
        message: String,
    },
}

// --- column helpers -------------------------------------------------

fn read_u64(payload: &[u8], pos: &mut usize, what: &'static str) -> Result<u64, WireError> {
    let (v, n) = varint::read_u64(&payload[*pos..]).ok_or(WireError::Corrupt(what))?;
    *pos += n;
    Ok(v)
}

fn read_u32(payload: &[u8], pos: &mut usize, what: &'static str) -> Result<u32, WireError> {
    let v = read_u64(payload, pos, what)?;
    u32::try_from(v).map_err(|_| WireError::Corrupt(what))
}

fn read_entries(payload: &[u8], pos: &mut usize, what: &'static str) -> Result<usize, WireError> {
    let v = read_u64(payload, pos, what)?;
    if v > MAX_CONFIG_ENTRIES {
        return Err(WireError::Corrupt("config field out of range"));
    }
    Ok(v as usize)
}

fn read_f64(payload: &[u8], pos: &mut usize, what: &'static str) -> Result<f64, WireError> {
    Ok(f64::from_bits(read_u64(payload, pos, what)?))
}

fn write_counters(out: &mut Vec<u8>, c: &Counters) {
    for v in [
        c.accesses,
        c.reads,
        c.l1_hits,
        c.l2_hits,
        c.covered,
        c.uncovered,
        c.overpredictions,
        c.fetches,
        c.offchip_writes,
        c.invalidations,
    ] {
        varint::write_u64(out, v);
    }
}

fn read_counters(payload: &[u8], pos: &mut usize) -> Result<Counters, WireError> {
    let mut vals = [0u64; 10];
    for v in &mut vals {
        *v = read_u64(payload, pos, "truncated counters")?;
    }
    Ok(Counters {
        accesses: vals[0],
        reads: vals[1],
        l1_hits: vals[2],
        l2_hits: vals[3],
        covered: vals[4],
        uncovered: vals[5],
        overpredictions: vals[6],
        fetches: vals[7],
        offchip_writes: vals[8],
        invalidations: vals[9],
    })
}

fn write_open(out: &mut Vec<u8>, o: &OpenRequest) {
    let s = &o.system;
    for v in [
        s.l1.size_bytes,
        s.l1.associativity as u64,
        s.l2.size_bytes,
        s.l2.associativity as u64,
        s.clock_ghz.to_bits(),
        s.l1_latency,
        s.l2_latency,
        s.mem_latency_ns.to_bits(),
        s.hop_latency_ns.to_bits(),
        s.nodes as u64,
        s.rob_entries as u64,
        s.width as u64,
        s.mshrs as u64,
    ] {
        varint::write_u64(out, v);
    }
    let p = &o.prefetch;
    for v in [
        p.svb_entries,
        p.stream_queues,
        p.lookahead,
        p.agt_entries,
        p.pht_entries,
        p.pst_entries,
        p.cmob_entries,
        p.rmob_entries,
        p.recon_entries,
        p.recon_search,
        p.stride_entries,
        p.stride_degree,
        p.refill_threshold,
        p.refill_chunk,
    ] {
        varint::write_u64(out, v as u64);
    }
    out.push(p.spatial_only_streams as u8);
    let idx = Predictor::ALL
        .iter()
        .position(|k| *k == o.predictor)
        .expect("predictor not in Predictor::ALL");
    out.push(idx as u8);
    match o.invalidations {
        None => out.push(0),
        Some((rate, seed)) => {
            out.push(1);
            varint::write_u64(out, rate.to_bits());
            varint::write_u64(out, seed);
        }
    }
}

fn read_open(payload: &[u8], pos: &mut usize) -> Result<OpenRequest, WireError> {
    const SYS: &str = "truncated system config";
    const PF: &str = "truncated prefetch config";
    let system = SystemConfig {
        l1: CacheConfig {
            size_bytes: read_u64(payload, pos, SYS)?,
            associativity: read_entries(payload, pos, SYS)?,
        },
        l2: CacheConfig {
            size_bytes: read_u64(payload, pos, SYS)?,
            associativity: read_entries(payload, pos, SYS)?,
        },
        clock_ghz: read_f64(payload, pos, SYS)?,
        l1_latency: read_u64(payload, pos, SYS)?,
        l2_latency: read_u64(payload, pos, SYS)?,
        mem_latency_ns: read_f64(payload, pos, SYS)?,
        hop_latency_ns: read_f64(payload, pos, SYS)?,
        nodes: read_entries(payload, pos, SYS)?,
        rob_entries: read_entries(payload, pos, SYS)?,
        width: read_entries(payload, pos, SYS)?,
        mshrs: read_entries(payload, pos, SYS)?,
    };
    let mut pf = [0usize; 14];
    for v in &mut pf {
        *v = read_entries(payload, pos, PF)?;
    }
    let flags = *payload.get(*pos).ok_or(WireError::Corrupt(PF))?;
    *pos += 1;
    if flags > 1 {
        return Err(WireError::Corrupt("bad spatial_only_streams flag"));
    }
    let prefetch = PrefetchConfig {
        svb_entries: pf[0],
        stream_queues: pf[1],
        lookahead: pf[2],
        agt_entries: pf[3],
        pht_entries: pf[4],
        pst_entries: pf[5],
        cmob_entries: pf[6],
        rmob_entries: pf[7],
        recon_entries: pf[8],
        recon_search: pf[9],
        stride_entries: pf[10],
        stride_degree: pf[11],
        refill_threshold: pf[12],
        refill_chunk: pf[13],
        spatial_only_streams: flags == 1,
    };
    let pidx = *payload
        .get(*pos)
        .ok_or(WireError::Corrupt("truncated predictor"))?;
    *pos += 1;
    let predictor = *Predictor::ALL
        .get(pidx as usize)
        .ok_or(WireError::Corrupt("unknown predictor index"))?;
    let inv_flag = *payload
        .get(*pos)
        .ok_or(WireError::Corrupt("truncated invalidations"))?;
    *pos += 1;
    let invalidations = match inv_flag {
        0 => None,
        1 => {
            let rate = read_f64(payload, pos, "truncated invalidations")?;
            let seed = read_u64(payload, pos, "truncated invalidations")?;
            Some((rate, seed))
        }
        _ => return Err(WireError::Corrupt("bad invalidations flag")),
    };
    Ok(OpenRequest {
        system,
        prefetch,
        predictor,
        invalidations,
    })
}

fn encode_chunk_payload(out: &mut Vec<u8>, session: u32, records: &[Access]) {
    varint::write_u64(out, session as u64);
    varint::write_u64(out, records.len() as u64);
    encode_records(records, out);
}

/// Appends one complete `Chunk` wire message for borrowed records —
/// byte-identical to encoding `Request::Chunk` with the same data, but
/// without cloning the records into an owned `Vec`. This is the
/// streaming client's hot path: trace-store chunks arrive as borrowed
/// slices.
pub fn encode_chunk(out: &mut Vec<u8>, scratch: &mut Vec<u8>, session: u32, records: &[Access]) {
    scratch.clear();
    encode_chunk_payload(scratch, session, records);
    wire::encode_message(out, KIND_CHUNK, scratch);
}

/// Appends one complete `SeqChunk` wire message for borrowed records —
/// the resumable streaming client's hot path (see [`encode_chunk`]).
pub fn encode_seq_chunk(
    out: &mut Vec<u8>,
    scratch: &mut Vec<u8>,
    session: u32,
    seq: u64,
    records: &[Access],
) {
    scratch.clear();
    varint::write_u64(scratch, session as u64);
    varint::write_u64(scratch, seq);
    varint::write_u64(scratch, records.len() as u64);
    encode_records(records, scratch);
    wire::encode_message(out, KIND_SEQ_CHUNK, scratch);
}

// --- requests -------------------------------------------------------

impl Request {
    /// The wire kind byte this request is framed with.
    pub fn kind(&self) -> u8 {
        match self {
            Request::Open(_) => KIND_OPEN,
            Request::Chunk { .. } => KIND_CHUNK,
            Request::SeqChunk { .. } => KIND_SEQ_CHUNK,
            Request::Resume { .. } => KIND_RESUME,
            Request::Close { .. } => KIND_CLOSE,
            Request::Shutdown => KIND_SHUTDOWN,
            Request::Metrics { .. } => KIND_METRICS,
        }
    }

    /// Appends this request to `out` as one complete wire message.
    ///
    /// `scratch` holds the payload between calls so steady-state
    /// streaming does not allocate.
    pub fn encode(&self, out: &mut Vec<u8>, scratch: &mut Vec<u8>) {
        scratch.clear();
        match self {
            Request::Open(o) => write_open(scratch, o),
            Request::Chunk { session, records } => encode_chunk_payload(scratch, *session, records),
            Request::SeqChunk {
                session,
                seq,
                records,
            } => {
                varint::write_u64(scratch, *session as u64);
                varint::write_u64(scratch, *seq);
                varint::write_u64(scratch, records.len() as u64);
                encode_records(records, scratch);
            }
            Request::Resume { session, last_seq } => {
                varint::write_u64(scratch, *session as u64);
                varint::write_u64(scratch, *last_seq);
            }
            Request::Close { session } => varint::write_u64(scratch, *session as u64),
            Request::Shutdown => {}
            Request::Metrics { drain_events } => scratch.push(*drain_events as u8),
        }
        wire::encode_message(out, self.kind(), scratch);
    }

    /// Decodes a request from a verified message payload.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Request, WireError> {
        let mut pos = 0usize;
        let req = match kind {
            KIND_OPEN => Request::Open(Box::new(read_open(payload, &mut pos)?)),
            KIND_CHUNK => {
                let session = read_u32(payload, &mut pos, "truncated chunk header")?;
                let count = read_u32(payload, &mut pos, "truncated chunk header")?;
                if count as usize > MAX_FRAME_RECORDS {
                    return Err(WireError::Corrupt("chunk record count out of range"));
                }
                let mut records = Vec::new();
                decode_records(&payload[pos..], count as usize, &mut records)
                    .map_err(WireError::Corrupt)?;
                return Ok(Request::Chunk { session, records });
            }
            KIND_SEQ_CHUNK => {
                let session = read_u32(payload, &mut pos, "truncated seq chunk header")?;
                let seq = read_u64(payload, &mut pos, "truncated seq chunk header")?;
                let count = read_u32(payload, &mut pos, "truncated seq chunk header")?;
                if count as usize > MAX_FRAME_RECORDS {
                    return Err(WireError::Corrupt("chunk record count out of range"));
                }
                let mut records = Vec::new();
                decode_records(&payload[pos..], count as usize, &mut records)
                    .map_err(WireError::Corrupt)?;
                return Ok(Request::SeqChunk {
                    session,
                    seq,
                    records,
                });
            }
            KIND_RESUME => Request::Resume {
                session: read_u32(payload, &mut pos, "truncated resume")?,
                last_seq: read_u64(payload, &mut pos, "truncated resume")?,
            },
            KIND_CLOSE => Request::Close {
                session: read_u32(payload, &mut pos, "truncated close")?,
            },
            KIND_SHUTDOWN => Request::Shutdown,
            KIND_METRICS => {
                let flag = *payload
                    .get(pos)
                    .ok_or(WireError::Corrupt("truncated metrics request"))?;
                pos += 1;
                if flag > 1 {
                    return Err(WireError::Corrupt("bad drain_events flag"));
                }
                Request::Metrics {
                    drain_events: flag == 1,
                }
            }
            other => return Err(WireError::UnknownKind { kind: other }),
        };
        if pos != payload.len() {
            return Err(WireError::Corrupt("trailing bytes after request"));
        }
        Ok(req)
    }

    /// Writes this request to a transport as one wire message.
    pub fn write_to<W: Write>(
        &self,
        w: &mut W,
        frame: &mut Vec<u8>,
        scratch: &mut Vec<u8>,
    ) -> Result<(), WireError> {
        frame.clear();
        self.encode(frame, scratch);
        w.write_all(frame)?;
        Ok(())
    }

    /// Reads one request from a transport. `Ok(None)` means the peer
    /// closed the connection cleanly between messages.
    pub fn read_from<R: Read>(
        r: &mut R,
        payload: &mut Vec<u8>,
    ) -> Result<Option<Request>, WireError> {
        match wire::read_message(r, payload)? {
            None => Ok(None),
            Some(kind) => Request::decode(kind, payload).map(Some),
        }
    }
}

// --- responses ------------------------------------------------------

impl Response {
    /// The wire kind byte this response is framed with.
    pub fn kind(&self) -> u8 {
        match self {
            Response::Opened { .. } => KIND_OPENED,
            Response::Stats(_) => KIND_STATS,
            Response::Summary(_) => KIND_SUMMARY,
            Response::MetricsReply(_) => KIND_METRICS_REPLY,
            Response::Resumed { .. } => KIND_RESUMED,
            Response::Busy { .. } => KIND_BUSY,
            Response::ShutdownAck { .. } => KIND_SHUTDOWN_ACK,
            Response::Error { .. } => KIND_ERROR,
        }
    }

    /// Appends this response to `out` as one complete wire message.
    pub fn encode(&self, out: &mut Vec<u8>, scratch: &mut Vec<u8>) {
        scratch.clear();
        match self {
            Response::Opened { session } => varint::write_u64(scratch, *session as u64),
            Response::Stats(s) => {
                varint::write_u64(scratch, s.session as u64);
                varint::write_u64(scratch, s.accesses_fed);
                write_counters(scratch, &s.counters);
            }
            Response::Summary(s) => {
                varint::write_u64(scratch, s.session as u64);
                varint::write_u64(scratch, s.accesses_fed);
                write_counters(scratch, &s.counters);
                match s.recon {
                    None => scratch.push(0),
                    Some(r) => {
                        scratch.push(1);
                        for v in [
                            r.exact,
                            r.shifted1,
                            r.shifted2,
                            r.dropped_conflict,
                            r.dropped_window,
                        ] {
                            varint::write_u64(scratch, v);
                        }
                    }
                }
                match s.pst_probes {
                    None => scratch.push(0),
                    Some(p) => {
                        scratch.push(1);
                        varint::write_u64(scratch, p);
                    }
                }
            }
            Response::MetricsReply(m) => {
                varint::write_u64(scratch, m.exposition.len() as u64);
                scratch.extend_from_slice(m.exposition.as_bytes());
                varint::write_u64(scratch, m.events.len() as u64);
                scratch.extend_from_slice(m.events.as_bytes());
            }
            Response::Resumed {
                session,
                last_seq,
                accesses_fed,
                counters,
            } => {
                varint::write_u64(scratch, *session as u64);
                varint::write_u64(scratch, *last_seq);
                varint::write_u64(scratch, *accesses_fed);
                write_counters(scratch, counters);
            }
            Response::Busy {
                session,
                retry_after_ms,
            } => {
                match session {
                    None => scratch.push(0),
                    Some(s) => {
                        scratch.push(1);
                        varint::write_u64(scratch, *s as u64);
                    }
                }
                varint::write_u64(scratch, *retry_after_ms as u64);
            }
            Response::ShutdownAck { drained } => varint::write_u64(scratch, *drained as u64),
            Response::Error { session, message } => {
                match session {
                    None => scratch.push(0),
                    Some(s) => {
                        scratch.push(1);
                        varint::write_u64(scratch, *s as u64);
                    }
                }
                varint::write_u64(scratch, message.len() as u64);
                scratch.extend_from_slice(message.as_bytes());
            }
        }
        wire::encode_message(out, self.kind(), scratch);
    }

    /// Decodes a response from a verified message payload.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Response, WireError> {
        let mut pos = 0usize;
        let resp = match kind {
            KIND_OPENED => Response::Opened {
                session: read_u32(payload, &mut pos, "truncated opened")?,
            },
            KIND_STATS => Response::Stats(ChunkStats {
                session: read_u32(payload, &mut pos, "truncated stats")?,
                accesses_fed: read_u64(payload, &mut pos, "truncated stats")?,
                counters: read_counters(payload, &mut pos)?,
            }),
            KIND_SUMMARY => {
                let session = read_u32(payload, &mut pos, "truncated summary")?;
                let accesses_fed = read_u64(payload, &mut pos, "truncated summary")?;
                let counters = read_counters(payload, &mut pos)?;
                let recon_flag = *payload
                    .get(pos)
                    .ok_or(WireError::Corrupt("truncated summary"))?;
                pos += 1;
                let recon = match recon_flag {
                    0 => None,
                    1 => {
                        let mut vals = [0u64; 5];
                        for v in &mut vals {
                            *v = read_u64(payload, &mut pos, "truncated recon stats")?;
                        }
                        Some(ReconStats {
                            exact: vals[0],
                            shifted1: vals[1],
                            shifted2: vals[2],
                            dropped_conflict: vals[3],
                            dropped_window: vals[4],
                        })
                    }
                    _ => return Err(WireError::Corrupt("bad recon flag")),
                };
                let probes_flag = *payload
                    .get(pos)
                    .ok_or(WireError::Corrupt("truncated summary"))?;
                pos += 1;
                let pst_probes = match probes_flag {
                    0 => None,
                    1 => Some(read_u64(payload, &mut pos, "truncated summary")?),
                    _ => return Err(WireError::Corrupt("bad pst_probes flag")),
                };
                Response::Summary(Box::new(SessionSummary {
                    session,
                    accesses_fed,
                    counters,
                    recon,
                    pst_probes,
                }))
            }
            KIND_METRICS_REPLY => {
                let mut read_text = |what: &'static str| -> Result<String, WireError> {
                    let len = read_u64(payload, &mut pos, what)? as usize;
                    let end = pos.checked_add(len).ok_or(WireError::Corrupt(what))?;
                    let bytes = payload.get(pos..end).ok_or(WireError::Corrupt(what))?;
                    pos = end;
                    String::from_utf8(bytes.to_vec())
                        .map_err(|_| WireError::Corrupt("metrics text is not utf-8"))
                };
                let exposition = read_text("truncated metrics exposition")?;
                let events = read_text("truncated metrics events")?;
                Response::MetricsReply(Box::new(MetricsReply { exposition, events }))
            }
            KIND_RESUMED => Response::Resumed {
                session: read_u32(payload, &mut pos, "truncated resumed")?,
                last_seq: read_u64(payload, &mut pos, "truncated resumed")?,
                accesses_fed: read_u64(payload, &mut pos, "truncated resumed")?,
                counters: read_counters(payload, &mut pos)?,
            },
            KIND_BUSY => {
                let flag = *payload
                    .get(pos)
                    .ok_or(WireError::Corrupt("truncated busy"))?;
                pos += 1;
                let session = match flag {
                    0 => None,
                    1 => Some(read_u32(payload, &mut pos, "truncated busy")?),
                    _ => return Err(WireError::Corrupt("bad busy session flag")),
                };
                Response::Busy {
                    session,
                    retry_after_ms: read_u32(payload, &mut pos, "truncated busy")?,
                }
            }
            KIND_SHUTDOWN_ACK => Response::ShutdownAck {
                drained: read_u32(payload, &mut pos, "truncated shutdown ack")?,
            },
            KIND_ERROR => {
                let flag = *payload
                    .get(pos)
                    .ok_or(WireError::Corrupt("truncated error"))?;
                pos += 1;
                let session = match flag {
                    0 => None,
                    1 => Some(read_u32(payload, &mut pos, "truncated error")?),
                    _ => return Err(WireError::Corrupt("bad error session flag")),
                };
                let len = read_u64(payload, &mut pos, "truncated error")? as usize;
                let bytes = payload
                    .get(pos..pos + len)
                    .ok_or(WireError::Corrupt("truncated error message"))?;
                pos += len;
                let message = String::from_utf8(bytes.to_vec())
                    .map_err(|_| WireError::Corrupt("error message is not utf-8"))?;
                Response::Error { session, message }
            }
            other => return Err(WireError::UnknownKind { kind: other }),
        };
        if pos != payload.len() {
            return Err(WireError::Corrupt("trailing bytes after response"));
        }
        Ok(resp)
    }

    /// Writes this response to a transport as one wire message.
    pub fn write_to<W: Write>(
        &self,
        w: &mut W,
        frame: &mut Vec<u8>,
        scratch: &mut Vec<u8>,
    ) -> Result<(), WireError> {
        frame.clear();
        self.encode(frame, scratch);
        w.write_all(frame)?;
        Ok(())
    }

    /// Reads one response from a transport. `Ok(None)` means the peer
    /// closed the connection cleanly between messages.
    pub fn read_from<R: Read>(
        r: &mut R,
        payload: &mut Vec<u8>,
    ) -> Result<Option<Response>, WireError> {
        match wire::read_message(r, payload)? {
            None => Ok(None),
            Some(kind) => Response::decode(kind, payload).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_types::{Addr, Pc};

    fn sample_open() -> OpenRequest {
        OpenRequest {
            system: SystemConfig::small(),
            prefetch: PrefetchConfig::small(),
            predictor: Predictor::Tms,
            invalidations: Some((0.001, 0xC0FFEE)),
        }
    }

    fn round_trip_request(req: &Request) -> Request {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        req.encode(&mut out, &mut scratch);
        let (kind, payload, n) = wire::decode_message(&out).unwrap();
        assert_eq!(n, out.len());
        Request::decode(kind, payload).unwrap()
    }

    fn round_trip_response(resp: &Response) -> Response {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        resp.encode(&mut out, &mut scratch);
        let (kind, payload, n) = wire::decode_message(&out).unwrap();
        assert_eq!(n, out.len());
        Response::decode(kind, payload).unwrap()
    }

    #[test]
    fn every_request_round_trips() {
        let records: Vec<Access> = (0..100)
            .map(|i| Access::read(Pc::new(0x400 + i * 4), Addr::new(i * 64 + (1 << 20))))
            .collect();
        for req in [
            Request::Open(Box::new(sample_open())),
            Request::Chunk {
                session: 7,
                records,
            },
            Request::Chunk {
                session: 0,
                records: Vec::new(),
            },
            Request::SeqChunk {
                session: 7,
                seq: 1,
                records: (0..50)
                    .map(|i| Access::read(Pc::new(0x800 + i * 4), Addr::new(i * 64)))
                    .collect(),
            },
            Request::SeqChunk {
                session: 1,
                seq: u64::MAX,
                records: Vec::new(),
            },
            Request::Resume {
                session: 7,
                last_seq: 0,
            },
            Request::Resume {
                session: 3,
                last_seq: 0xFFFF_FFFF_FFFF,
            },
            Request::Close { session: 9 },
            Request::Shutdown,
            Request::Metrics {
                drain_events: false,
            },
            Request::Metrics { drain_events: true },
        ] {
            assert_eq!(round_trip_request(&req), req);
        }
    }

    #[test]
    fn every_response_round_trips() {
        let counters = Counters {
            accesses: 1,
            reads: 2,
            l1_hits: 3,
            l2_hits: 4,
            covered: 5,
            uncovered: 6,
            overpredictions: 7,
            fetches: 8,
            offchip_writes: 9,
            invalidations: 10,
        };
        for resp in [
            Response::Opened { session: 3 },
            Response::Stats(ChunkStats {
                session: 3,
                accesses_fed: 1234,
                counters,
            }),
            Response::Summary(Box::new(SessionSummary {
                session: 3,
                accesses_fed: 1234,
                counters,
                recon: Some(ReconStats {
                    exact: 1,
                    shifted1: 2,
                    shifted2: 3,
                    dropped_conflict: 4,
                    dropped_window: 5,
                }),
                pst_probes: Some(42),
            })),
            Response::Summary(Box::new(SessionSummary {
                session: 4,
                accesses_fed: 0,
                counters: Counters::default(),
                recon: None,
                pst_probes: None,
            })),
            Response::MetricsReply(Box::new(MetricsReply {
                exposition: "stems_chunks_total 3\nstems_accesses_total{session=\"1\"} 640\n"
                    .into(),
                events: "{\"nanos\":1,\"level\":\"INFO\",\"event\":\"session_open\"}\n".into(),
            })),
            Response::MetricsReply(Box::default()),
            Response::Resumed {
                session: 3,
                last_seq: 17,
                accesses_fed: 1234,
                counters,
            },
            Response::Busy {
                session: Some(3),
                retry_after_ms: 250,
            },
            Response::Busy {
                session: None,
                retry_after_ms: 0,
            },
            Response::ShutdownAck { drained: 2 },
            Response::Error {
                session: Some(1),
                message: "no such session".into(),
            },
            Response::Error {
                session: None,
                message: String::new(),
            },
        ] {
            assert_eq!(round_trip_response(&resp), resp);
        }
    }

    #[test]
    fn unknown_kind_and_trailing_bytes_are_typed_errors() {
        assert!(matches!(
            Request::decode(0x77, &[]),
            Err(WireError::UnknownKind { kind: 0x77 })
        ));
        assert!(matches!(
            Response::decode(0x77, &[]),
            Err(WireError::UnknownKind { kind: 0x77 })
        ));
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        Request::Close { session: 1 }.encode(&mut out, &mut scratch);
        let (kind, payload, _) = wire::decode_message(&out).unwrap();
        let mut padded = payload.to_vec();
        padded.push(0);
        assert!(matches!(
            Request::decode(kind, &padded),
            Err(WireError::Corrupt("trailing bytes after request"))
        ));
    }

    #[test]
    fn hostile_metrics_payloads_are_typed_errors() {
        assert!(matches!(
            Request::decode(KIND_METRICS, &[]),
            Err(WireError::Corrupt("truncated metrics request"))
        ));
        assert!(matches!(
            Request::decode(KIND_METRICS, &[2]),
            Err(WireError::Corrupt("bad drain_events flag"))
        ));
        // A reply whose exposition length runs past the payload is
        // truncated, not a panic or an over-read.
        let mut bad = Vec::new();
        varint::write_u64(&mut bad, 1000);
        bad.extend_from_slice(b"short");
        assert!(matches!(
            Response::decode(KIND_METRICS_REPLY, &bad),
            Err(WireError::Corrupt("truncated metrics exposition"))
        ));
        // Non-UTF-8 text is rejected.
        let mut nonutf = Vec::new();
        varint::write_u64(&mut nonutf, 1);
        nonutf.push(0xFF);
        varint::write_u64(&mut nonutf, 0);
        assert!(matches!(
            Response::decode(KIND_METRICS_REPLY, &nonutf),
            Err(WireError::Corrupt("metrics text is not utf-8"))
        ));
    }

    #[test]
    fn hostile_open_fields_are_rejected() {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        Request::Open(Box::new(sample_open())).encode(&mut out, &mut scratch);
        let (_, payload, _) = wire::decode_message(&out).unwrap();
        // Oversize the first config field (l1.size_bytes is a u64, so
        // tamper with l1.associativity at the second varint).
        let mut pos = 0usize;
        varint::read_u64(payload).map(|(_, n)| pos = n).unwrap();
        let mut bad = payload[..pos].to_vec();
        varint::write_u64(&mut bad, MAX_CONFIG_ENTRIES + 1);
        let skip = varint::read_u64(&payload[pos..]).unwrap().1;
        bad.extend_from_slice(&payload[pos + skip..]);
        assert!(matches!(
            Request::decode(KIND_OPEN, &bad),
            Err(WireError::Corrupt("config field out of range"))
        ));
        // Truncation at every byte boundary is typed, never a panic.
        for cut in 0..payload.len() {
            assert!(Request::decode(KIND_OPEN, &payload[..cut]).is_err());
        }
    }

    #[test]
    fn chunk_count_binds_the_columns() {
        let records: Vec<Access> = (0..10)
            .map(|i| Access::read(Pc::new(0x400), Addr::new(i * 64)))
            .collect();
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        Request::Chunk {
            session: 1,
            records,
        }
        .encode(&mut out, &mut scratch);
        let (_, payload, _) = wire::decode_message(&out).unwrap();
        // Bump the count without extending the columns: typed corrupt.
        let mut bad = Vec::new();
        varint::write_u64(&mut bad, 1); // session
        varint::write_u64(&mut bad, 11); // count, one too many
        let mut pos = 0;
        let s = varint::read_u64(payload).unwrap().1;
        pos += s;
        pos += varint::read_u64(&payload[pos..]).unwrap().1;
        bad.extend_from_slice(&payload[pos..]);
        assert!(Request::decode(KIND_CHUNK, &bad).is_err());
        // A count past MAX_FRAME_RECORDS is rejected before decoding.
        let mut huge = Vec::new();
        varint::write_u64(&mut huge, 1);
        varint::write_u64(&mut huge, (MAX_FRAME_RECORDS + 1) as u64);
        assert!(matches!(
            Request::decode(KIND_CHUNK, &huge),
            Err(WireError::Corrupt("chunk record count out of range"))
        ));
    }

    #[test]
    fn seq_chunk_helper_matches_owned_encoding() {
        let records: Vec<Access> = (0..64)
            .map(|i| Access::read(Pc::new(0x400 + i * 4), Addr::new(i * 64)))
            .collect();
        let mut owned = Vec::new();
        let mut scratch = Vec::new();
        Request::SeqChunk {
            session: 5,
            seq: 42,
            records: records.clone(),
        }
        .encode(&mut owned, &mut scratch);
        let mut borrowed = Vec::new();
        encode_seq_chunk(&mut borrowed, &mut scratch, 5, 42, &records);
        assert_eq!(owned, borrowed);
    }

    #[test]
    fn hostile_seq_chunk_and_resume_payloads_are_typed_errors() {
        // Oversized count is rejected before any column decoding.
        let mut huge = Vec::new();
        varint::write_u64(&mut huge, 1); // session
        varint::write_u64(&mut huge, 7); // seq
        varint::write_u64(&mut huge, (MAX_FRAME_RECORDS + 1) as u64);
        assert!(matches!(
            Request::decode(KIND_SEQ_CHUNK, &huge),
            Err(WireError::Corrupt("chunk record count out of range"))
        ));
        // Truncation at every byte boundary is typed, never a panic.
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        let records: Vec<Access> = (0..4)
            .map(|i| Access::read(Pc::new(0x400), Addr::new(i * 64)))
            .collect();
        encode_seq_chunk(&mut out, &mut scratch, 3, 9, &records);
        let (_, payload, _) = wire::decode_message(&out).unwrap();
        for cut in 0..payload.len() {
            assert!(Request::decode(KIND_SEQ_CHUNK, &payload[..cut]).is_err());
        }
        assert!(Request::decode(KIND_RESUME, &[]).is_err());
        // Resume with trailing bytes is rejected.
        let mut resume = Vec::new();
        varint::write_u64(&mut resume, 3);
        varint::write_u64(&mut resume, 9);
        resume.push(0);
        assert!(matches!(
            Request::decode(KIND_RESUME, &resume),
            Err(WireError::Corrupt("trailing bytes after request"))
        ));
    }

    #[test]
    fn hostile_busy_payloads_are_typed_errors() {
        assert!(matches!(
            Response::decode(KIND_BUSY, &[]),
            Err(WireError::Corrupt("truncated busy"))
        ));
        assert!(matches!(
            Response::decode(KIND_BUSY, &[2]),
            Err(WireError::Corrupt("bad busy session flag"))
        ));
        assert!(matches!(
            Response::decode(KIND_BUSY, &[1]),
            Err(WireError::Corrupt("truncated busy"))
        ));
        assert!(Response::decode(KIND_RESUMED, &[]).is_err());
    }
}
