//! Predictor hardware parameters (Section 4.3).

/// Sizing and tuning knobs for all prefetchers, at the paper's defaults.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Streamed value buffer entries (64).
    pub svb_entries: usize,
    /// Number of stream queues (8).
    pub stream_queues: usize,
    /// Blocks per stream kept fetched ahead of consumption
    /// (8 commercial / 12 scientific).
    pub lookahead: usize,
    /// Active generation table entries (64).
    pub agt_entries: usize,
    /// SMS pattern history table entries (16K).
    pub pht_entries: usize,
    /// STeMS pattern sequence table entries (16K).
    pub pst_entries: usize,
    /// TMS circular miss-order buffer entries (384K).
    pub cmob_entries: usize,
    /// STeMS region miss-order buffer entries (128K).
    pub rmob_entries: usize,
    /// Reconstruction buffer slots (256).
    pub recon_entries: usize,
    /// Adjacent free-slot search distance during reconstruction (2).
    pub recon_search: usize,
    /// Stride predictor: maximum distinct (PC) strides tracked (16).
    pub stride_entries: usize,
    /// Stride predictor: blocks fetched ahead once a stride is confident.
    pub stride_degree: usize,
    /// Pending prefetch addresses below which a stream asks its source
    /// for more (reconstruction resume / further CMOB reads).
    pub refill_threshold: usize,
    /// Addresses fetched from the history source per refill request.
    pub refill_chunk: usize,
    /// Whether STeMS may start spatial-only streams (Section 4.2) —
    /// disabled only by the ablation harness.
    pub spatial_only_streams: bool,
}

impl PrefetchConfig {
    /// Paper configuration for commercial workloads (lookahead 8).
    pub fn commercial() -> Self {
        PrefetchConfig {
            svb_entries: 64,
            stream_queues: 8,
            lookahead: 8,
            agt_entries: 64,
            pht_entries: 16 * 1024,
            pst_entries: 16 * 1024,
            cmob_entries: 384 * 1024,
            rmob_entries: 128 * 1024,
            recon_entries: 256,
            recon_search: 2,
            stride_entries: 16,
            stride_degree: 4,
            refill_threshold: 8,
            refill_chunk: 16,
            spatial_only_streams: true,
        }
    }

    /// Paper configuration for scientific workloads (lookahead 12,
    /// Section 4.3: higher bandwidth requirements).
    pub fn scientific() -> Self {
        PrefetchConfig {
            lookahead: 12,
            ..PrefetchConfig::commercial()
        }
    }

    /// A scaled-down configuration for fast unit tests.
    pub fn small() -> Self {
        PrefetchConfig {
            svb_entries: 8,
            stream_queues: 2,
            lookahead: 4,
            agt_entries: 4,
            pht_entries: 64,
            pst_entries: 64,
            cmob_entries: 256,
            rmob_entries: 256,
            recon_entries: 64,
            recon_search: 2,
            stride_entries: 4,
            stride_degree: 2,
            refill_threshold: 4,
            refill_chunk: 8,
            spatial_only_streams: true,
        }
    }
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig::commercial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = PrefetchConfig::commercial();
        assert_eq!(c.svb_entries, 64);
        assert_eq!(c.stream_queues, 8);
        assert_eq!(c.lookahead, 8);
        assert_eq!(c.pst_entries, 16384);
        assert_eq!(c.rmob_entries, 131072);
        assert_eq!(c.cmob_entries, 393216);
        assert_eq!(c.recon_entries, 256);
    }

    #[test]
    fn scientific_raises_lookahead_only() {
        let c = PrefetchConfig::scientific();
        let d = PrefetchConfig::commercial();
        assert_eq!(c.lookahead, 12);
        assert_eq!(c.svb_entries, d.svb_entries);
    }
}
