//! The unified simulation session API.
//!
//! Every experiment in the harness drives the same trace-driven engine;
//! this module is the single front door to it. [`Predictor`] names the
//! six predictors the paper evaluates, [`AnyPrefetcher`] is the
//! enum-dispatch type the factory builds (no `Box<dyn>` — the engine's
//! hot loop stays monomorphic over one concrete type), and [`Session`]
//! wraps the engine behind a builder so call sites configure a run once
//! instead of re-spelling a six-way `match` over constructors.
//!
//! # Example
//!
//! ```
//! use stems_core::session::{Predictor, Session};
//! use stems_core::PrefetchConfig;
//! use stems_memsim::SystemConfig;
//! use stems_trace::Trace;
//!
//! let mut trace = Trace::new();
//! for _ in 0..2 {
//!     for r in 0..64u64 {
//!         let base = (r * 7919 % 4096) * 2048 + (1 << 30);
//!         trace.read(0x400, base);
//!         trace.read(0x404, base + 5 * 64);
//!     }
//! }
//! let sys = SystemConfig::small();
//! let cfg = PrefetchConfig::small();
//! let baseline = Session::builder(&sys).prefetch(&cfg).run(&trace);
//! let stems = Session::builder(&sys)
//!     .prefetch(&cfg)
//!     .predictor(Predictor::Stems)
//!     .run(&trace);
//! assert!(stems.covered > 0);
//! assert!(stems.uncovered < baseline.uncovered);
//! ```

use std::fmt;
use std::str::FromStr;

use stems_memsim::SystemConfig;
use stems_obs::SessionObs;
use stems_trace::{Access, Trace};

use crate::engine::{
    AccessEvent, Counters, CoverageSim, EvictKind, NullPrefetcher, PrefetchSink, Prefetcher,
    StepOutcome, StreamTag,
};
use crate::stems::ReconStats;
use crate::{
    NaiveHybrid, PrefetchConfig, SmsPrefetcher, StemsPrefetcher, StridePrefetcher, TmsPrefetcher,
};
use stems_types::BlockAddr;

/// The predictors under evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Predictor {
    /// No prefetching (baseline miss counting).
    None,
    /// The baseline system's stride prefetcher.
    Stride,
    /// Temporal Memory Streaming.
    Tms,
    /// Spatial Memory Streaming.
    Sms,
    /// Spatio-Temporal Memory Streaming.
    Stems,
    /// TMS and SMS side by side (Section 5.5 strawman).
    Naive,
}

impl Predictor {
    /// Every predictor, in the canonical evaluation order.
    pub const ALL: [Predictor; 6] = [
        Predictor::None,
        Predictor::Stride,
        Predictor::Tms,
        Predictor::Sms,
        Predictor::Stems,
        Predictor::Naive,
    ];

    /// The three streaming predictors compared in Figures 9 and 10.
    pub const STREAMING: [Predictor; 3] = [Predictor::Tms, Predictor::Sms, Predictor::Stems];

    /// Every predictor ([`Predictor::ALL`] as a method, for iteration).
    pub fn all() -> [Predictor; 6] {
        Predictor::ALL
    }

    /// Display name; matches the [`Prefetcher::name`] of the prefetcher
    /// [`Predictor::build`] constructs, and round-trips through
    /// [`FromStr`].
    pub fn name(self) -> &'static str {
        match self {
            Predictor::None => "none",
            Predictor::Stride => "stride",
            Predictor::Tms => "TMS",
            Predictor::Sms => "SMS",
            Predictor::Stems => "STeMS",
            Predictor::Naive => "TMS+SMS",
        }
    }

    /// Constructs this predictor's prefetcher for `cfg`.
    pub fn build(self, cfg: &PrefetchConfig) -> AnyPrefetcher {
        match self {
            Predictor::None => AnyPrefetcher::None(NullPrefetcher),
            Predictor::Stride => AnyPrefetcher::Stride(StridePrefetcher::new(cfg)),
            Predictor::Tms => AnyPrefetcher::Tms(TmsPrefetcher::new(cfg)),
            Predictor::Sms => AnyPrefetcher::Sms(SmsPrefetcher::new(cfg)),
            Predictor::Stems => AnyPrefetcher::Stems(StemsPrefetcher::new(cfg)),
            Predictor::Naive => AnyPrefetcher::Naive(NaiveHybrid::new(cfg)),
        }
    }
}

impl fmt::Display for Predictor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned by [`Predictor::from_str`] for an unrecognized name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePredictorError(String);

impl fmt::Display for ParsePredictorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown predictor {:?}; expected one of none, stride, TMS, SMS, STeMS, TMS+SMS",
            self.0
        )
    }
}

impl std::error::Error for ParsePredictorError {}

impl FromStr for Predictor {
    type Err = ParsePredictorError;

    /// Parses a display name, case-insensitively; `"naive"` and
    /// `"hybrid"` are accepted as aliases for the TMS+SMS strawman.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "none" => Ok(Predictor::None),
            "stride" => Ok(Predictor::Stride),
            "tms" => Ok(Predictor::Tms),
            "sms" => Ok(Predictor::Sms),
            "stems" => Ok(Predictor::Stems),
            "tms+sms" | "naive" | "hybrid" => Ok(Predictor::Naive),
            _ => Err(ParsePredictorError(s.to_string())),
        }
    }
}

/// Enum dispatch over the six concrete prefetchers.
///
/// The engine stays generic over one monomorphic type (no `Box<dyn
/// Prefetcher>` indirection on the per-access path), and the
/// state-independent [`Prefetcher::observes_l1_hits`] hint is resolved
/// once per run by [`CoverageSim::new`] rather than re-matched per
/// access.
// One AnyPrefetcher exists per session (never collections of them), so
// the padding the smaller variants carry up to STeMS's footprint costs
// nothing; boxing the large variants would put a pointer chase on every
// on_access instead.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum AnyPrefetcher {
    /// [`NullPrefetcher`].
    None(NullPrefetcher),
    /// [`StridePrefetcher`].
    Stride(StridePrefetcher),
    /// [`TmsPrefetcher`].
    Tms(TmsPrefetcher),
    /// [`SmsPrefetcher`].
    Sms(SmsPrefetcher),
    /// [`StemsPrefetcher`].
    Stems(StemsPrefetcher),
    /// [`NaiveHybrid`].
    Naive(NaiveHybrid),
}

impl AnyPrefetcher {
    /// Which [`Predictor`] this prefetcher is.
    pub fn kind(&self) -> Predictor {
        match self {
            AnyPrefetcher::None(_) => Predictor::None,
            AnyPrefetcher::Stride(_) => Predictor::Stride,
            AnyPrefetcher::Tms(_) => Predictor::Tms,
            AnyPrefetcher::Sms(_) => Predictor::Sms,
            AnyPrefetcher::Stems(_) => Predictor::Stems,
            AnyPrefetcher::Naive(_) => Predictor::Naive,
        }
    }

    /// STeMS reconstruction-placement statistics, when this is the STeMS
    /// predictor.
    pub fn recon_stats(&self) -> Option<ReconStats> {
        match self {
            AnyPrefetcher::Stems(p) => Some(p.recon_stats()),
            _ => None,
        }
    }

    /// Total PST key probes issued so far, when this is the STeMS
    /// predictor (the counter behind the bench harness's
    /// `pst_probes_per_access` diagnostic rows).
    pub fn pst_probes(&self) -> Option<u64> {
        match self {
            AnyPrefetcher::Stems(p) => Some(p.pst().probes()),
            _ => None,
        }
    }
}

macro_rules! dispatch {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            AnyPrefetcher::None($p) => $body,
            AnyPrefetcher::Stride($p) => $body,
            AnyPrefetcher::Tms($p) => $body,
            AnyPrefetcher::Sms($p) => $body,
            AnyPrefetcher::Stems($p) => $body,
            AnyPrefetcher::Naive($p) => $body,
        }
    };
}

impl Prefetcher for AnyPrefetcher {
    fn name(&self) -> &str {
        dispatch!(self, p => p.name())
    }

    fn on_access(&mut self, ev: &AccessEvent, sink: &mut dyn PrefetchSink) {
        dispatch!(self, p => p.on_access(ev, sink))
    }

    fn observes_l1_hits(&self) -> bool {
        dispatch!(self, p => p.observes_l1_hits())
    }

    fn on_l1_evict(&mut self, block: BlockAddr, kind: EvictKind) {
        dispatch!(self, p => p.on_l1_evict(block, kind))
    }

    fn on_svb_evict(&mut self, block: BlockAddr, tag: StreamTag) {
        dispatch!(self, p => p.on_svb_evict(block, tag))
    }
}

/// Configures a [`Session`]; created by [`Session::builder`].
#[derive(Clone, Debug)]
pub struct SessionBuilder {
    system: SystemConfig,
    prefetch: PrefetchConfig,
    predictor: Predictor,
    invalidations: Option<(f64, u64)>,
    obs: Option<SessionObs>,
}

impl SessionBuilder {
    /// Sets the prefetcher configuration (defaults to
    /// [`PrefetchConfig::default`]).
    pub fn prefetch(mut self, cfg: &PrefetchConfig) -> Self {
        self.prefetch = cfg.clone();
        self
    }

    /// Sets the predictor under test (defaults to [`Predictor::None`],
    /// the un-prefetched baseline).
    pub fn predictor(mut self, kind: Predictor) -> Self {
        self.predictor = kind;
        self
    }

    /// Enables coherence-invalidation injection at `rate` per access.
    pub fn invalidations(mut self, rate: f64, seed: u64) -> Self {
        self.invalidations = Some((rate, seed));
        self
    }

    /// Attaches an observation hook called around every chunk (defaults
    /// to none — an unobserved session pays zero overhead). Observation
    /// only reads a clock and bumps atomic metrics; it never alters
    /// simulation behaviour or counters.
    pub fn obs(mut self, hook: SessionObs) -> Self {
        self.obs = Some(hook);
        self
    }

    /// The system configuration this builder was created with.
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// The prefetcher configuration currently selected.
    pub fn prefetch_config(&self) -> &PrefetchConfig {
        &self.prefetch
    }

    /// Builds the session with empty caches.
    pub fn build(self) -> Session {
        let prefetcher = self.predictor.build(&self.prefetch);
        let mut sim = CoverageSim::new(&self.system, &self.prefetch, prefetcher);
        if let Some((rate, seed)) = self.invalidations {
            sim = sim.with_invalidations(rate, seed);
        }
        Session { sim, obs: self.obs }
    }

    /// Convenience: builds the session, runs the whole trace through the
    /// batched path, and returns the finalized counters.
    pub fn run(self, trace: &Trace) -> Counters {
        self.build().run(trace)
    }
}

/// One configured simulation run: the cache hierarchy, SVB, and chosen
/// predictor behind a single driving interface.
///
/// [`Session::run_chunk`] is the primary entry point — it amortizes the
/// per-access overheads over a whole slice of accesses; [`Session::step`]
/// remains as the scalar wrapper for callers that interleave their own
/// work between accesses.
#[derive(Debug)]
pub struct Session {
    sim: CoverageSim<AnyPrefetcher>,
    obs: Option<SessionObs>,
}

impl Session {
    /// Starts configuring a session for `system`.
    pub fn builder(system: &SystemConfig) -> SessionBuilder {
        SessionBuilder {
            system: system.clone(),
            prefetch: PrefetchConfig::default(),
            predictor: Predictor::None,
            invalidations: None,
            obs: None,
        }
    }

    /// Attaches (or replaces) the observation hook after construction —
    /// how the server binds per-tenant metrics once it knows the
    /// session id.
    pub fn set_obs(&mut self, hook: SessionObs) {
        self.obs = Some(hook);
    }

    /// Delivers a batch of accesses to the engine (the primary entry
    /// point; see [`CoverageSim::run_chunk`]).
    pub fn run_chunk(&mut self, chunk: &[Access]) {
        match &self.obs {
            None => self.sim.run_chunk(chunk),
            Some(obs) => {
                let started = obs.begin_chunk();
                self.sim.run_chunk(chunk);
                // The hook cannot see or touch `sim`; it only records
                // elapsed time and the record count.
                obs.end_chunk(started, chunk.len());
            }
        }
    }

    /// [`Session::run_chunk`] with a per-access observer called with each
    /// access and its [`StepOutcome`] in trace order.
    pub fn run_chunk_with(&mut self, chunk: &[Access], visit: impl FnMut(&Access, &StepOutcome)) {
        self.sim.run_chunk_with(chunk, visit);
    }

    /// Streams a persisted trace store through the engine, one frame at
    /// a time: each decoded chunk is fed straight into
    /// [`Session::run_chunk`], so memory stays bounded by the store's
    /// frame size no matter how long the trace is. Returns the number
    /// of accesses replayed; call [`Session::finalize`] afterwards as
    /// with any other run.
    pub fn replay<R: std::io::Read>(
        &mut self,
        reader: &mut stems_trace::TraceReader<R>,
    ) -> Result<u64, stems_trace::TraceStoreError> {
        let mut fed = 0u64;
        while let Some(chunk) = reader.next_chunk()? {
            let len = chunk.len() as u64;
            self.run_chunk(chunk);
            fed += len;
        }
        Ok(fed)
    }

    /// Processes one access (thin scalar wrapper over the batched core).
    pub fn step(&mut self, access: &Access) -> StepOutcome {
        self.sim.step(access)
    }

    /// Runs the whole trace through the batched path and finalizes.
    pub fn run(&mut self, trace: &Trace) -> Counters {
        // One observed chunk when a hook is attached; identical to
        // `CoverageSim::run` (run_chunk + finalize) either way.
        self.run_chunk(trace.as_slice());
        self.finalize()
    }

    /// Counters accumulated so far (call [`Session::finalize`] first for
    /// end-of-run overprediction accounting).
    pub fn counters(&self) -> &Counters {
        self.sim.counters()
    }

    /// Counts still-unconsumed prefetched blocks as overpredictions and
    /// returns the final counters. Call once at end of run.
    pub fn finalize(&mut self) -> Counters {
        self.sim.finalize()
    }

    /// Which predictor this session runs.
    pub fn predictor(&self) -> Predictor {
        self.sim.prefetcher().kind()
    }

    /// The prefetcher under test.
    pub fn prefetcher(&self) -> &AnyPrefetcher {
        self.sim.prefetcher()
    }

    /// STeMS reconstruction-placement statistics, when this session runs
    /// the STeMS predictor.
    pub fn recon_stats(&self) -> Option<ReconStats> {
        self.sim.prefetcher().recon_stats()
    }

    /// Total PST key probes issued, when this session runs the STeMS
    /// predictor.
    pub fn pst_probes(&self) -> Option<u64> {
        self.sim.prefetcher().pst_probes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_from_str() {
        for p in Predictor::all() {
            assert_eq!(p.name().parse::<Predictor>().unwrap(), p, "{p}");
            assert_eq!(p.to_string(), p.name());
            // Case-insensitive.
            assert_eq!(
                p.name().to_ascii_uppercase().parse::<Predictor>().unwrap(),
                p
            );
            assert_eq!(
                p.name().to_ascii_lowercase().parse::<Predictor>().unwrap(),
                p
            );
        }
        assert_eq!("naive".parse::<Predictor>().unwrap(), Predictor::Naive);
        assert!("bogus".parse::<Predictor>().is_err());
        let err = "bogus".parse::<Predictor>().unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn factory_covers_every_predictor_with_matching_names() {
        let cfg = PrefetchConfig::small();
        for p in Predictor::all() {
            let built = p.build(&cfg);
            assert_eq!(built.kind(), p, "factory must build its own kind");
            assert_eq!(
                built.name(),
                p.name(),
                "Prefetcher::name must match Predictor::name"
            );
            assert_eq!(
                built.recon_stats().is_some(),
                p == Predictor::Stems,
                "only STeMS exposes reconstruction stats"
            );
        }
    }

    #[test]
    fn builder_defaults_to_unprefetched_baseline() {
        let sys = SystemConfig::small();
        let s = Session::builder(&sys).build();
        assert_eq!(s.predictor(), Predictor::None);
        assert_eq!(*s.counters(), Counters::default());
    }

    #[test]
    fn session_matches_direct_engine_construction() {
        let mut trace = Trace::new();
        for i in 0..500u64 {
            trace.read(0x400 + (i % 5), ((i * 7919) % 256) * 2048);
        }
        let sys = SystemConfig::small();
        let cfg = PrefetchConfig::small();
        for p in Predictor::all() {
            let direct = {
                let mut sim =
                    CoverageSim::new(&sys, &cfg, p.build(&cfg)).with_invalidations(0.01, 99);
                sim.run(&trace)
            };
            let via_session = Session::builder(&sys)
                .prefetch(&cfg)
                .predictor(p)
                .invalidations(0.01, 99)
                .run(&trace);
            assert_eq!(direct, via_session, "{p}");
        }
    }

    #[test]
    fn replaying_a_persisted_store_matches_the_in_memory_run() {
        use stems_trace::{TraceReader, TraceWriter};

        let mut trace = Trace::new();
        for i in 0..600u64 {
            trace.read(0x500 + (i % 4), ((i * 7919) % 384) * 2048 + (i % 11) * 64);
        }
        let sys = SystemConfig::small();
        let cfg = PrefetchConfig::small();
        for p in [Predictor::Stems, Predictor::Sms] {
            let direct = Session::builder(&sys)
                .prefetch(&cfg)
                .predictor(p)
                .invalidations(0.01, 3)
                .run(&trace);
            // Small frames force many chunks through the replay path.
            let mut buf = Vec::new();
            let mut w = TraceWriter::new(&mut buf).unwrap().with_frame_capacity(53);
            w.write_accesses(trace.as_slice()).unwrap();
            w.finish().unwrap();
            drop(w);
            let mut reader = TraceReader::new(buf.as_slice()).unwrap();
            let mut session = Session::builder(&sys)
                .prefetch(&cfg)
                .predictor(p)
                .invalidations(0.01, 3)
                .build();
            let fed = session.replay(&mut reader).unwrap();
            assert_eq!(fed, trace.len() as u64);
            assert_eq!(session.finalize(), direct, "{p}");
        }
    }

    #[test]
    fn observation_never_perturbs_results() {
        // The acceptance guarantee behind the golden-counter configs:
        // attaching a hook must leave every counter byte-identical, and
        // a ManualClock makes the recorded metrics fully deterministic.
        use std::sync::Arc;
        use stems_obs::{MetricsRegistry, SessionObs};
        use stems_types::clock::{ManualClock, SharedClock};

        let mut trace = Trace::new();
        for i in 0..700u64 {
            trace.read(0x700 + (i % 6), ((i * 7919) % 300) * 2048 + (i % 13) * 64);
        }
        let sys = SystemConfig::small();
        let cfg = PrefetchConfig::small();
        for p in [Predictor::Stems, Predictor::Tms] {
            let plain = Session::builder(&sys)
                .prefetch(&cfg)
                .predictor(p)
                .invalidations(0.01, 7)
                .run(&trace);

            let clock = Arc::new(ManualClock::new());
            let reg = MetricsRegistry::new();
            let obs = SessionObs::builder(clock.clone() as SharedClock)
                .registry(&reg)
                .build();
            let mut session = Session::builder(&sys)
                .prefetch(&cfg)
                .predictor(p)
                .invalidations(0.01, 7)
                .obs(obs)
                .build();
            for chunk in trace.as_slice().chunks(100) {
                clock.advance_nanos(5_000);
                session.run_chunk(chunk);
            }
            assert_eq!(session.finalize(), plain, "{p}: observed run must match");
            assert_eq!(reg.counter("stems_chunks_total").get(), 7);
            assert_eq!(reg.counter("stems_accesses_total").get(), 700);
            // The clock only advanced between begin/end via our manual
            // ticks, so latency metrics are exact, not flaky.
            assert_eq!(reg.histogram("stems_chunk_nanos").count(), 7);
            assert_eq!(reg.histogram("stems_chunk_nanos").max(), 0);
            assert_eq!(reg.histogram("stems_chunk_records").sum(), 700);
        }
    }

    #[test]
    fn set_obs_observes_replay_and_run() {
        use std::sync::Arc;
        use stems_obs::{MetricsRegistry, SessionObs};
        use stems_trace::{TraceReader, TraceWriter};
        use stems_types::clock::{ManualClock, SharedClock};

        let mut trace = Trace::new();
        for i in 0..150u64 {
            trace.read(0x800, ((i * 31) % 64) * 2048);
        }
        let clock = Arc::new(ManualClock::new());
        let reg = MetricsRegistry::new();
        let obs = SessionObs::builder(clock as SharedClock)
            .registry(&reg)
            .build();
        let sys = SystemConfig::small();

        // Attached after construction (the server's path), replay is
        // observed chunk by chunk.
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap().with_frame_capacity(40);
        w.write_accesses(trace.as_slice()).unwrap();
        w.finish().unwrap();
        drop(w);
        let mut session = Session::builder(&sys).build();
        session.set_obs(obs.clone());
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        session.replay(&mut reader).unwrap();
        assert_eq!(reg.counter("stems_accesses_total").get(), 150);
        assert_eq!(reg.counter("stems_chunks_total").get(), 4); // ceil(150/40)

        // Session::run counts as one chunk.
        let mut second = Session::builder(&sys).obs(obs).build();
        second.run(&trace);
        assert_eq!(reg.counter("stems_accesses_total").get(), 300);
        assert_eq!(reg.counter("stems_chunks_total").get(), 5);
    }

    #[test]
    fn scalar_step_equals_batched_run_chunk() {
        let mut trace = Trace::new();
        for i in 0..800u64 {
            let addr = ((i * 2654435761) % 512) * 2048 + (i % 7) * 64;
            if i % 5 == 0 {
                trace.write(0x600, addr);
            } else {
                trace.read(0x600 + (i % 3), addr);
            }
        }
        let sys = SystemConfig::small();
        let cfg = PrefetchConfig::small();
        for p in Predictor::all() {
            let build = || {
                Session::builder(&sys)
                    .prefetch(&cfg)
                    .predictor(p)
                    .invalidations(0.02, 5)
                    .build()
            };
            let scalar = {
                let mut s = build();
                let outs: Vec<StepOutcome> = trace.iter().map(|a| s.step(a)).collect();
                (s.finalize(), outs)
            };
            for chunk_size in [1, 7, 64, trace.len()] {
                let mut s = build();
                let mut outs = Vec::new();
                for chunk in trace.as_slice().chunks(chunk_size) {
                    s.run_chunk_with(chunk, |_, out| outs.push(out.clone()));
                }
                let counters = s.finalize();
                assert_eq!(counters, scalar.0, "{p} chunk {chunk_size}: counters");
                assert_eq!(outs, scalar.1, "{p} chunk {chunk_size}: outcomes");
            }
        }
    }
}
