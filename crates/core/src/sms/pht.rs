//! The SMS pattern history table (PHT) with 2-bit saturating counters.
//!
//! Section 4.3: "instead of simple bit vectors, the history table stores
//! vectors of 2-bit saturating counters, one per block", which halves
//! overpredictions at equal coverage by learning only the *stable* part of
//! each pattern. All SMS results in the paper (and here) use counters.

use stems_types::{BlockOffset, SatCounter, SpatialPattern, REGION_BLOCKS};

use crate::util::{Entry, LruTable};

/// Per-index learned pattern: one 2-bit counter per block of the region.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterPattern {
    counters: [SatCounter<3>; REGION_BLOCKS],
}

/// Counter value assigned to blocks of a newly learned pattern: one below
/// the prediction threshold, so a block must appear in two generations
/// before it is predicted. Stable layout blocks cross immediately (their
/// index trains constantly); one-off noise blocks never do — this is the
/// hysteresis that halves overpredictions (Section 4.3).
const INIT: u8 = 1;

/// Prediction threshold for the 2-bit counters.
const THRESHOLD: u8 = 2;

impl CounterPattern {
    /// Builds a fresh entry from an observed pattern.
    pub fn from_observed(observed: SpatialPattern) -> Self {
        let mut p = CounterPattern::default();
        for o in observed.iter() {
            p.counters[o.get() as usize] = SatCounter::new(INIT);
        }
        p
    }

    /// Retrains against a newly observed generation pattern: present
    /// blocks are reinforced, absent blocks decay.
    pub fn train(&mut self, observed: SpatialPattern) {
        for o in BlockOffset::all() {
            let c = &mut self.counters[o.get() as usize];
            if observed.contains(o) {
                if c.get() == 0 {
                    *c = SatCounter::new(INIT);
                } else {
                    c.increment();
                }
            } else {
                c.decrement();
            }
        }
    }

    /// The currently predicted blocks (counters at/above threshold).
    pub fn predicted(&self) -> SpatialPattern {
        BlockOffset::all()
            .filter(|o| self.counters[o.get() as usize].predicts(THRESHOLD))
            .collect()
    }

    /// The raw counter for `offset` (for tests/diagnostics).
    pub fn counter(&self, offset: BlockOffset) -> SatCounter<3> {
        self.counters[offset.get() as usize]
    }
}

/// The bounded PC⊕offset-indexed pattern history table.
#[derive(Clone, Debug)]
pub struct Pht {
    table: LruTable<u64, CounterPattern>,
}

impl Pht {
    /// Creates a PHT with `entries` capacity (16K in the paper).
    pub fn new(entries: usize) -> Self {
        Pht {
            table: LruTable::new(entries),
        }
    }

    /// Predicted pattern for `index`, refreshing recency.
    pub fn predict(&mut self, index: u64) -> Option<SpatialPattern> {
        self.table.get(&index).map(|p| p.predicted())
    }

    /// Trains `index` with an observed generation pattern.
    pub fn train(&mut self, index: u64, observed: SpatialPattern) {
        if observed.is_empty() {
            return;
        }
        // Single-hash train: one index probe for both retrain and first
        // insert (this runs on every completed generation).
        match self.table.entry(index) {
            Entry::Occupied(mut entry) => entry.get_mut().train(observed),
            Entry::Vacant(entry) => {
                entry.insert(CounterPattern::from_observed(observed));
            }
        }
    }

    /// Number of learned patterns resident.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether no patterns are stored.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(offsets: &[u8]) -> SpatialPattern {
        offsets.iter().map(|&o| BlockOffset::new(o)).collect()
    }

    #[test]
    fn second_observation_predicts() {
        let mut pht = Pht::new(8);
        pht.train(1, pat(&[0, 3, 7]));
        assert_eq!(pht.predict(1), Some(SpatialPattern::empty()));
        pht.train(1, pat(&[0, 3, 7]));
        assert_eq!(pht.predict(1), Some(pat(&[0, 3, 7])));
        assert_eq!(pht.predict(2), None);
    }

    #[test]
    fn unstable_blocks_decay_out() {
        let mut pht = Pht::new(8);
        pht.train(1, pat(&[0, 3, 7])); // 7 seen once (counter 1)
        pht.train(1, pat(&[0, 3])); // 7 decays to 0
        pht.train(1, pat(&[0, 3]));
        assert_eq!(pht.predict(1), Some(pat(&[0, 3])));
    }

    #[test]
    fn stable_blocks_survive_single_glitch() {
        let mut pht = Pht::new(8);
        pht.train(1, pat(&[5]));
        pht.train(1, pat(&[5]));
        pht.train(1, pat(&[5])); // saturate 5
        pht.train(1, pat(&[9])); // glitch: 5 absent once
        let p = pht.predict(1).unwrap();
        assert!(p.contains(BlockOffset::new(5)), "hysteresis lost block 5");
        assert!(!p.contains(BlockOffset::new(9)), "one-off noise predicted");
    }

    #[test]
    fn reappearing_block_restarts_at_init() {
        let mut p = CounterPattern::from_observed(pat(&[1]));
        p.train(pat(&[1])); // 1 -> 2 (predicted)
        p.train(pat(&[])); // 2 -> 1
        p.train(pat(&[])); // 1 -> 0
        assert!(p.predicted().is_empty());
        p.train(pat(&[1])); // back to INIT (1)
        p.train(pat(&[1])); // 2: predicted again
        assert!(p.predicted().contains(BlockOffset::new(1)));
    }

    #[test]
    fn empty_observations_are_ignored() {
        let mut pht = Pht::new(8);
        pht.train(1, SpatialPattern::empty());
        assert!(pht.is_empty());
    }

    #[test]
    fn capacity_evicts_lru_index() {
        let mut pht = Pht::new(2);
        pht.train(1, pat(&[0]));
        pht.train(2, pat(&[1]));
        pht.predict(1); // refresh 1
        pht.train(3, pat(&[2])); // evicts 2
        assert!(pht.predict(2).is_none());
        assert!(pht.predict(1).is_some());
        assert_eq!(pht.len(), 2);
    }
}
