//! Spatial Memory Streaming (SMS, Somogyi et al., ISCA 2006; Section 2.4),
//! with the 2-bit-counter history of this paper (Section 4.3).
//!
//! SMS observes all L1 accesses. The active generation table (AGT)
//! accumulates, per 2KB region, which blocks a *spatial generation*
//! touches — from the first (trigger) access until one of the accessed
//! blocks leaves the L1. Ended generations train the pattern history table
//! (PHT), indexed by the trigger's PC and block offset so patterns
//! generalize across regions touched by the same code (and thus predict
//! compulsory misses). On a trigger access, the predicted pattern's blocks
//! are fetched directly into the L1.

pub mod pht;

pub use pht::{CounterPattern, Pht};

use stems_types::{BlockOffset, Pc, RegionAddr, SpatialPattern};

use crate::engine::{AccessEvent, EvictKind, PrefetchSink, Prefetcher, StreamTag};
use crate::util::{Entry, LruTable};
use crate::PrefetchConfig;

/// SVB tag used by the spatial component when SMS shares the streamed
/// value buffer (the naive hybrid of Section 5.5).
pub const SMS_SVB_TAG: StreamTag = StreamTag(u8::MAX - 1);

/// The spatial prediction index: trigger PC combined with the trigger's
/// block offset within its region ("PC+offset" correlation from the SMS
/// paper — the paper's best-performing index).
pub fn spatial_index(pc: Pc, offset: BlockOffset) -> u64 {
    (pc.get() << 5) ^ offset.get() as u64
}

/// One in-flight spatial generation.
#[derive(Clone, Debug)]
struct Generation {
    trigger_pc: Pc,
    trigger_offset: BlockOffset,
    observed: SpatialPattern,
}

/// The SMS prefetcher.
///
/// # Example
///
/// ```
/// use stems_core::{PrefetchConfig, SmsPrefetcher};
/// use stems_core::engine::Prefetcher;
///
/// let p = SmsPrefetcher::new(&PrefetchConfig::commercial());
/// assert_eq!(p.name(), "SMS");
/// ```
#[derive(Clone, Debug)]
pub struct SmsPrefetcher {
    agt: LruTable<RegionAddr, Generation>,
    pht: Pht,
    generations_trained: u64,
    triggers: u64,
    /// Fetch into the shared SVB instead of the L1 (naive-hybrid mode;
    /// standalone SMS prefetches into the L1 per the SMS paper).
    svb_mode: bool,
}

impl SmsPrefetcher {
    /// Creates an SMS prefetcher sized by `cfg` (64-entry AGT, 16K-entry
    /// PHT at paper defaults).
    pub fn new(cfg: &PrefetchConfig) -> Self {
        SmsPrefetcher {
            agt: LruTable::new(cfg.agt_entries),
            pht: Pht::new(cfg.pht_entries),
            generations_trained: 0,
            triggers: 0,
            svb_mode: false,
        }
    }

    /// Creates an SMS that fetches into the shared SVB — the configuration
    /// of the naive TMS+SMS combination (Section 5.5), where the two
    /// predictors' fetches contend for the same 64-entry buffer.
    pub fn new_svb_mode(cfg: &PrefetchConfig) -> Self {
        SmsPrefetcher {
            svb_mode: true,
            ..SmsPrefetcher::new(cfg)
        }
    }

    /// Generations that have completed and trained the PHT.
    pub fn generations_trained(&self) -> u64 {
        self.generations_trained
    }

    /// Trigger accesses observed (one per generation).
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// The pattern history table (for diagnostics).
    pub fn pht(&self) -> &Pht {
        &self.pht
    }

    fn train(&mut self, generation: Generation) {
        let index = spatial_index(generation.trigger_pc, generation.trigger_offset);
        self.pht.train(index, generation.observed);
        self.generations_trained += 1;
    }

    fn end_generation(&mut self, region: RegionAddr) {
        if let Some(generation) = self.agt.remove(&region) {
            self.train(generation);
        }
    }
}

impl Default for Generation {
    fn default() -> Self {
        Generation {
            trigger_pc: Pc::new(0),
            trigger_offset: BlockOffset::new(0),
            observed: SpatialPattern::empty(),
        }
    }
}

impl Prefetcher for SmsPrefetcher {
    fn name(&self) -> &str {
        "SMS"
    }

    /// SMS observes **all** L1 accesses (Section 2.4): the AGT
    /// accumulates every block a generation touches, hits included, so
    /// the engine's L1-hit fast path must not skip delivery (the
    /// default; stated explicitly because SMS is the reason the skip is
    /// opt-in).
    fn observes_l1_hits(&self) -> bool {
        true
    }

    fn on_access(&mut self, ev: &AccessEvent, sink: &mut dyn PrefetchSink) {
        let region = ev.block.region();
        let offset = ev.block.offset_in_region();
        // Single-hash AGT access: every L1 access lands here, and one
        // index probe covers both the in-generation update and the
        // trigger insert.
        let victim = match self.agt.entry(region) {
            Entry::Occupied(mut generation) => {
                generation.get_mut().observed.set(offset);
                return;
            }
            Entry::Vacant(slot) => {
                let mut observed = SpatialPattern::empty();
                observed.set(offset);
                slot.insert(Generation {
                    trigger_pc: ev.pc,
                    trigger_offset: offset,
                    observed,
                })
            }
        };
        // Trigger access: a generation started and predicts below.
        self.triggers += 1;
        if let Some((_, victim)) = victim {
            // Capacity eviction ends the victim's generation; train on what
            // was accumulated so far (hardware would otherwise lose it).
            self.train(victim);
        }
        let index = spatial_index(ev.pc, offset);
        if let Some(predicted) = self.pht.predict(index) {
            for o in predicted.iter() {
                if o != offset {
                    let block = region.block_at(o);
                    if self.svb_mode {
                        sink.fetch_svb(block, SMS_SVB_TAG);
                    } else {
                        sink.fetch_l1(block);
                    }
                }
            }
        }
    }

    fn on_l1_evict(&mut self, block: stems_types::BlockAddr, _kind: EvictKind) {
        let region = block.region();
        let offset = block.offset_in_region();
        let ends = self
            .agt
            .peek(&region)
            .is_some_and(|g| g.observed.contains(offset));
        if ends {
            self.end_generation(region);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CoverageSim;
    use stems_memsim::SystemConfig;
    use stems_trace::Trace;
    use stems_types::REGION_BYTES;

    /// Walks `n` fresh regions with the same code and fixed within-region
    /// offsets — the DSS scan shape SMS excels at.
    fn scan_trace(n_regions: u64, offsets: &[u64]) -> Trace {
        let mut t = Trace::new();
        let base = 1 << 30;
        for r in 0..n_regions {
            let region_base = base + r * REGION_BYTES;
            for (i, &o) in offsets.iter().enumerate() {
                t.read(0x400 + i as u64, region_base + o * 64);
            }
        }
        t
    }

    fn run(t: &Trace) -> crate::engine::Counters {
        let cfg = PrefetchConfig::small();
        CoverageSim::new(&SystemConfig::small(), &cfg, SmsPrefetcher::new(&cfg)).run(t)
    }

    #[test]
    fn repeated_layout_predicts_compulsory_misses() {
        let c = run(&scan_trace(64, &[0, 3, 7, 12, 20]));
        // After the pattern is learned (a handful of regions), every
        // non-trigger block of a fresh region is covered.
        let total = c.covered + c.uncovered;
        assert!(
            c.covered as f64 / total as f64 > 0.5,
            "coverage too low: {c:?}"
        );
    }

    #[test]
    fn triggers_are_never_covered() {
        // One block per region: nothing for SMS to prefetch.
        let c = run(&scan_trace(64, &[5]));
        assert_eq!(c.covered, 0);
        assert_eq!(c.uncovered, 64);
    }

    #[test]
    fn unstable_blocks_are_filtered_by_counters() {
        // Region layouts share offsets {0,3} but each has a unique noise
        // block; counters keep the noise out of predictions after a few
        // generations, so overpredictions stay bounded.
        let mut t = Trace::new();
        let base: u64 = 1 << 30;
        for r in 0..64u64 {
            let region_base = base + r * REGION_BYTES;
            t.read(0x400, region_base);
            t.read(0x404, region_base + 3 * 64);
            t.read(0x408, region_base + ((7 + r * 5) % 28 + 4) * 64);
        }
        let c = run(&t);
        // A bit-vector history would predict the ~26-offset union of all
        // noise blocks on every trigger (~1500 overpredictions); 2-bit
        // counters keep each noise block alive for about one generation.
        assert!(
            c.overpredictions < 2 * 64,
            "counters should filter noise: {c:?}"
        );
        assert!(c.covered >= 60, "stable block must stay covered: {c:?}");
    }

    #[test]
    fn generation_training_happens_on_eviction() {
        let cfg = PrefetchConfig::small();
        let mut sim = CoverageSim::new(&SystemConfig::small(), &cfg, SmsPrefetcher::new(&cfg));
        // Touch far more regions than the 4-entry AGT holds: capacity
        // evictions must train.
        let t = scan_trace(32, &[0, 1]);
        sim.run(&t);
        assert!(sim.prefetcher().generations_trained() > 0);
        assert_eq!(sim.prefetcher().triggers(), 32);
    }

    #[test]
    fn spatial_index_distinguishes_pc_and_offset() {
        let a = spatial_index(Pc::new(0x400), BlockOffset::new(0));
        let b = spatial_index(Pc::new(0x400), BlockOffset::new(1));
        let c = spatial_index(Pc::new(0x404), BlockOffset::new(0));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, spatial_index(Pc::new(0x400), BlockOffset::new(0)));
    }
}
