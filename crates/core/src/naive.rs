//! The naive TMS+SMS hybrid of Section 5.5.
//!
//! Both predictors run side by side with no coordination: TMS streams the
//! full miss sequence while SMS independently fetches spatial patterns at
//! triggers. The paper reports that although coverage approaches the joint
//! opportunity, the predictors interfere and generate roughly 2-3x the
//! overpredictions of STeMS — which is precisely why STeMS reconstructs a
//! *single* interleaved sequence instead.

use stems_types::BlockAddr;

use crate::engine::{AccessEvent, EvictKind, PrefetchSink, Prefetcher, StreamTag};
use crate::sms::SmsPrefetcher;
use crate::tms::TmsPrefetcher;
use crate::PrefetchConfig;

/// TMS and SMS operating independently but concurrently.
///
/// # Example
///
/// ```
/// use stems_core::{NaiveHybrid, PrefetchConfig};
/// use stems_core::engine::Prefetcher;
///
/// let p = NaiveHybrid::new(&PrefetchConfig::commercial());
/// assert_eq!(p.name(), "TMS+SMS");
/// ```
#[derive(Clone, Debug)]
pub struct NaiveHybrid {
    tms: TmsPrefetcher,
    sms: SmsPrefetcher,
}

impl NaiveHybrid {
    /// Creates the hybrid with both components at `cfg` sizes.
    pub fn new(cfg: &PrefetchConfig) -> Self {
        NaiveHybrid {
            tms: TmsPrefetcher::new(cfg),
            // Both components share the SVB — the paper's naive
            // combination, where the burst of spatial fetches evicts
            // in-flight temporal stream blocks and vice versa.
            sms: SmsPrefetcher::new_svb_mode(cfg),
        }
    }

    /// The temporal component.
    pub fn tms(&self) -> &TmsPrefetcher {
        &self.tms
    }

    /// The spatial component.
    pub fn sms(&self) -> &SmsPrefetcher {
        &self.sms
    }
}

impl Prefetcher for NaiveHybrid {
    fn name(&self) -> &str {
        "TMS+SMS"
    }

    fn on_access(&mut self, ev: &AccessEvent, sink: &mut dyn PrefetchSink) {
        self.tms.on_access(ev, sink);
        self.sms.on_access(ev, sink);
    }

    fn on_l1_evict(&mut self, block: BlockAddr, kind: EvictKind) {
        self.tms.on_l1_evict(block, kind);
        self.sms.on_l1_evict(block, kind);
    }

    fn on_svb_evict(&mut self, block: BlockAddr, tag: StreamTag) {
        self.tms.on_svb_evict(block, tag);
        self.sms.on_svb_evict(block, tag);
    }

    /// Composed: the hybrid needs L1-hit events iff either component
    /// does (SMS does, so this is `true` — but the composition keeps it
    /// correct if a component's answer ever changes).
    fn observes_l1_hits(&self) -> bool {
        self.tms.observes_l1_hits() || self.sms.observes_l1_hits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Counters, CoverageSim};
    use stems_memsim::SystemConfig;
    use stems_trace::Trace;
    use stems_types::REGION_BYTES;

    fn mixed_trace() -> Trace {
        // Repeating traversal of scattered regions with a spatial pattern:
        // both components have something to predict.
        let mut t = Trace::new();
        for _ in 0..4 {
            for r in 0..128u64 {
                let base = ((r * 2654435761) % (1 << 15)) * REGION_BYTES + (1 << 32);
                for (i, &o) in [0u64, 6, 13].iter().enumerate() {
                    t.read(0x400 + i as u64, base + o * 64);
                }
            }
        }
        t
    }

    fn run<P: Prefetcher>(p: P) -> Counters {
        CoverageSim::new(&SystemConfig::small(), &PrefetchConfig::small(), p).run(&mixed_trace())
    }

    #[test]
    fn hybrid_covers_at_least_each_component() {
        let cfg = PrefetchConfig::small();
        let hybrid = run(NaiveHybrid::new(&cfg));
        let tms = run(TmsPrefetcher::new(&cfg));
        let sms = run(SmsPrefetcher::new(&cfg));
        assert!(
            hybrid.covered + 32 >= tms.covered.max(sms.covered),
            "hybrid {hybrid:?} vs tms {tms:?} / sms {sms:?}"
        );
    }

    #[test]
    fn both_components_are_active() {
        let cfg = PrefetchConfig::small();
        let mut sim = CoverageSim::new(&SystemConfig::small(), &cfg, NaiveHybrid::new(&cfg));
        sim.run(&mixed_trace());
        assert!(sim.prefetcher().tms().recorded_misses() > 0);
        assert!(sim.prefetcher().sms().generations_trained() > 0);
    }
}
