//! Stream queues: the throttled streaming engine shared by TMS and STeMS.
//!
//! Section 4.3: eight stream queues, victimized LRU-by-activity when a new
//! stream is allocated; per-stream *lookahead* bounds the number of blocks
//! kept fetched in the SVB ahead of consumption; "to reduce erroneously
//! fetched blocks due to invalid streams, only a single block is fetched at
//! the beginning of a new stream" — once that block is consumed, the stream
//! is confirmed and streams at full lookahead. When a queue's pending
//! addresses run low, the prefetcher's history source is asked to produce
//! more (further CMOB entries for TMS, resumed reconstruction for STeMS).

use std::collections::VecDeque;

use stems_types::BlockAddr;

use crate::engine::{PrefetchSink, StreamTag};
use crate::PrefetchConfig;

/// Refill callback: asked to append up to `n` more predicted addresses
/// from the stream's history source directly onto the queue's pending
/// deque (no intermediate allocation); returning 0 marks the source
/// exhausted. A refill must only *append* — the queues maintain an
/// incremental membership summary over pending blocks and account for
/// exactly the tail the callback added.
pub type RefillFn<'a, S> = &'a mut dyn FnMut(&mut S, usize, &mut VecDeque<BlockAddr>) -> usize;

/// Number of counting buckets in a [`Membership`] summary. 64 buckets
/// fit the reject test in one `u64` bit mask.
const FILTER_BUCKETS: usize = 64;

/// A compact counting fingerprint over a queue's pending blocks.
///
/// `catch_up` runs on every off-chip miss from both TMS and STeMS; most
/// queues cannot contain the missed block, so a one-word bit test filters
/// them out before the bounded linear scan. Counts (rather than bare
/// bits) make removal exact under pops and drains, so the summary never
/// goes stale: a clear bucket bit *proves* absence, while a set bit only
/// means "maybe present" (hash collisions, or entries beyond the scan
/// depth) and falls through to the scan — behavior is byte-identical to
/// the unfiltered search.
#[derive(Clone, Debug)]
struct Membership {
    counts: [u32; FILTER_BUCKETS],
    /// Bit `b` set iff `counts[b] > 0`.
    bits: u64,
}

impl Default for Membership {
    fn default() -> Self {
        Membership {
            counts: [0; FILTER_BUCKETS],
            bits: 0,
        }
    }
}

impl Membership {
    /// Fibonacci-hash bucket: the top 6 bits of a golden-ratio multiply
    /// spread sequential block addresses across buckets.
    fn bucket(block: BlockAddr) -> usize {
        (block.get().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize
    }

    fn add(&mut self, block: BlockAddr) {
        let b = Self::bucket(block);
        self.counts[b] += 1;
        self.bits |= 1 << b;
    }

    fn remove(&mut self, block: BlockAddr) {
        let b = Self::bucket(block);
        debug_assert!(self.counts[b] > 0, "membership filter underflow");
        self.counts[b] -= 1;
        if self.counts[b] == 0 {
            self.bits &= !(1 << b);
        }
    }

    fn clear(&mut self) {
        self.counts = [0; FILTER_BUCKETS];
        self.bits = 0;
    }

    /// The one-bit test mask for `block`'s bucket: `bits & mask != 0`
    /// means the block *may* be among the summarized pending entries, a
    /// zero result is definitive absence. The hash-and-shift is a
    /// function of the block alone, so a caller testing the same block
    /// against several queues' summaries ([`StreamQueues::catch_up`])
    /// computes it once and tests one AND per queue.
    fn bucket_mask(block: BlockAddr) -> u64 {
        1 << Self::bucket(block)
    }
}

#[derive(Clone, Debug)]
struct Queue<S> {
    source: Option<S>,
    pending: VecDeque<BlockAddr>,
    /// Incremental summary of `pending` (see [`Membership`]).
    filter: Membership,
    inflight: usize,
    confirmed: bool,
    exhausted: bool,
    last_active: u64,
}

impl<S> Default for Queue<S> {
    fn default() -> Self {
        Queue {
            source: None,
            pending: VecDeque::new(),
            filter: Membership::default(),
            inflight: 0,
            confirmed: false,
            exhausted: true,
            last_active: 0,
        }
    }
}

impl<S> Queue<S> {
    /// Runs `refill` on this queue's pending deque and accounts the
    /// appended tail into the membership summary.
    fn refill_pending(&mut self, refill: RefillFn<'_, S>, n: usize) -> usize {
        let Some(source) = self.source.as_mut() else {
            return 0;
        };
        let before = self.pending.len();
        let appended = refill(source, n, &mut self.pending);
        debug_assert!(
            self.pending.len() == before + appended,
            "refill must only append to the pending deque"
        );
        for i in before..self.pending.len() {
            self.filter.add(self.pending[i]);
        }
        appended
    }

    /// Pops the front pending block, keeping the summary in sync.
    fn pop_pending(&mut self) -> Option<BlockAddr> {
        let block = self.pending.pop_front()?;
        self.filter.remove(block);
        Some(block)
    }
}

/// The set of stream queues, generic over the history-source state `S`
/// carried per stream.
#[derive(Clone, Debug)]
pub struct StreamQueues<S> {
    queues: Vec<Queue<S>>,
    lookahead: usize,
    refill_threshold: usize,
    refill_chunk: usize,
    clock: u64,
    streams_started: u64,
}

impl<S> StreamQueues<S> {
    /// Creates the queues from the prefetcher configuration.
    pub fn new(cfg: &PrefetchConfig) -> Self {
        assert!(cfg.stream_queues > 0, "need at least one stream queue");
        StreamQueues {
            queues: (0..cfg.stream_queues).map(|_| Queue::default()).collect(),
            lookahead: cfg.lookahead,
            refill_threshold: cfg.refill_threshold,
            refill_chunk: cfg.refill_chunk,
            clock: 0,
            streams_started: 0,
        }
    }

    /// Total streams ever allocated.
    pub fn streams_started(&self) -> u64 {
        self.streams_started
    }

    /// Number of queues currently holding a live stream.
    pub fn active_streams(&self) -> usize {
        self.queues
            .iter()
            .filter(|q| q.source.is_some() || !q.pending.is_empty() || q.inflight > 0)
            .count()
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// The bounded linear scan `catch_up` falls back to once the
    /// membership filter admits a queue: position of `block` within the
    /// first [`Self::SEARCH_DEPTH`] pending entries, scanning the deque's
    /// two contiguous halves directly — slice scans of u64 newtypes
    /// vectorize where the VecDeque iterator does not.
    fn scan_pending(pending: &VecDeque<BlockAddr>, block: BlockAddr) -> Option<usize> {
        let (front, back) = pending.as_slices();
        let front_take = front.len().min(Self::SEARCH_DEPTH);
        front[..front_take]
            .iter()
            .position(|&b| b == block)
            .or_else(|| {
                let back_take = back.len().min(Self::SEARCH_DEPTH - front_take);
                back[..back_take]
                    .iter()
                    .position(|&b| b == block)
                    .map(|k| front_take + k)
            })
    }

    /// How deep into each queue's pending entries `catch_up` searches.
    const SEARCH_DEPTH: usize = 64;

    fn victim(&self) -> usize {
        // Prefer a fully idle queue; otherwise LRU by activity.
        self.queues
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| {
                let idle = q.source.is_none() && q.pending.is_empty() && q.inflight == 0;
                (!idle as u64, q.last_active)
            })
            .map(|(i, _)| i)
            .expect("at least one queue")
    }

    /// Allocates a queue for a new stream with history source `source`,
    /// flushing the victim queue's unconsumed SVB blocks. Fetches a single
    /// block (new streams are unconfirmed).
    ///
    /// Returns the tag and the victim queue's retired source (if it still
    /// had one), so the caller can recycle its allocations — STeMS pools
    /// `Reconstructor` buffers across stream starts this way.
    pub fn start(
        &mut self,
        source: S,
        sink: &mut dyn PrefetchSink,
        refill: RefillFn<'_, S>,
    ) -> (StreamTag, Option<S>) {
        let idx = self.victim();
        let tag = StreamTag(idx as u8);
        sink.flush_stream(tag);
        let now = self.tick();
        // Reset the victim queue in place: `pending` keeps its buffer, so
        // steady-state stream churn performs no allocation.
        let q = &mut self.queues[idx];
        let retired = q.source.replace(source);
        q.pending.clear();
        q.filter.clear();
        q.inflight = 0;
        q.confirmed = false;
        q.exhausted = false;
        q.last_active = now;
        self.streams_started += 1;
        self.pump(tag, sink, refill);
        (tag, retired)
    }

    /// Notification that a block of stream `tag` was consumed from the SVB:
    /// confirms the stream and streams further blocks up to the lookahead.
    pub fn on_consumed(
        &mut self,
        tag: StreamTag,
        sink: &mut dyn PrefetchSink,
        refill: RefillFn<'_, S>,
    ) {
        let Some(q) = self.queues.get_mut(tag.0 as usize) else {
            return;
        };
        q.inflight = q.inflight.saturating_sub(1);
        q.confirmed = true;
        let now = self.tick();
        self.queues[tag.0 as usize].last_active = now;
        self.pump(tag, sink, refill);
    }

    /// If `block` is among the upcoming pending addresses of a live
    /// stream, the demand stream caught up with (or slightly overran) the
    /// prediction: fast-forward that stream past the block, confirm it,
    /// and pump. Returns the stream's tag, or `None` if no stream had the
    /// block queued — avoiding the flush-and-restart thrash of
    /// re-initiating a stream that is already being followed.
    pub fn catch_up(
        &mut self,
        block: BlockAddr,
        sink: &mut dyn PrefetchSink,
        refill: RefillFn<'_, S>,
    ) -> Option<StreamTag> {
        // Cost model: this runs on every off-chip miss from TMS and
        // STeMS, over Q queues (8 at paper scale). The filter mask below
        // is a function of the block alone — loop-invariant across the
        // queues — so the hash-and-shift is hoisted out and each queue
        // pays one AND-test word load. Only queues whose summary admits
        // the block (hash collisions included) fall through to the
        // bounded SEARCH_DEPTH-entry scan, so the expected per-miss cost
        // is Q bit tests plus at most a handful of short slice scans,
        // never Q full scans.
        let mask = Membership::bucket_mask(block);
        let mut found = None;
        for (i, q) in self.queues.iter().enumerate() {
            // One-word reject: most queues provably do not hold the block,
            // so the bounded scan below runs only on candidate queues.
            if q.filter.bits & mask == 0 {
                continue;
            }
            if let Some(k) = Self::scan_pending(&q.pending, block) {
                found = Some((i, k));
                break;
            }
        }
        let (i, k) = found?;
        let q = &mut self.queues[i];
        {
            let Queue {
                pending, filter, ..
            } = q;
            for b in pending.drain(..=k) {
                filter.remove(b);
            }
        }
        q.confirmed = true;
        let now = self.tick();
        self.queues[i].last_active = now;
        let tag = StreamTag(i as u8);
        self.pump(tag, sink, refill);
        Some(tag)
    }

    /// Notification that a block of stream `tag` left the SVB unconsumed.
    pub fn on_svb_evicted(&mut self, tag: StreamTag) {
        if let Some(q) = self.queues.get_mut(tag.0 as usize) {
            q.inflight = q.inflight.saturating_sub(1);
        }
    }

    /// Issues fetches for `tag` until its in-SVB depth reaches the target
    /// (1 unconfirmed / lookahead confirmed), pulling more addresses from
    /// the source as pending runs low. Bounded work per call.
    fn pump(&mut self, tag: StreamTag, sink: &mut dyn PrefetchSink, refill: RefillFn<'_, S>) {
        let idx = tag.0 as usize;
        let target = {
            let q = &self.queues[idx];
            if q.confirmed {
                self.lookahead
            } else {
                1
            }
        };
        let mut attempts = self.lookahead * 4 + 8;
        loop {
            let q = &mut self.queues[idx];
            if q.inflight >= target || attempts == 0 {
                break;
            }
            if q.pending.is_empty() {
                if q.exhausted || q.source.is_none() {
                    break;
                }
                if q.refill_pending(refill, self.refill_chunk) == 0 {
                    q.exhausted = true;
                    break;
                }
            }
            let block = q.pop_pending().expect("pending nonempty");
            attempts -= 1;
            if sink.fetch_svb(block, tag) {
                q.inflight += 1;
            }
        }
        // Top up pending so the next consumption can stream immediately.
        let q = &mut self.queues[idx];
        if !q.exhausted
            && q.source.is_some()
            && q.pending.len() < self.refill_threshold
            && q.refill_pending(refill, self.refill_chunk) == 0
        {
            q.exhausted = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// A sink that accepts every fetch and records it.
    #[derive(Default)]
    struct RecordingSink {
        fetched: Vec<(BlockAddr, StreamTag)>,
        flushed: Vec<StreamTag>,
        resident: HashSet<u64>,
    }

    impl PrefetchSink for RecordingSink {
        fn fetch_svb(&mut self, block: BlockAddr, tag: StreamTag) -> bool {
            if self.resident.contains(&block.get()) {
                return false;
            }
            self.fetched.push((block, tag));
            true
        }
        fn fetch_l1(&mut self, _block: BlockAddr) -> bool {
            true
        }
        fn flush_stream(&mut self, tag: StreamTag) {
            self.flushed.push(tag);
        }
        fn in_l1(&self, _block: BlockAddr) -> bool {
            false
        }
        fn in_l2(&self, _block: BlockAddr) -> bool {
            false
        }
        fn in_svb(&self, _block: BlockAddr) -> bool {
            false
        }
    }

    /// Source producing blocks `start..start+len`.
    struct Counting {
        next: u64,
        end: u64,
    }

    fn refill(c: &mut Counting, n: usize, out: &mut VecDeque<BlockAddr>) -> usize {
        let mut appended = 0;
        while c.next < c.end && appended < n {
            out.push_back(BlockAddr::new(c.next));
            c.next += 1;
            appended += 1;
        }
        appended
    }

    fn cfg() -> PrefetchConfig {
        PrefetchConfig {
            stream_queues: 2,
            lookahead: 4,
            refill_threshold: 2,
            refill_chunk: 4,
            ..PrefetchConfig::small()
        }
    }

    #[test]
    fn new_stream_fetches_single_block() {
        let mut qs: StreamQueues<Counting> = StreamQueues::new(&cfg());
        let mut sink = RecordingSink::default();
        qs.start(Counting { next: 0, end: 100 }, &mut sink, &mut refill);
        assert_eq!(sink.fetched.len(), 1);
        assert_eq!(sink.fetched[0].0, BlockAddr::new(0));
    }

    #[test]
    fn confirmation_opens_lookahead() {
        let mut qs: StreamQueues<Counting> = StreamQueues::new(&cfg());
        let mut sink = RecordingSink::default();
        let tag = qs
            .start(Counting { next: 0, end: 100 }, &mut sink, &mut refill)
            .0;
        qs.on_consumed(tag, &mut sink, &mut refill);
        // After consuming the probe block, the stream fills to lookahead=4.
        assert_eq!(sink.fetched.len(), 1 + 4);
    }

    #[test]
    fn exhausted_source_stops_stream() {
        let mut qs: StreamQueues<Counting> = StreamQueues::new(&cfg());
        let mut sink = RecordingSink::default();
        let tag = qs
            .start(Counting { next: 0, end: 2 }, &mut sink, &mut refill)
            .0;
        qs.on_consumed(tag, &mut sink, &mut refill);
        qs.on_consumed(tag, &mut sink, &mut refill);
        qs.on_consumed(tag, &mut sink, &mut refill);
        assert_eq!(sink.fetched.len(), 2); // only two addresses existed
    }

    #[test]
    fn victim_is_lru_and_flushed() {
        let mut qs: StreamQueues<Counting> = StreamQueues::new(&cfg());
        let mut sink = RecordingSink::default();
        let t0 = qs
            .start(Counting { next: 0, end: 10 }, &mut sink, &mut refill)
            .0;
        let t1 = qs
            .start(
                Counting {
                    next: 100,
                    end: 110,
                },
                &mut sink,
                &mut refill,
            )
            .0;
        assert_ne!(t0, t1);
        // Touch t0 so t1 becomes LRU.
        qs.on_consumed(t0, &mut sink, &mut refill);
        sink.flushed.clear();
        let (t2, retired) = qs.start(
            Counting {
                next: 200,
                end: 210,
            },
            &mut sink,
            &mut refill,
        );
        assert_eq!(t2, t1, "LRU stream should be victimized");
        assert!(retired.is_some(), "victim's source is handed back");
        assert_eq!(sink.flushed, vec![t1]);
    }

    #[test]
    fn refused_fetches_do_not_count_inflight() {
        let mut qs: StreamQueues<Counting> = StreamQueues::new(&cfg());
        let mut sink = RecordingSink::default();
        sink.resident.insert(0); // block 0 already resident -> refused
        let tag = qs
            .start(Counting { next: 0, end: 100 }, &mut sink, &mut refill)
            .0;
        // Probe skipped block 0 and fetched block 1 instead.
        assert_eq!(sink.fetched, vec![(BlockAddr::new(1), tag)]);
    }

    #[test]
    fn svb_eviction_reduces_inflight_and_allows_refetch() {
        let mut qs: StreamQueues<Counting> = StreamQueues::new(&cfg());
        let mut sink = RecordingSink::default();
        let tag = qs
            .start(Counting { next: 0, end: 100 }, &mut sink, &mut refill)
            .0;
        qs.on_consumed(tag, &mut sink, &mut refill); // inflight = 4
        qs.on_svb_evicted(tag); // inflight = 3
        let before = sink.fetched.len();
        qs.on_consumed(tag, &mut sink, &mut refill); // inflight 2 -> fill to 4
        assert_eq!(sink.fetched.len(), before + 2);
    }

    /// Recomputes every queue's membership summary from scratch and
    /// asserts the incrementally maintained one matches exactly.
    fn assert_filters_consistent(qs: &StreamQueues<Counting>) {
        for (i, q) in qs.queues.iter().enumerate() {
            let mut counts = [0u32; FILTER_BUCKETS];
            for &b in &q.pending {
                counts[Membership::bucket(b)] += 1;
            }
            assert_eq!(
                counts, q.filter.counts,
                "queue {i}: filter counts drifted from pending contents"
            );
            let bits = counts
                .iter()
                .enumerate()
                .fold(0u64, |acc, (b, &c)| if c > 0 { acc | 1 << b } else { acc });
            assert_eq!(bits, q.filter.bits, "queue {i}: filter bit mask stale");
        }
    }

    /// What an unfiltered `catch_up` would find: the first queue (in
    /// index order) whose bounded scan locates `block`.
    fn oracle_catch_up(qs: &StreamQueues<Counting>, block: BlockAddr) -> Option<StreamTag> {
        qs.queues
            .iter()
            .position(|q| StreamQueues::<Counting>::scan_pending(&q.pending, block).is_some())
            .map(|i| StreamTag(i as u8))
    }

    /// Property test: under random start / pump / consume / evict / reset
    /// sequences, the membership filter returns exactly what a
    /// linear-scan oracle returns, and never goes stale.
    #[test]
    fn catch_up_filter_matches_linear_scan_oracle() {
        use crate::util::XorShift64;

        for seed in 0..12u64 {
            let mut rng = XorShift64::new(0xF117E12 ^ seed);
            let cfg = PrefetchConfig {
                stream_queues: 1 + (seed as usize % 4),
                lookahead: 4,
                refill_threshold: 2,
                refill_chunk: 4,
                ..PrefetchConfig::small()
            };
            let mut qs: StreamQueues<Counting> = StreamQueues::new(&cfg);
            let mut sink = RecordingSink::default();
            for _step in 0..2500u32 {
                let tag = StreamTag(rng.below(cfg.stream_queues as u64) as u8);
                match rng.below(10) {
                    0..=2 => {
                        // Start (resets the victim queue and its filter).
                        let next = rng.below(40);
                        let end = next + 1 + rng.below(16);
                        qs.start(Counting { next, end }, &mut sink, &mut refill);
                    }
                    3..=5 => {
                        // Consumption pumps (pops + refills) a queue.
                        qs.on_consumed(tag, &mut sink, &mut refill);
                    }
                    6..=8 => {
                        let block = BlockAddr::new(rng.below(48));
                        let expect = oracle_catch_up(&qs, block);
                        let got = qs.catch_up(block, &mut sink, &mut refill);
                        assert_eq!(
                            got, expect,
                            "catch_up({block:?}) diverged from the scan oracle (seed {seed})"
                        );
                    }
                    _ => {
                        qs.on_svb_evicted(tag);
                    }
                }
                assert_filters_consistent(&qs);
            }
        }
    }

    #[test]
    fn stream_counters() {
        let mut qs: StreamQueues<Counting> = StreamQueues::new(&cfg());
        let mut sink = RecordingSink::default();
        qs.start(Counting { next: 0, end: 10 }, &mut sink, &mut refill);
        qs.start(Counting { next: 0, end: 10 }, &mut sink, &mut refill);
        assert_eq!(qs.streams_started(), 2);
        assert_eq!(qs.active_streams(), 2);
    }
}
