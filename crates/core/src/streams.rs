//! Stream queues: the throttled streaming engine shared by TMS and STeMS.
//!
//! Section 4.3: eight stream queues, victimized LRU-by-activity when a new
//! stream is allocated; per-stream *lookahead* bounds the number of blocks
//! kept fetched in the SVB ahead of consumption; "to reduce erroneously
//! fetched blocks due to invalid streams, only a single block is fetched at
//! the beginning of a new stream" — once that block is consumed, the stream
//! is confirmed and streams at full lookahead. When a queue's pending
//! addresses run low, the prefetcher's history source is asked to produce
//! more (further CMOB entries for TMS, resumed reconstruction for STeMS).

use std::collections::VecDeque;

use stems_types::BlockAddr;

use crate::engine::{PrefetchSink, StreamTag};
use crate::PrefetchConfig;

/// Refill callback: asked to append up to `n` more predicted addresses
/// from the stream's history source directly onto the queue's pending
/// deque (no intermediate allocation); returning 0 marks the source
/// exhausted.
pub type RefillFn<'a, S> = &'a mut dyn FnMut(&mut S, usize, &mut VecDeque<BlockAddr>) -> usize;

#[derive(Clone, Debug)]
struct Queue<S> {
    source: Option<S>,
    pending: VecDeque<BlockAddr>,
    inflight: usize,
    confirmed: bool,
    exhausted: bool,
    last_active: u64,
}

impl<S> Default for Queue<S> {
    fn default() -> Self {
        Queue {
            source: None,
            pending: VecDeque::new(),
            inflight: 0,
            confirmed: false,
            exhausted: true,
            last_active: 0,
        }
    }
}

/// The set of stream queues, generic over the history-source state `S`
/// carried per stream.
#[derive(Clone, Debug)]
pub struct StreamQueues<S> {
    queues: Vec<Queue<S>>,
    lookahead: usize,
    refill_threshold: usize,
    refill_chunk: usize,
    clock: u64,
    streams_started: u64,
}

impl<S> StreamQueues<S> {
    /// Creates the queues from the prefetcher configuration.
    pub fn new(cfg: &PrefetchConfig) -> Self {
        assert!(cfg.stream_queues > 0, "need at least one stream queue");
        StreamQueues {
            queues: (0..cfg.stream_queues).map(|_| Queue::default()).collect(),
            lookahead: cfg.lookahead,
            refill_threshold: cfg.refill_threshold,
            refill_chunk: cfg.refill_chunk,
            clock: 0,
            streams_started: 0,
        }
    }

    /// Total streams ever allocated.
    pub fn streams_started(&self) -> u64 {
        self.streams_started
    }

    /// Number of queues currently holding a live stream.
    pub fn active_streams(&self) -> usize {
        self.queues
            .iter()
            .filter(|q| q.source.is_some() || !q.pending.is_empty() || q.inflight > 0)
            .count()
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn victim(&self) -> usize {
        // Prefer a fully idle queue; otherwise LRU by activity.
        self.queues
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| {
                let idle = q.source.is_none() && q.pending.is_empty() && q.inflight == 0;
                (!idle as u64, q.last_active)
            })
            .map(|(i, _)| i)
            .expect("at least one queue")
    }

    /// Allocates a queue for a new stream with history source `source`,
    /// flushing the victim queue's unconsumed SVB blocks. Fetches a single
    /// block (new streams are unconfirmed).
    pub fn start(
        &mut self,
        source: S,
        sink: &mut dyn PrefetchSink,
        refill: RefillFn<'_, S>,
    ) -> StreamTag {
        let idx = self.victim();
        let tag = StreamTag(idx as u8);
        sink.flush_stream(tag);
        let now = self.tick();
        // Reset the victim queue in place: `pending` keeps its buffer, so
        // steady-state stream churn performs no allocation.
        let q = &mut self.queues[idx];
        q.source = Some(source);
        q.pending.clear();
        q.inflight = 0;
        q.confirmed = false;
        q.exhausted = false;
        q.last_active = now;
        self.streams_started += 1;
        self.pump(tag, sink, refill);
        tag
    }

    /// Notification that a block of stream `tag` was consumed from the SVB:
    /// confirms the stream and streams further blocks up to the lookahead.
    pub fn on_consumed(
        &mut self,
        tag: StreamTag,
        sink: &mut dyn PrefetchSink,
        refill: RefillFn<'_, S>,
    ) {
        let Some(q) = self.queues.get_mut(tag.0 as usize) else {
            return;
        };
        q.inflight = q.inflight.saturating_sub(1);
        q.confirmed = true;
        let now = self.tick();
        self.queues[tag.0 as usize].last_active = now;
        self.pump(tag, sink, refill);
    }

    /// If `block` is among the upcoming pending addresses of a live
    /// stream, the demand stream caught up with (or slightly overran) the
    /// prediction: fast-forward that stream past the block, confirm it,
    /// and pump. Returns the stream's tag, or `None` if no stream had the
    /// block queued — avoiding the flush-and-restart thrash of
    /// re-initiating a stream that is already being followed.
    pub fn catch_up(
        &mut self,
        block: BlockAddr,
        sink: &mut dyn PrefetchSink,
        refill: RefillFn<'_, S>,
    ) -> Option<StreamTag> {
        const SEARCH_DEPTH: usize = 64;
        let mut found = None;
        for (i, q) in self.queues.iter().enumerate() {
            // Scan the deque's two contiguous halves directly: this runs
            // for every off-chip miss, and slice scans of u64 newtypes
            // vectorize where the VecDeque iterator does not.
            let (front, back) = q.pending.as_slices();
            let front_take = front.len().min(SEARCH_DEPTH);
            let k = front[..front_take]
                .iter()
                .position(|&b| b == block)
                .or_else(|| {
                    let back_take = back.len().min(SEARCH_DEPTH - front_take);
                    back[..back_take]
                        .iter()
                        .position(|&b| b == block)
                        .map(|k| front_take + k)
                });
            if let Some(k) = k {
                found = Some((i, k));
                break;
            }
        }
        let (i, k) = found?;
        let q = &mut self.queues[i];
        q.pending.drain(..=k);
        q.confirmed = true;
        let now = self.tick();
        self.queues[i].last_active = now;
        let tag = StreamTag(i as u8);
        self.pump(tag, sink, refill);
        Some(tag)
    }

    /// Notification that a block of stream `tag` left the SVB unconsumed.
    pub fn on_svb_evicted(&mut self, tag: StreamTag) {
        if let Some(q) = self.queues.get_mut(tag.0 as usize) {
            q.inflight = q.inflight.saturating_sub(1);
        }
    }

    /// Issues fetches for `tag` until its in-SVB depth reaches the target
    /// (1 unconfirmed / lookahead confirmed), pulling more addresses from
    /// the source as pending runs low. Bounded work per call.
    fn pump(&mut self, tag: StreamTag, sink: &mut dyn PrefetchSink, refill: RefillFn<'_, S>) {
        let idx = tag.0 as usize;
        let target = {
            let q = &self.queues[idx];
            if q.confirmed {
                self.lookahead
            } else {
                1
            }
        };
        let mut attempts = self.lookahead * 4 + 8;
        loop {
            let q = &mut self.queues[idx];
            if q.inflight >= target || attempts == 0 {
                break;
            }
            if q.pending.is_empty() {
                if q.exhausted {
                    break;
                }
                let Some(source) = q.source.as_mut() else {
                    break;
                };
                if refill(source, self.refill_chunk, &mut q.pending) == 0 {
                    q.exhausted = true;
                    break;
                }
            }
            let block = q.pending.pop_front().expect("pending nonempty");
            attempts -= 1;
            if sink.fetch_svb(block, tag) {
                q.inflight += 1;
            }
        }
        // Top up pending so the next consumption can stream immediately.
        let q = &mut self.queues[idx];
        if !q.exhausted && q.pending.len() < self.refill_threshold {
            if let Some(source) = q.source.as_mut() {
                if refill(source, self.refill_chunk, &mut q.pending) == 0 {
                    q.exhausted = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// A sink that accepts every fetch and records it.
    #[derive(Default)]
    struct RecordingSink {
        fetched: Vec<(BlockAddr, StreamTag)>,
        flushed: Vec<StreamTag>,
        resident: HashSet<u64>,
    }

    impl PrefetchSink for RecordingSink {
        fn fetch_svb(&mut self, block: BlockAddr, tag: StreamTag) -> bool {
            if self.resident.contains(&block.get()) {
                return false;
            }
            self.fetched.push((block, tag));
            true
        }
        fn fetch_l1(&mut self, _block: BlockAddr) -> bool {
            true
        }
        fn flush_stream(&mut self, tag: StreamTag) {
            self.flushed.push(tag);
        }
        fn in_l1(&self, _block: BlockAddr) -> bool {
            false
        }
        fn in_l2(&self, _block: BlockAddr) -> bool {
            false
        }
        fn in_svb(&self, _block: BlockAddr) -> bool {
            false
        }
    }

    /// Source producing blocks `start..start+len`.
    struct Counting {
        next: u64,
        end: u64,
    }

    fn refill(c: &mut Counting, n: usize, out: &mut VecDeque<BlockAddr>) -> usize {
        let mut appended = 0;
        while c.next < c.end && appended < n {
            out.push_back(BlockAddr::new(c.next));
            c.next += 1;
            appended += 1;
        }
        appended
    }

    fn cfg() -> PrefetchConfig {
        PrefetchConfig {
            stream_queues: 2,
            lookahead: 4,
            refill_threshold: 2,
            refill_chunk: 4,
            ..PrefetchConfig::small()
        }
    }

    #[test]
    fn new_stream_fetches_single_block() {
        let mut qs: StreamQueues<Counting> = StreamQueues::new(&cfg());
        let mut sink = RecordingSink::default();
        qs.start(Counting { next: 0, end: 100 }, &mut sink, &mut refill);
        assert_eq!(sink.fetched.len(), 1);
        assert_eq!(sink.fetched[0].0, BlockAddr::new(0));
    }

    #[test]
    fn confirmation_opens_lookahead() {
        let mut qs: StreamQueues<Counting> = StreamQueues::new(&cfg());
        let mut sink = RecordingSink::default();
        let tag = qs.start(Counting { next: 0, end: 100 }, &mut sink, &mut refill);
        qs.on_consumed(tag, &mut sink, &mut refill);
        // After consuming the probe block, the stream fills to lookahead=4.
        assert_eq!(sink.fetched.len(), 1 + 4);
    }

    #[test]
    fn exhausted_source_stops_stream() {
        let mut qs: StreamQueues<Counting> = StreamQueues::new(&cfg());
        let mut sink = RecordingSink::default();
        let tag = qs.start(Counting { next: 0, end: 2 }, &mut sink, &mut refill);
        qs.on_consumed(tag, &mut sink, &mut refill);
        qs.on_consumed(tag, &mut sink, &mut refill);
        qs.on_consumed(tag, &mut sink, &mut refill);
        assert_eq!(sink.fetched.len(), 2); // only two addresses existed
    }

    #[test]
    fn victim_is_lru_and_flushed() {
        let mut qs: StreamQueues<Counting> = StreamQueues::new(&cfg());
        let mut sink = RecordingSink::default();
        let t0 = qs.start(Counting { next: 0, end: 10 }, &mut sink, &mut refill);
        let t1 = qs.start(
            Counting {
                next: 100,
                end: 110,
            },
            &mut sink,
            &mut refill,
        );
        assert_ne!(t0, t1);
        // Touch t0 so t1 becomes LRU.
        qs.on_consumed(t0, &mut sink, &mut refill);
        sink.flushed.clear();
        let t2 = qs.start(
            Counting {
                next: 200,
                end: 210,
            },
            &mut sink,
            &mut refill,
        );
        assert_eq!(t2, t1, "LRU stream should be victimized");
        assert_eq!(sink.flushed, vec![t1]);
    }

    #[test]
    fn refused_fetches_do_not_count_inflight() {
        let mut qs: StreamQueues<Counting> = StreamQueues::new(&cfg());
        let mut sink = RecordingSink::default();
        sink.resident.insert(0); // block 0 already resident -> refused
        let tag = qs.start(Counting { next: 0, end: 100 }, &mut sink, &mut refill);
        // Probe skipped block 0 and fetched block 1 instead.
        assert_eq!(sink.fetched, vec![(BlockAddr::new(1), tag)]);
    }

    #[test]
    fn svb_eviction_reduces_inflight_and_allows_refetch() {
        let mut qs: StreamQueues<Counting> = StreamQueues::new(&cfg());
        let mut sink = RecordingSink::default();
        let tag = qs.start(Counting { next: 0, end: 100 }, &mut sink, &mut refill);
        qs.on_consumed(tag, &mut sink, &mut refill); // inflight = 4
        qs.on_svb_evicted(tag); // inflight = 3
        let before = sink.fetched.len();
        qs.on_consumed(tag, &mut sink, &mut refill); // inflight 2 -> fill to 4
        assert_eq!(sink.fetched.len(), before + 2);
    }

    #[test]
    fn stream_counters() {
        let mut qs: StreamQueues<Counting> = StreamQueues::new(&cfg());
        let mut sink = RecordingSink::default();
        qs.start(Counting { next: 0, end: 10 }, &mut sink, &mut refill);
        qs.start(Counting { next: 0, end: 10 }, &mut sink, &mut refill);
        assert_eq!(qs.streams_started(), 2);
        assert_eq!(qs.active_streams(), 2);
    }
}
