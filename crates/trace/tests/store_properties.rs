//! Adversarial and property tests for the chunked trace store
//! (`docs/TRACE_FORMAT.md`): lossless round trips over arbitrary
//! records and frame geometries, and typed — never panicking — errors
//! on every class of damaged input.

use proptest::prelude::*;

use stems_trace::store::{
    write_store, DEFAULT_FRAME_RECORDS, HEADER_BYTES, STORE_MAGIC, STORE_VERSION,
};
use stems_trace::{
    Access, AccessKind, Dependence, Trace, TraceReader, TraceStoreError, TraceWriter,
};
use stems_types::{Addr, Pc};

fn access(pc: u64, addr: u64, write: bool, dep: bool, work: u16) -> Access {
    Access {
        pc: Pc::new(pc),
        addr: Addr::new(addr),
        kind: if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
        dep: if dep {
            Dependence::OnPrevAccess
        } else {
            Dependence::Independent
        },
        work_before: work,
    }
}

/// A small valid store (3 frames of 5 records) used as the corruption
/// target throughout.
fn valid_store() -> Vec<u8> {
    let trace: Trace = (0..15u64)
        .map(|i| access(0x400 + i * 4, i * 64, i % 3 == 0, i % 5 == 0, i as u16))
        .collect();
    let mut buf = Vec::new();
    let mut w = TraceWriter::new(&mut buf)
        .expect("header write")
        .with_frame_capacity(5);
    w.write_accesses(trace.as_slice()).unwrap();
    w.finish().unwrap();
    drop(w);
    buf
}

fn read_all(bytes: &[u8]) -> Result<Trace, TraceStoreError> {
    TraceReader::new(bytes)?.read_to_trace()
}

proptest! {
    /// Any sequence of records survives persist → stream untouched, for
    /// any frame capacity, and no streamed chunk ever exceeds that
    /// capacity (the O(chunk) memory bound).
    #[test]
    fn store_round_trips_any_records_and_frame_capacity(
        records in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<bool>(), any::<bool>(), any::<u16>()),
            0..300,
        ),
        capacity in 1usize..64,
    ) {
        let trace: Trace = records
            .iter()
            .map(|&(pc, addr, w, d, work)| access(pc, addr, w, d, work))
            .collect();
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap().with_frame_capacity(capacity);
        w.write_accesses(trace.as_slice()).unwrap();
        let summary = w.finish().unwrap();
        drop(w);
        prop_assert_eq!(summary.records, trace.len() as u64);

        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        let mut replayed = Trace::new();
        while let Some(chunk) = reader.next_chunk().unwrap() {
            prop_assert!(chunk.len() <= capacity, "chunk exceeds frame capacity");
            replayed.extend(chunk.iter().copied());
        }
        prop_assert_eq!(replayed, trace);
        prop_assert_eq!(reader.frames_read(), summary.frames);
        prop_assert_eq!(reader.records_read(), summary.records);
    }

    /// Truncating a valid store anywhere mid-frame yields `Truncated`;
    /// cutting exactly at a frame boundary is a clean (shorter) stream.
    /// Never a panic, never garbage records.
    #[test]
    fn truncation_is_always_detected_or_clean(cut in 0usize..1000) {
        let bytes = valid_store();
        let cut = cut % bytes.len();
        let result = read_all(&bytes[..cut]);
        match result {
            Ok(trace) => {
                // Only frame boundaries (and the bare header) read clean,
                // and then only whole frames' worth of records survive.
                prop_assert!(cut >= HEADER_BYTES);
                prop_assert_eq!(trace.len() % 5, 0);
            }
            Err(TraceStoreError::Truncated { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    /// Flipping any single byte of a valid store produces a typed error
    /// or (for cuts inside undecoded regions) a successful read of
    /// unaffected frames — never a panic. This is the blanket
    /// hostile-bytes guarantee behind every narrower test below.
    #[test]
    fn single_byte_flips_never_panic(pos in 0usize..1000, bit in 0u32..8) {
        let mut bytes = valid_store();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        let _ = read_all(&bytes); // Ok or Err both acceptable; no panic.
    }
}

#[test]
fn bad_magic_is_reported_with_found_bytes() {
    let mut bytes = valid_store();
    bytes[0] = b'X';
    match read_all(&bytes) {
        Err(TraceStoreError::BadMagic { found }) => {
            assert_eq!(&found[1..], &STORE_MAGIC[1..]);
            assert_eq!(found[0], b'X');
        }
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn legacy_blob_magic_gets_a_pointed_message() {
    // A legacy `write_trace` blob starts with STEMSTR1; the store reader
    // must name it rather than reporting generic bad magic.
    let mut legacy = Vec::new();
    stems_trace::write_trace(&mut legacy, &Trace::new()).unwrap();
    let err = read_all(&legacy).unwrap_err();
    assert!(matches!(err, TraceStoreError::BadMagic { .. }));
    assert!(
        err.to_string().contains("legacy"),
        "message should steer to read_trace: {err}"
    );
}

#[test]
fn unsupported_version_is_rejected() {
    let mut bytes = valid_store();
    bytes[8..10].copy_from_slice(&(STORE_VERSION + 1).to_le_bytes());
    match read_all(&bytes) {
        Err(TraceStoreError::UnsupportedVersion { found }) => {
            assert_eq!(found, STORE_VERSION + 1);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn unknown_feature_flags_are_rejected() {
    let mut bytes = valid_store();
    bytes[10..12].copy_from_slice(&0x0004u16.to_le_bytes());
    match read_all(&bytes) {
        Err(TraceStoreError::UnsupportedFlags { flags }) => assert_eq!(flags, 4),
        other => panic!("expected UnsupportedFlags, got {other:?}"),
    }
}

#[test]
fn file_shorter_than_the_header_is_truncated_at_zero() {
    for len in 0..HEADER_BYTES {
        match read_all(&valid_store()[..len]) {
            Err(TraceStoreError::Truncated { frame_offset: 0 }) => {}
            other => panic!("len {len}: expected Truncated at 0, got {other:?}"),
        }
    }
}

#[test]
fn payload_corruption_fails_the_checksum_with_both_values() {
    let mut bytes = valid_store();
    // First frame's payload starts after the file header + frame header.
    let target = HEADER_BYTES + 8 + 2;
    bytes[target] ^= 0xFF;
    match read_all(&bytes) {
        Err(TraceStoreError::ChecksumMismatch {
            frame,
            stored,
            computed,
        }) => {
            assert_eq!(frame, 0);
            assert_ne!(stored, computed);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn checksum_corruption_reports_the_frame_index() {
    let full = valid_store();
    // Corrupt the *second* frame's checksum: flip the last byte of the
    // second frame (frames are identical in size here).
    let frame_len = (full.len() - HEADER_BYTES) / 3;
    let mut bytes = full;
    let pos = HEADER_BYTES + 2 * frame_len - 1;
    bytes[pos] ^= 0x01;
    match read_all(&bytes) {
        Err(TraceStoreError::ChecksumMismatch { frame, .. }) => assert_eq!(frame, 1),
        other => panic!("expected ChecksumMismatch on frame 1, got {other:?}"),
    }
}

#[test]
fn zero_record_frame_is_corrupt_not_a_loop() {
    let mut bytes = valid_store();
    // Zero the first frame's record count; keep everything else.
    bytes[HEADER_BYTES..HEADER_BYTES + 4].copy_from_slice(&0u32.to_le_bytes());
    match read_all(&bytes) {
        Err(TraceStoreError::Corrupt { frame: 0, .. }) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn oversized_declared_payload_is_corrupt_without_allocation() {
    let mut bytes = valid_store();
    bytes[HEADER_BYTES + 4..HEADER_BYTES + 8].copy_from_slice(&u32::MAX.to_le_bytes());
    match read_all(&bytes) {
        Err(TraceStoreError::Corrupt { frame: 0, reason }) => {
            assert!(reason.contains("payload"), "reason: {reason}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn partial_chunks_before_the_damage_are_still_delivered() {
    // Streaming must hand over frames 0 and 1 before failing on frame 2:
    // a replay consumer sees good data up to the corruption point.
    let full = valid_store();
    let frame_len = (full.len() - HEADER_BYTES) / 3;
    let mut bytes = full;
    let last_payload = HEADER_BYTES + 2 * frame_len + 8 + 1;
    bytes[last_payload] ^= 0x80;
    let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
    assert_eq!(reader.next_chunk().unwrap().unwrap().len(), 5);
    assert_eq!(reader.next_chunk().unwrap().unwrap().len(), 5);
    assert!(matches!(
        reader.next_chunk(),
        Err(TraceStoreError::ChecksumMismatch { frame: 2, .. })
    ));
}

#[test]
fn empty_store_reads_back_empty() {
    let mut buf = Vec::new();
    let summary = write_store(&mut buf, &Trace::new()).unwrap();
    assert_eq!(summary.frames, 0);
    assert_eq!(summary.records, 0);
    assert_eq!(buf.len(), HEADER_BYTES);
    assert!(read_all(&buf).unwrap().is_empty());
}

#[test]
fn worked_example_in_trace_format_md_is_byte_accurate() {
    // The spec's worked example, byte for byte. If this fails, either
    // the encoder changed (bump STORE_VERSION) or the doc has a bug.
    let mut trace = Trace::new();
    trace.read(0x400, 0x1000);
    trace.read(0x404, 0x1040);
    let mut buf = Vec::new();
    write_store(&mut buf, &trace).unwrap();
    #[rustfmt::skip]
    let expected: &[u8] = &[
        b'S', b'T', b'E', b'M', b'S', b'T', b'R', b'C',
        0x01, 0x00,             // version 1
        0x00, 0x00,             // flags 0
        0x02, 0x00, 0x00, 0x00, // count = 2
        0x0a, 0x00, 0x00, 0x00, // payload_len = 10
        0x80, 0x10, 0x08,       // pc deltas
        0x80, 0x40, 0x80, 0x01, // addr deltas
        0x00,                   // flags column
        0x00, 0x00,             // work column
        0xda, 0x0f, 0xbe, 0xf4, // CRC-32
    ];
    assert_eq!(buf, expected);
}

#[test]
fn default_frame_capacity_is_the_documented_constant() {
    // TRACE_FORMAT.md quotes this; keep the doc honest.
    assert_eq!(DEFAULT_FRAME_RECORDS, 1 << 15);
}
