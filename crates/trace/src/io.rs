//! Binary trace serialization (legacy single-blob codec).
//!
//! A small fixed-width little-endian codec so traces can be captured once
//! and replayed across experiments (the paper's methodology collects traces
//! first and analyzes them repeatedly, Section 5.1).
//!
//! This is the v1 format: a global record count followed by fixed
//! 24-byte records. It cannot be appended to (the count is written
//! first) and cannot be replayed without materializing the whole trace,
//! so new captures use the chunked store in [`crate::store`] instead
//! (see `docs/TRACE_FORMAT.md`); this codec is kept for reading old
//! fixtures and as the simplest possible interchange blob. Format:
//!
//! ```text
//! magic   [u8; 8]  = b"STEMSTR1"
//! count   u64      number of records
//! records count x 24 bytes:
//!     pc     u64
//!     addr   u64
//!     kind   u8   (0 = read, 1 = write)
//!     dep    u8   (0 = independent, 1 = on-prev)
//!     work   u16
//!     pad    u32  (reserved, zero)
//! ```

use std::io::{self, Read, Write};

use stems_types::{Addr, Pc};

use crate::{Access, AccessKind, Dependence, Trace};

/// Legacy blob magic (`crate::store` distinguishes the two formats by
/// these bytes when explaining a [`crate::store::TraceStoreError::BadMagic`]).
pub(crate) const MAGIC: &[u8; 8] = b"STEMSTR1";
const RECORD_BYTES: usize = 24;

/// Errors produced by trace (de)serialization.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the trace magic.
    BadMagic,
    /// A record contained an invalid enum encoding.
    BadRecord {
        /// Index of the offending record.
        index: u64,
    },
    /// The stream ended before `count` records were read.
    Truncated,
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceIoError::BadMagic => write!(f, "not a stems trace (bad magic)"),
            TraceIoError::BadRecord { index } => {
                write!(f, "invalid trace record at index {index}")
            }
            TraceIoError::Truncated => write!(f, "trace stream ended early"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes `trace` to `writer` in the binary trace format.
///
/// A `&mut` reference may be passed for the writer.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] on any underlying write failure.
pub fn write_trace<W: Write>(mut writer: W, trace: &Trace) -> Result<(), TraceIoError> {
    writer.write_all(MAGIC)?;
    writer.write_all(&(trace.len() as u64).to_le_bytes())?;
    let mut buf = [0u8; RECORD_BYTES];
    for a in trace.iter() {
        buf[0..8].copy_from_slice(&a.pc.get().to_le_bytes());
        buf[8..16].copy_from_slice(&a.addr.get().to_le_bytes());
        buf[16] = match a.kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        };
        buf[17] = match a.dep {
            Dependence::Independent => 0,
            Dependence::OnPrevAccess => 1,
        };
        buf[18..20].copy_from_slice(&a.work_before.to_le_bytes());
        buf[20..24].copy_from_slice(&0u32.to_le_bytes());
        writer.write_all(&buf)?;
    }
    Ok(())
}

/// Reads a trace previously written by [`write_trace`].
///
/// A `&mut` reference may be passed for the reader.
///
/// # Errors
///
/// Returns [`TraceIoError::BadMagic`] if the header is wrong,
/// [`TraceIoError::Truncated`] if the stream ends early, and
/// [`TraceIoError::BadRecord`] if a record's kind/dep byte is invalid.
pub fn read_trace<R: Read>(mut reader: R) -> Result<Trace, TraceIoError> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceIoError::Truncated
        } else {
            TraceIoError::Io(e)
        }
    })?;
    if &magic != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    let mut count_buf = [0u8; 8];
    reader.read_exact(&mut count_buf)?;
    let count = u64::from_le_bytes(count_buf);
    let mut trace = Trace::with_capacity(count.min(1 << 24) as usize);
    let mut buf = [0u8; RECORD_BYTES];
    for index in 0..count {
        reader.read_exact(&mut buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                TraceIoError::Truncated
            } else {
                TraceIoError::Io(e)
            }
        })?;
        let pc = Pc::new(u64::from_le_bytes(buf[0..8].try_into().unwrap()));
        let addr = Addr::new(u64::from_le_bytes(buf[8..16].try_into().unwrap()));
        let kind = match buf[16] {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            _ => return Err(TraceIoError::BadRecord { index }),
        };
        let dep = match buf[17] {
            0 => Dependence::Independent,
            1 => Dependence::OnPrevAccess,
            _ => return Err(TraceIoError::BadRecord { index }),
        };
        let work = u16::from_le_bytes(buf[18..20].try_into().unwrap());
        trace.push(Access {
            pc,
            addr,
            kind,
            dep,
            work_before: work,
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(
            Access::read(Pc::new(0xAABB), Addr::new(0x1000))
                .with_dep(Dependence::OnPrevAccess)
                .with_work(42),
        );
        t.push(Access::write(Pc::new(1), Addr::new(u64::MAX)));
        t
    }

    #[test]
    fn round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_round_trip() {
        let t = Trace::new();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        assert_eq!(read_trace(buf.as_slice()).unwrap(), t);
    }

    #[test]
    fn bad_magic_is_detected() {
        let err = read_trace(&b"NOTATRACE_______"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadMagic));
    }

    #[test]
    fn truncation_is_detected() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 5);
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::Truncated));
    }

    #[test]
    fn corrupt_kind_is_detected() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        buf[16 + 16] = 9; // first record's kind byte
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::BadRecord { index: 0 }));
    }
}
