//! The individual trace record.

use core::fmt;

use stems_types::{Addr, Pc};

/// Whether an access reads or writes memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load. All coverage metrics in the paper are over *read* misses.
    Read,
    /// A store. Writes matter for coherence invalidations and generation
    /// termination, not for coverage accounting.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "R"),
            AccessKind::Write => write!(f, "W"),
        }
    }
}

/// Data-dependence annotation consumed by the timing model.
///
/// Temporal streaming's headline benefit (Section 2.1) is turning *serial*
/// dependent-miss chains (pointer chasing) into parallel prefetches. To
/// reproduce that, workload generators mark each access as either
/// independent (an out-of-order core may overlap it with earlier misses) or
/// dependent on the previous access's data (it cannot issue until that
/// access completes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Dependence {
    /// Address known early; issue is limited only by ROB/MSHR resources.
    #[default]
    Independent,
    /// Address is computed from the previous access's loaded value
    /// (pointer chase); cannot issue until that access completes.
    OnPrevAccess,
}

/// One memory access in a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Access {
    /// PC of the instruction performing the access.
    pub pc: Pc,
    /// Byte address accessed.
    pub addr: Addr,
    /// Read or write.
    pub kind: AccessKind,
    /// Dependence on the previous access (timing model only).
    pub dep: Dependence,
    /// Non-memory instructions executed since the previous access
    /// (timing model only; bounds retire bandwidth between accesses).
    pub work_before: u16,
}

impl Access {
    /// A read with default annotations (independent, no preceding work).
    pub fn read(pc: Pc, addr: Addr) -> Self {
        Access {
            pc,
            addr,
            kind: AccessKind::Read,
            dep: Dependence::Independent,
            work_before: 0,
        }
    }

    /// A write with default annotations.
    pub fn write(pc: Pc, addr: Addr) -> Self {
        Access {
            pc,
            addr,
            kind: AccessKind::Write,
            dep: Dependence::Independent,
            work_before: 0,
        }
    }

    /// Sets the dependence annotation.
    pub fn with_dep(mut self, dep: Dependence) -> Self {
        self.dep = dep;
        self
    }

    /// Sets the preceding non-memory work.
    pub fn with_work(mut self, work: u16) -> Self {
        self.work_before = work;
        self
    }

    /// Whether this is a read.
    pub fn is_read(&self) -> bool {
        self.kind == AccessKind::Read
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} @{}", self.kind, self.addr, self.pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_fields() {
        let a = Access::read(Pc::new(0x10), Addr::new(0x20))
            .with_dep(Dependence::OnPrevAccess)
            .with_work(7);
        assert!(a.is_read());
        assert_eq!(a.dep, Dependence::OnPrevAccess);
        assert_eq!(a.work_before, 7);
        let w = Access::write(Pc::new(1), Addr::new(2));
        assert!(!w.is_read());
        assert_eq!(w.dep, Dependence::Independent);
    }

    #[test]
    fn display_is_compact() {
        let a = Access::read(Pc::new(0x10), Addr::new(0x40));
        assert_eq!(format!("{a}"), "R 0x40 @pc0x10");
    }
}
