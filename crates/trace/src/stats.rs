//! Trace summary statistics, computable in memory or streaming.

use std::collections::HashSet;
use std::io::Read;

use crate::store::{TraceReader, TraceStoreError};
use crate::{Access, AccessKind, Dependence, Trace};

/// Aggregate statistics over a trace, used to sanity-check workload
/// generators against the footprints in Table 1.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total accesses.
    pub accesses: usize,
    /// Read accesses.
    pub reads: usize,
    /// Write accesses.
    pub writes: usize,
    /// Accesses marked dependent on the previous access.
    pub dependent: usize,
    /// Distinct 64B blocks touched.
    pub unique_blocks: usize,
    /// Distinct 2KB regions touched.
    pub unique_regions: usize,
}

/// Incremental [`TraceStats`] accumulator: feed accesses (or whole
/// chunks from a streaming [`TraceReader`]) and finish. Memory is
/// O(unique blocks) for the footprint sets — inherent to the statistic
/// — never O(trace length).
#[derive(Clone, Debug, Default)]
pub struct TraceStatsBuilder {
    stats: TraceStats,
    blocks: HashSet<u64>,
    regions: HashSet<u64>,
}

impl TraceStatsBuilder {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        TraceStatsBuilder::default()
    }

    /// Accounts one access.
    pub fn observe(&mut self, a: &Access) {
        self.stats.accesses += 1;
        match a.kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        if a.dep == Dependence::OnPrevAccess {
            self.stats.dependent += 1;
        }
        self.blocks.insert(a.addr.block().get());
        self.regions.insert(a.addr.region().get());
    }

    /// Accounts a chunk of accesses (the shape [`TraceReader::next_chunk`]
    /// yields).
    pub fn observe_chunk(&mut self, chunk: &[Access]) {
        for a in chunk {
            self.observe(a);
        }
    }

    /// Finalizes the footprint counts and returns the statistics.
    pub fn finish(self) -> TraceStats {
        let mut stats = self.stats;
        stats.unique_blocks = self.blocks.len();
        stats.unique_regions = self.regions.len();
        stats
    }
}

impl TraceStats {
    /// Computes statistics for an in-memory `trace`.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut b = TraceStatsBuilder::new();
        b.observe_chunk(trace.as_slice());
        b.finish()
    }

    /// Computes statistics by streaming the remaining frames of a
    /// [`TraceReader`] — one frame in memory at a time, so this works
    /// on stores far larger than RAM.
    pub fn from_reader<R: Read>(reader: &mut TraceReader<R>) -> Result<Self, TraceStoreError> {
        let mut b = TraceStatsBuilder::new();
        while let Some(chunk) = reader.next_chunk()? {
            b.observe_chunk(chunk);
        }
        Ok(b.finish())
    }

    /// Approximate data footprint in bytes (unique blocks x 64B).
    pub fn footprint_bytes(&self) -> u64 {
        self.unique_blocks as u64 * stems_types::BLOCK_BYTES
    }

    /// Fraction of accesses that are reads (0 for an empty trace).
    pub fn read_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.reads as f64 / self.accesses as f64
        }
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} accesses ({} R / {} W, {} dep), {} blocks / {} regions, {:.1} MB",
            self.accesses,
            self.reads,
            self.writes,
            self.dependent,
            self.unique_blocks,
            self.unique_regions,
            self.footprint_bytes() as f64 / (1024.0 * 1024.0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Access;
    use stems_types::{Addr, Pc};

    #[test]
    fn counts_are_correct() {
        let mut t = Trace::new();
        t.read(1, 0); // block 0, region 0
        t.read(1, 64); // block 1, region 0
        t.write(2, 4096); // block 64, region 2
        t.push(Access::read(Pc::new(3), Addr::new(64)).with_dep(Dependence::OnPrevAccess));
        let s = t.stats();
        assert_eq!(s.accesses, 4);
        assert_eq!(s.reads, 3);
        assert_eq!(s.writes, 1);
        assert_eq!(s.dependent, 1);
        assert_eq!(s.unique_blocks, 3);
        assert_eq!(s.unique_regions, 2);
        assert_eq!(s.footprint_bytes(), 3 * 64);
        assert!((s.read_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let s = Trace::new().stats();
        assert_eq!(s.accesses, 0);
        assert_eq!(s.read_fraction(), 0.0);
    }

    #[test]
    fn streaming_stats_match_in_memory_stats() {
        let mut t = Trace::new();
        for i in 0..500u64 {
            if i % 4 == 0 {
                t.write(i % 9, (i * 977) % (1 << 20));
            } else {
                t.read(i % 9, (i * 977) % (1 << 20));
            }
        }
        let mut buf = Vec::new();
        {
            let mut w = crate::store::TraceWriter::new(&mut buf)
                .unwrap()
                .with_frame_capacity(37);
            w.write_accesses(t.as_slice()).unwrap();
            w.finish().unwrap();
        }
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        let streamed = TraceStats::from_reader(&mut reader).unwrap();
        assert_eq!(streamed, t.stats());
    }
}
