//! Trace summary statistics.

use std::collections::HashSet;

use crate::{AccessKind, Dependence, Trace};

/// Aggregate statistics over a trace, used to sanity-check workload
/// generators against the footprints in Table 1.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total accesses.
    pub accesses: usize,
    /// Read accesses.
    pub reads: usize,
    /// Write accesses.
    pub writes: usize,
    /// Accesses marked dependent on the previous access.
    pub dependent: usize,
    /// Distinct 64B blocks touched.
    pub unique_blocks: usize,
    /// Distinct 2KB regions touched.
    pub unique_regions: usize,
}

impl TraceStats {
    /// Computes statistics for `trace`.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut blocks = HashSet::new();
        let mut regions = HashSet::new();
        let mut stats = TraceStats {
            accesses: trace.len(),
            ..TraceStats::default()
        };
        for a in trace.iter() {
            match a.kind {
                AccessKind::Read => stats.reads += 1,
                AccessKind::Write => stats.writes += 1,
            }
            if a.dep == Dependence::OnPrevAccess {
                stats.dependent += 1;
            }
            blocks.insert(a.addr.block());
            regions.insert(a.addr.region());
        }
        stats.unique_blocks = blocks.len();
        stats.unique_regions = regions.len();
        stats
    }

    /// Approximate data footprint in bytes (unique blocks x 64B).
    pub fn footprint_bytes(&self) -> u64 {
        self.unique_blocks as u64 * stems_types::BLOCK_BYTES
    }

    /// Fraction of accesses that are reads (0 for an empty trace).
    pub fn read_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.reads as f64 / self.accesses as f64
        }
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} accesses ({} R / {} W, {} dep), {} blocks / {} regions, {:.1} MB",
            self.accesses,
            self.reads,
            self.writes,
            self.dependent,
            self.unique_blocks,
            self.unique_regions,
            self.footprint_bytes() as f64 / (1024.0 * 1024.0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Access;
    use stems_types::{Addr, Pc};

    #[test]
    fn counts_are_correct() {
        let mut t = Trace::new();
        t.read(1, 0); // block 0, region 0
        t.read(1, 64); // block 1, region 0
        t.write(2, 4096); // block 64, region 2
        t.push(Access::read(Pc::new(3), Addr::new(64)).with_dep(Dependence::OnPrevAccess));
        let s = t.stats();
        assert_eq!(s.accesses, 4);
        assert_eq!(s.reads, 3);
        assert_eq!(s.writes, 1);
        assert_eq!(s.dependent, 1);
        assert_eq!(s.unique_blocks, 3);
        assert_eq!(s.unique_regions, 2);
        assert_eq!(s.footprint_bytes(), 3 * 64);
        assert!((s.read_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let s = Trace::new().stats();
        assert_eq!(s.accesses, 0);
        assert_eq!(s.read_fraction(), 0.0);
    }
}
