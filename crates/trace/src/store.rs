//! The persistent trace store: an append-only, chunked on-disk format
//! with streaming replay.
//!
//! The legacy codec in [`crate::io`] writes a global record count up
//! front and a fixed 24-byte record — fine for small fixtures, but it
//! cannot be appended to (the count is already written) and it cannot
//! be replayed without materializing the whole trace. This module is
//! the scale path: traces are written as a sequence of self-contained
//! *frames*, each carrying its own record count, a delta/varint-encoded
//! columnar payload, and a CRC-32 checksum, so a [`TraceWriter`] only
//! ever appends and a [`TraceReader`] streams the file back one frame
//! at a time — memory stays O(frame) no matter how many billions of
//! accesses the file holds. The frame is sized for
//! `Session::run_chunk`: replay feeds each decoded `&[Access]` slice
//! straight into the engine's batched entry point.
//!
//! The byte-level layout, versioning, and forward-compatibility rules
//! are specified in `docs/TRACE_FORMAT.md`; this module is the
//! reference implementation.
//!
//! # Example
//!
//! ```
//! use stems_trace::store::{TraceReader, TraceWriter};
//! use stems_trace::Access;
//! use stems_types::{Addr, Pc};
//!
//! let mut buf = Vec::new();
//! let mut w = TraceWriter::new(&mut buf).unwrap().with_frame_capacity(2);
//! for i in 0..5u64 {
//!     w.push(Access::read(Pc::new(0x400), Addr::new(i * 64))).unwrap();
//! }
//! let summary = w.finish().unwrap();
//! drop(w);
//! assert_eq!((summary.records, summary.frames), (5, 3));
//!
//! let mut r = TraceReader::new(buf.as_slice()).unwrap();
//! let mut total = 0;
//! while let Some(chunk) = r.next_chunk().unwrap() {
//!     assert!(chunk.len() <= 2);
//!     total += chunk.len();
//! }
//! assert_eq!(total, 5);
//! ```

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use stems_types::varint;
use stems_types::{Addr, Pc};

use crate::{Access, AccessKind, Dependence, Trace};

/// Store file magic: `STEMSTRC` ("STeMS trace, chunked"). The legacy
/// single-blob codec uses `STEMSTR1` (see [`crate::io`]).
pub const STORE_MAGIC: &[u8; 8] = b"STEMSTRC";
/// Current format version. Readers reject any other value.
pub const STORE_VERSION: u16 = 1;
/// Hard cap on records per frame; [`TraceWriter`] clamps its frame
/// capacity here, and readers reject frames claiming more (a corrupt
/// count must not drive a giant allocation).
pub const MAX_FRAME_RECORDS: usize = 1 << 21;
/// Hard cap on a frame's encoded payload length in bytes. Sized so the
/// worst-case encoding of [`MAX_FRAME_RECORDS`] records (24 bytes per
/// record: two 10-byte varints, a flags byte, a 3-byte work varint)
/// always fits.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 26;
/// Default records per frame: large enough to amortize the frame
/// header/checksum and keep `Session::run_chunk` batches wide, small
/// enough that replay holds well under a megabyte of decoded records.
pub const DEFAULT_FRAME_RECORDS: usize = 1 << 15;

/// File header size: magic + version u16 + flags u16.
pub const HEADER_BYTES: usize = 12;
/// Frame header size: record count u32 + payload length u32.
pub const FRAME_HEADER_BYTES: usize = 8;
const CHECKSUM_BYTES: usize = 4;

/// Errors produced by the trace store. Every corrupt-input condition is
/// a typed variant — readers never panic on hostile bytes.
#[derive(Debug)]
pub enum TraceStoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`STORE_MAGIC`]. The found bytes
    /// are reported; a legacy [`crate::io`] blob is called out
    /// explicitly.
    BadMagic {
        /// The eight bytes actually found.
        found: [u8; 8],
    },
    /// The header's version field is not [`STORE_VERSION`].
    UnsupportedVersion {
        /// The version the file claims.
        found: u16,
    },
    /// The header's reserved flags field has unknown bits set (a future
    /// incompatible feature this reader does not understand).
    UnsupportedFlags {
        /// The flags word found.
        flags: u16,
    },
    /// The stream ended inside a frame (mid-header, mid-payload, or
    /// before the checksum) — an interrupted append.
    Truncated {
        /// Byte offset at which the frame being read began.
        frame_offset: u64,
    },
    /// A frame's payload does not match its stored CRC-32.
    ChecksumMismatch {
        /// Zero-based index of the corrupt frame.
        frame: u64,
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the payload actually read.
        computed: u32,
    },
    /// A frame that checksummed correctly still failed to decode — the
    /// writer that produced it was broken, not the storage.
    Corrupt {
        /// Zero-based index of the undecodable frame.
        frame: u64,
        /// What was wrong with it.
        reason: &'static str,
    },
}

impl std::fmt::Display for TraceStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceStoreError::Io(e) => write!(f, "trace store i/o error: {e}"),
            TraceStoreError::BadMagic { found } if found == crate::io::MAGIC => {
                write!(
                    f,
                    "legacy STEMSTR1 trace blob, not a chunked store \
                     (read it with stems_trace::read_trace)"
                )
            }
            TraceStoreError::BadMagic { found } => {
                write!(f, "not a stems trace store (magic {found:02x?})")
            }
            TraceStoreError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "trace store version {found} not supported (this reader speaks {STORE_VERSION})"
                )
            }
            TraceStoreError::UnsupportedFlags { flags } => {
                write!(f, "trace store uses unknown feature flags {flags:#06x}")
            }
            TraceStoreError::Truncated { frame_offset } => {
                write!(
                    f,
                    "trace store truncated inside frame at byte {frame_offset}"
                )
            }
            TraceStoreError::ChecksumMismatch {
                frame,
                stored,
                computed,
            } => write!(
                f,
                "frame {frame} checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            TraceStoreError::Corrupt { frame, reason } => {
                write!(f, "frame {frame} is corrupt: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceStoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceStoreError {
    fn from(e: io::Error) -> Self {
        TraceStoreError::Io(e)
    }
}

/// When the writer forces buffered frames to durable storage.
///
/// Mirrors the classic append-only-file trade-off: syncing every frame
/// bounds loss to the in-flight frame at a per-frame fsync cost;
/// syncing on finish is one fsync for the whole capture; never syncing
/// leaves durability to the OS page cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Flush to the OS on finish but never fsync. Fastest; a crash can
    /// lose anything the OS had not written back yet.
    Never,
    /// One fsync when [`TraceWriter::finish`] completes the capture.
    /// The right default for capture-then-replay workflows.
    #[default]
    OnFinish,
    /// fsync after every frame. An interrupted capture loses at most
    /// the frame being encoded; the truncated tail is detected on
    /// replay as [`TraceStoreError::Truncated`].
    EveryFrame,
}

/// A byte sink the store can write to and, when file-backed, force to
/// durable storage. In-memory sinks treat sync as a flush.
pub trait StoreSink: Write {
    /// Forces previously written bytes to durable storage (fsync for
    /// files; a plain flush for memory-backed sinks).
    fn sync_to_storage(&mut self) -> io::Result<()> {
        self.flush()
    }
}

impl StoreSink for Vec<u8> {}

impl<S: StoreSink + ?Sized> StoreSink for &mut S {
    fn sync_to_storage(&mut self) -> io::Result<()> {
        (**self).sync_to_storage()
    }
}

impl StoreSink for File {
    fn sync_to_storage(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

impl StoreSink for BufWriter<File> {
    fn sync_to_storage(&mut self) -> io::Result<()> {
        self.flush()?;
        self.get_ref().sync_data()
    }
}

/// Totals reported by [`TraceWriter::finish`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreSummary {
    /// Frames written.
    pub frames: u64,
    /// Records written across all frames.
    pub records: u64,
}

/// Append-only writer for the chunked trace store.
///
/// Records buffer until a frame fills ([`TraceWriter::with_frame_capacity`]),
/// then the frame is delta/varint encoded, checksummed, and appended.
/// Call [`TraceWriter::finish`] to flush the final partial frame and
/// apply the [`SyncPolicy`]; dropping an unfinished writer flushes
/// best-effort but reports no errors.
#[derive(Debug)]
pub struct TraceWriter<W: StoreSink> {
    sink: W,
    pending: Vec<Access>,
    frame_capacity: usize,
    sync_policy: SyncPolicy,
    payload: Vec<u8>,
    frames: u64,
    records: u64,
    finished: bool,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates (truncating) `path` and writes the store header.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self, TraceStoreError> {
        TraceWriter::new(BufWriter::new(File::create(path)?))
    }
}

impl<W: StoreSink> TraceWriter<W> {
    /// Wraps `sink`, writing the store header immediately.
    pub fn new(mut sink: W) -> Result<Self, TraceStoreError> {
        sink.write_all(STORE_MAGIC)?;
        sink.write_all(&STORE_VERSION.to_le_bytes())?;
        sink.write_all(&0u16.to_le_bytes())?; // reserved flags
        Ok(TraceWriter {
            sink,
            pending: Vec::new(),
            frame_capacity: DEFAULT_FRAME_RECORDS,
            sync_policy: SyncPolicy::default(),
            payload: Vec::new(),
            frames: 0,
            records: 0,
            finished: false,
        })
    }

    /// Sets records per frame (clamped to `1..=`[`MAX_FRAME_RECORDS`]).
    pub fn with_frame_capacity(mut self, records: usize) -> Self {
        self.frame_capacity = records.clamp(1, MAX_FRAME_RECORDS);
        self
    }

    /// Sets the durability policy (default [`SyncPolicy::OnFinish`]).
    pub fn with_sync_policy(mut self, policy: SyncPolicy) -> Self {
        self.sync_policy = policy;
        self
    }

    /// Appends one access, emitting a frame whenever one fills.
    pub fn push(&mut self, access: Access) -> Result<(), TraceStoreError> {
        assert!(!self.finished, "TraceWriter used after finish()");
        self.pending.push(access);
        if self.pending.len() >= self.frame_capacity {
            self.flush_frame()?;
        }
        Ok(())
    }

    /// Appends a slice of accesses (the capture-side mirror of
    /// `Session::run_chunk`).
    pub fn write_accesses(&mut self, accesses: &[Access]) -> Result<(), TraceStoreError> {
        for &a in accesses {
            self.push(a)?;
        }
        Ok(())
    }

    /// Encodes and appends the buffered records as one frame (no-op
    /// when nothing is buffered).
    pub fn flush_frame(&mut self) -> Result<(), TraceStoreError> {
        assert!(!self.finished, "TraceWriter used after finish()");
        if self.pending.is_empty() {
            return Ok(());
        }
        self.payload.clear();
        encode_records(&self.pending, &mut self.payload);
        debug_assert!(self.payload.len() <= MAX_FRAME_PAYLOAD);
        self.sink
            .write_all(&(self.pending.len() as u32).to_le_bytes())?;
        self.sink
            .write_all(&(self.payload.len() as u32).to_le_bytes())?;
        self.sink.write_all(&self.payload)?;
        self.sink.write_all(&crc32(&self.payload).to_le_bytes())?;
        self.frames += 1;
        self.records += self.pending.len() as u64;
        self.pending.clear();
        if self.sync_policy == SyncPolicy::EveryFrame {
            self.sink.sync_to_storage()?;
        }
        Ok(())
    }

    /// Flushes the final partial frame, applies the sync policy, and
    /// returns the totals. The writer is unusable afterwards.
    pub fn finish(&mut self) -> Result<StoreSummary, TraceStoreError> {
        self.flush_frame()?;
        match self.sync_policy {
            SyncPolicy::Never => self.sink.flush()?,
            SyncPolicy::OnFinish | SyncPolicy::EveryFrame => self.sink.sync_to_storage()?,
        }
        self.finished = true;
        Ok(StoreSummary {
            frames: self.frames,
            records: self.records,
        })
    }

    /// Records written so far (excluding the buffered partial frame).
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Frames written so far.
    pub fn frames_written(&self) -> u64 {
        self.frames
    }
}

impl<W: StoreSink> Drop for TraceWriter<W> {
    fn drop(&mut self) {
        if !self.finished {
            // Best-effort: persist what we can, but only finish() can
            // report errors.
            let _ = self.flush_frame();
            let _ = self.sink.flush();
        }
    }
}

/// What [`TraceReader::recover_tail`] found and did: how much of the
/// file was a valid frame sequence, and how many trailing bytes were
/// cut to restore the invariant that every frame in the file decodes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Frames in the surviving valid prefix.
    pub frames_kept: u64,
    /// Records across the surviving frames.
    pub records_kept: u64,
    /// Bytes removed from the end of the file (0 when undamaged).
    pub bytes_truncated: u64,
    /// Whether the file needed repair at all.
    pub was_damaged: bool,
}

/// Streaming reader for the chunked trace store.
///
/// [`TraceReader::next_chunk`] decodes one frame at a time into an
/// internal buffer that is reused across frames, so replay memory is
/// bounded by the largest frame in the file — never by trace length.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    src: R,
    decoded: Vec<Access>,
    payload: Vec<u8>,
    frames: u64,
    records: u64,
    offset: u64,
}

impl TraceReader<BufReader<File>> {
    /// Opens `path` and validates the store header.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, TraceStoreError> {
        TraceReader::new(BufReader::new(File::open(path)?))
    }

    /// Repairs a store damaged by an interrupted or injured append
    /// (`kill -9` mid-write, a torn copy, a truncated download):
    /// scans the file's valid frame prefix and truncates everything
    /// after it, so the survivor is a well-formed store again.
    ///
    /// The scan stops at the first frame that is cut short, fails its
    /// CRC, or does not decode; that frame and everything after it are
    /// removed with `set_len` — the store's frames are self-contained,
    /// so the prefix needs no rewriting. An undamaged file is left
    /// byte-identical (`was_damaged: false`). Damage the scan *cannot*
    /// localize — a missing or mangled 12-byte file header — is not
    /// repairable and returns the underlying error instead.
    pub fn recover_tail<P: AsRef<Path>>(path: P) -> Result<RecoveryReport, TraceStoreError> {
        let path = path.as_ref();
        let mut reader = TraceReader::open(path)?;
        let damage = loop {
            match reader.next_chunk() {
                Ok(Some(_)) => {}
                Ok(None) => break None,
                // The valid prefix ends where the failed frame began
                // (`reader.offset` advances only on success). Real I/O
                // failures abort: the file may be fine.
                Err(TraceStoreError::Io(e)) => return Err(TraceStoreError::Io(e)),
                Err(_) => break Some(reader.offset),
            }
        };
        let report = RecoveryReport {
            frames_kept: reader.frames,
            records_kept: reader.records,
            bytes_truncated: 0,
            was_damaged: damage.is_some(),
        };
        drop(reader);
        let Some(valid_end) = damage else {
            return Ok(report);
        };
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        let len = file.metadata()?.len();
        file.set_len(valid_end)?;
        file.sync_data()?;
        Ok(RecoveryReport {
            bytes_truncated: len.saturating_sub(valid_end),
            ..report
        })
    }
}

impl<R: Read> TraceReader<R> {
    /// Wraps `src`, reading and validating the store header.
    pub fn new(mut src: R) -> Result<Self, TraceStoreError> {
        let mut header = [0u8; HEADER_BYTES];
        src.read_exact(&mut header).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                TraceStoreError::Truncated { frame_offset: 0 }
            } else {
                TraceStoreError::Io(e)
            }
        })?;
        if &header[0..8] != STORE_MAGIC {
            return Err(TraceStoreError::BadMagic {
                found: header[0..8].try_into().unwrap(),
            });
        }
        let version = u16::from_le_bytes(header[8..10].try_into().unwrap());
        if version != STORE_VERSION {
            return Err(TraceStoreError::UnsupportedVersion { found: version });
        }
        let flags = u16::from_le_bytes(header[10..12].try_into().unwrap());
        if flags != 0 {
            return Err(TraceStoreError::UnsupportedFlags { flags });
        }
        Ok(TraceReader {
            src,
            decoded: Vec::new(),
            payload: Vec::new(),
            frames: 0,
            records: 0,
            offset: HEADER_BYTES as u64,
        })
    }

    /// Decodes the next frame and returns its records, or `None` at a
    /// clean end of stream. The returned slice borrows an internal
    /// buffer and is invalidated by the next call — feed it forward
    /// (e.g. into `Session::run_chunk`) before advancing.
    pub fn next_chunk(&mut self) -> Result<Option<&[Access]>, TraceStoreError> {
        let frame_offset = self.offset;
        let mut frame_header = [0u8; FRAME_HEADER_BYTES];
        match read_full(&mut self.src, &mut frame_header)? {
            ReadOutcome::Eof => return Ok(None),
            ReadOutcome::Partial => {
                return Err(TraceStoreError::Truncated { frame_offset });
            }
            ReadOutcome::Full => {}
        }
        let count = u32::from_le_bytes(frame_header[0..4].try_into().unwrap()) as usize;
        let payload_len = u32::from_le_bytes(frame_header[4..8].try_into().unwrap()) as usize;
        if count == 0 {
            return Err(self.corrupt("frame claims zero records"));
        }
        if count > MAX_FRAME_RECORDS {
            return Err(self.corrupt("frame record count exceeds MAX_FRAME_RECORDS"));
        }
        if payload_len > MAX_FRAME_PAYLOAD {
            return Err(self.corrupt("frame payload length exceeds MAX_FRAME_PAYLOAD"));
        }
        self.payload.resize(payload_len, 0);
        let mut checksum = [0u8; CHECKSUM_BYTES];
        for buf in [&mut self.payload[..], &mut checksum[..]] {
            match read_full(&mut self.src, buf)? {
                ReadOutcome::Full => {}
                _ => return Err(TraceStoreError::Truncated { frame_offset }),
            }
        }
        let stored = u32::from_le_bytes(checksum);
        let computed = crc32(&self.payload);
        if stored != computed {
            return Err(TraceStoreError::ChecksumMismatch {
                frame: self.frames,
                stored,
                computed,
            });
        }
        decode_records(&self.payload, count, &mut self.decoded)
            .map_err(|reason| self.corrupt(reason))?;
        self.offset = frame_offset + (FRAME_HEADER_BYTES + payload_len + CHECKSUM_BYTES) as u64;
        self.frames += 1;
        self.records += count as u64;
        Ok(Some(&self.decoded))
    }

    /// Frames decoded so far.
    pub fn frames_read(&self) -> u64 {
        self.frames
    }

    /// Records decoded so far.
    pub fn records_read(&self) -> u64 {
        self.records
    }

    /// Reads every remaining frame into one in-memory [`Trace`]. This
    /// defeats the streaming design on purpose — use it for fixtures
    /// and figure inputs that need random access, not for replay.
    pub fn read_to_trace(mut self) -> Result<Trace, TraceStoreError> {
        let mut trace = Trace::new();
        while let Some(chunk) = self.next_chunk()? {
            trace.extend(chunk.iter().copied());
        }
        Ok(trace)
    }

    fn corrupt(&self, reason: &'static str) -> TraceStoreError {
        TraceStoreError::Corrupt {
            frame: self.frames,
            reason,
        }
    }
}

/// Writes `trace` through a [`TraceWriter`] with default settings
/// (convenience for fixtures and tests).
pub fn write_store<W: StoreSink>(sink: W, trace: &Trace) -> Result<StoreSummary, TraceStoreError> {
    let mut w = TraceWriter::new(sink)?;
    w.write_accesses(trace.as_slice())?;
    w.finish()
}

/// Reads an entire store back into memory (convenience mirror of
/// [`write_store`]; replay paths should stream with [`TraceReader`]).
pub fn read_store<R: Read>(src: R) -> Result<Trace, TraceStoreError> {
    TraceReader::new(src)?.read_to_trace()
}

enum ReadOutcome {
    /// Buffer filled completely.
    Full,
    /// Stream ended before the first byte: a clean boundary.
    Eof,
    /// Stream ended mid-buffer: truncation.
    Partial,
}

/// `read_exact` that distinguishes "no more frames" (EOF on the first
/// byte) from "frame cut short" (EOF after at least one byte).
fn read_full<R: Read>(src: &mut R, buf: &mut [u8]) -> Result<ReadOutcome, TraceStoreError> {
    let mut filled = 0;
    while filled < buf.len() {
        match src.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(TraceStoreError::Io(e)),
        }
    }
    Ok(ReadOutcome::Full)
}

/// Appends `records` to `out` as the four frame columns (pc deltas,
/// address deltas, packed kind/dep flags, work values).
///
/// Append-only so callers can prefix their own header (the wire
/// protocol's `Chunk` message carries a session id and count before the
/// columns — `docs/WIRE_PROTOCOL.md`); the column bytes are exactly
/// what a store frame checksums.
pub fn encode_records(records: &[Access], out: &mut Vec<u8>) {
    let mut prev = 0i64;
    for a in records {
        let v = a.pc.get() as i64;
        varint::write_i64(out, v.wrapping_sub(prev));
        prev = v;
    }
    let mut prev = 0i64;
    for a in records {
        let v = a.addr.get() as i64;
        varint::write_i64(out, v.wrapping_sub(prev));
        prev = v;
    }
    let mut byte = 0u8;
    for (i, a) in records.iter().enumerate() {
        let mut bits = 0u8;
        if a.kind == AccessKind::Write {
            bits |= 0b01;
        }
        if a.dep == Dependence::OnPrevAccess {
            bits |= 0b10;
        }
        byte |= bits << (2 * (i % 4));
        if i % 4 == 3 {
            out.push(byte);
            byte = 0;
        }
    }
    if !records.len().is_multiple_of(4) {
        out.push(byte);
    }
    for a in records {
        varint::write_u64(out, a.work_before as u64);
    }
}

/// Decodes a columnar payload of exactly `count` records back into
/// `out` (cleared first); any structural inconsistency returns the
/// reason (the store wraps it as [`TraceStoreError::Corrupt`], the wire
/// protocol as `WireError::Corrupt`).
///
/// The payload must have been produced by [`encode_records`]; callers
/// are expected to have already verified an enclosing checksum.
pub fn decode_records(
    payload: &[u8],
    count: usize,
    out: &mut Vec<Access>,
) -> Result<(), &'static str> {
    out.clear();
    out.reserve(count);
    let mut pos = 0usize;
    let next_delta = |payload: &[u8], pos: &mut usize| -> Result<i64, &'static str> {
        let (v, n) =
            varint::read_i64(&payload[*pos..]).ok_or("varint runs past the frame payload")?;
        *pos += n;
        Ok(v)
    };
    let mut prev = 0i64;
    for _ in 0..count {
        prev = prev.wrapping_add(next_delta(payload, &mut pos)?);
        out.push(Access {
            pc: Pc::new(prev as u64),
            addr: Addr::new(0),
            kind: AccessKind::Read,
            dep: Dependence::Independent,
            work_before: 0,
        });
    }
    let mut prev = 0i64;
    for a in out.iter_mut() {
        prev = prev.wrapping_add(next_delta(payload, &mut pos)?);
        a.addr = Addr::new(prev as u64);
    }
    let flag_bytes = count.div_ceil(4);
    if payload.len() < pos + flag_bytes {
        return Err("flags column runs past the frame payload");
    }
    for (i, a) in out.iter_mut().enumerate() {
        let bits = payload[pos + i / 4] >> (2 * (i % 4));
        a.kind = if bits & 0b01 != 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        a.dep = if bits & 0b10 != 0 {
            Dependence::OnPrevAccess
        } else {
            Dependence::Independent
        };
    }
    // Canonical encoding: padding bits in the final flags byte are zero.
    if !count.is_multiple_of(4) && payload[pos + flag_bytes - 1] >> (2 * (count % 4)) != 0 {
        return Err("nonzero padding bits in the flags column");
    }
    pos += flag_bytes;
    for a in out.iter_mut() {
        let (work, n) =
            varint::read_u64(&payload[pos..]).ok_or("varint runs past the frame payload")?;
        pos += n;
        if work > u16::MAX as u64 {
            return Err("work value exceeds u16");
        }
        a.work_before = work as u16;
    }
    if pos != payload.len() {
        return Err("trailing bytes after the last column");
    }
    Ok(())
}

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), the checksum named in
/// `docs/TRACE_FORMAT.md`. Re-exported from `stems_types::crc`, which
/// the wire protocol shares (`docs/WIRE_PROTOCOL.md`).
pub use stems_types::crc::crc32;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace(n: u64) -> Trace {
        let mut t = Trace::new();
        for i in 0..n {
            let a = Access {
                pc: Pc::new(0x400 + (i % 13) * 4),
                addr: Addr::new((i * 2654435761) % (1 << 30)),
                kind: if i % 5 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                dep: if i % 7 == 0 {
                    Dependence::OnPrevAccess
                } else {
                    Dependence::Independent
                },
                work_before: (i % 300) as u16,
            };
            t.push(a);
        }
        t
    }

    #[test]
    fn crc32_matches_the_standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let t = sample_trace(1000);
        let mut buf = Vec::new();
        let summary = write_store(&mut buf, &t).unwrap();
        assert_eq!(summary.records, 1000);
        assert_eq!(summary.frames, 1);
        let back = read_store(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn extreme_values_round_trip() {
        let mut t = Trace::new();
        t.push(
            Access::read(Pc::new(u64::MAX), Addr::new(u64::MAX))
                .with_dep(Dependence::OnPrevAccess)
                .with_work(u16::MAX),
        );
        t.push(Access::write(Pc::new(0), Addr::new(0)));
        t.push(Access::read(Pc::new(1 << 63), Addr::new((1 << 63) - 1)));
        let mut buf = Vec::new();
        write_store(&mut buf, &t).unwrap();
        assert_eq!(read_store(buf.as_slice()).unwrap(), t);
    }

    #[test]
    fn empty_store_round_trips_with_zero_frames() {
        let mut buf = Vec::new();
        let summary = write_store(&mut buf, &Trace::new()).unwrap();
        assert_eq!(summary, StoreSummary::default());
        assert_eq!(buf.len(), HEADER_BYTES, "header only, no frames");
        let back = read_store(buf.as_slice()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn frames_split_at_the_configured_capacity() {
        let t = sample_trace(1000);
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap().with_frame_capacity(64);
        w.write_accesses(t.as_slice()).unwrap();
        let summary = w.finish().unwrap();
        drop(w);
        assert_eq!(summary.frames, 1000u64.div_ceil(64));
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        let mut sizes = Vec::new();
        let mut all = Trace::new();
        while let Some(chunk) = r.next_chunk().unwrap() {
            sizes.push(chunk.len());
            all.extend(chunk.iter().copied());
        }
        assert!(sizes[..sizes.len() - 1].iter().all(|&s| s == 64));
        assert_eq!(*sizes.last().unwrap(), 1000 % 64);
        assert_eq!(all, t);
        assert_eq!(r.records_read(), 1000);
    }

    #[test]
    fn append_after_reopen_extends_the_stream() {
        // Append-only means a second writer session can continue a file
        // by writing frames with no header; simulate with two writers
        // over one Vec (the second emits frames only).
        let first = sample_trace(100);
        let second = sample_trace(40);
        let mut buf = Vec::new();
        write_store(&mut buf, &first).unwrap();
        // Frames are self-contained: encode the continuation with a
        // throwaway writer and splice its frame bytes after the header.
        let mut cont = Vec::new();
        write_store(&mut cont, &second).unwrap();
        buf.extend_from_slice(&cont[HEADER_BYTES..]);
        let back = read_store(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 140);
        assert_eq!(&back.as_slice()[..100], first.as_slice());
        assert_eq!(&back.as_slice()[100..], second.as_slice());
    }

    #[test]
    fn delta_encoding_is_compact_for_sequential_access() {
        let mut t = Trace::new();
        for i in 0..10_000u64 {
            t.read(0x400, (1 << 30) + i * 64);
        }
        let mut buf = Vec::new();
        write_store(&mut buf, &t).unwrap();
        // Legacy fixed-width: 24 bytes/record. Delta varints: ~4.
        assert!(
            buf.len() < t.len() * 5,
            "sequential trace should encode well under 5 B/record, got {} for {}",
            buf.len(),
            t.len()
        );
    }

    #[test]
    fn writer_drop_without_finish_still_flushes_frames() {
        let mut buf = Vec::new();
        {
            let mut w = TraceWriter::new(&mut buf).unwrap().with_frame_capacity(8);
            w.write_accesses(sample_trace(20).as_slice()).unwrap();
            // Dropped without finish(): the pending 4-record frame is
            // flushed best-effort.
        }
        let back = read_store(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 20);
    }

    #[test]
    fn recover_tail_repairs_every_truncation_point() {
        // Sweep: cut a 5-frame store at every byte length from full
        // down past the last frame boundary, repair, and check the
        // survivor is exactly the longest valid frame prefix.
        let t = sample_trace(100);
        let mut pristine = Vec::new();
        let mut w = TraceWriter::new(&mut pristine)
            .unwrap()
            .with_frame_capacity(20);
        w.write_accesses(t.as_slice()).unwrap();
        w.finish().unwrap();
        drop(w);
        // Frame boundaries, from the header on up.
        let mut boundaries = vec![HEADER_BYTES as u64];
        {
            let mut r = TraceReader::new(pristine.as_slice()).unwrap();
            while r.next_chunk().unwrap().is_some() {
                boundaries.push(r.offset);
            }
        }
        assert_eq!(boundaries.len(), 6, "header + 5 frames");
        let path =
            std::env::temp_dir().join(format!("stems_recover_sweep_{}.stems", std::process::id()));
        for cut in (HEADER_BYTES..=pristine.len()).rev() {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            let report = TraceReader::recover_tail(&path).unwrap();
            let at_boundary = boundaries.contains(&(cut as u64));
            assert_eq!(report.was_damaged, !at_boundary, "cut at {cut}");
            let expect_end = *boundaries
                .iter()
                .filter(|b| **b <= cut as u64)
                .max()
                .unwrap();
            let expect_frames = boundaries.iter().position(|b| *b == expect_end).unwrap() as u64;
            assert_eq!(report.frames_kept, expect_frames, "cut at {cut}");
            assert_eq!(report.records_kept, expect_frames * 20, "cut at {cut}");
            assert_eq!(
                report.bytes_truncated,
                cut as u64 - expect_end,
                "cut at {cut}"
            );
            // The repaired file reads cleanly end to end and holds the
            // exact record prefix.
            let back = TraceReader::open(&path).unwrap().read_to_trace().unwrap();
            assert_eq!(
                back.as_slice(),
                &t.as_slice()[..(expect_frames * 20) as usize],
                "cut at {cut}"
            );
            // Repair is idempotent: a second pass finds no damage.
            let again = TraceReader::recover_tail(&path).unwrap();
            assert!(!again.was_damaged, "cut at {cut}");
            assert_eq!(again.bytes_truncated, 0);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recover_tail_cuts_a_corrupted_tail_frame() {
        let t = sample_trace(60);
        let mut pristine = Vec::new();
        let mut w = TraceWriter::new(&mut pristine)
            .unwrap()
            .with_frame_capacity(20);
        w.write_accesses(t.as_slice()).unwrap();
        w.finish().unwrap();
        drop(w);
        let path = std::env::temp_dir().join(format!(
            "stems_recover_corrupt_{}.stems",
            std::process::id()
        ));
        // Flip a bit in the last frame's payload: the CRC catches it
        // and repair drops that frame, keeping the first two.
        let mut damaged = pristine.clone();
        let n = damaged.len();
        damaged[n - CHECKSUM_BYTES - 1] ^= 0x10;
        std::fs::write(&path, &damaged).unwrap();
        let report = TraceReader::recover_tail(&path).unwrap();
        assert!(report.was_damaged);
        assert_eq!(report.frames_kept, 2);
        assert_eq!(report.records_kept, 40);
        let back = TraceReader::open(&path).unwrap().read_to_trace().unwrap();
        assert_eq!(back.as_slice(), &t.as_slice()[..40]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recover_tail_refuses_a_damaged_header() {
        let path =
            std::env::temp_dir().join(format!("stems_recover_header_{}.stems", std::process::id()));
        std::fs::write(&path, &STORE_MAGIC[..6]).unwrap();
        let err = TraceReader::recover_tail(&path).unwrap_err();
        assert!(matches!(
            err,
            TraceStoreError::Truncated { frame_offset: 0 }
        ));
        // The file is untouched: header damage is not repairable.
        assert_eq!(std::fs::read(&path).unwrap().len(), 6);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sync_policies_produce_identical_bytes() {
        let t = sample_trace(64);
        let mut reference = Vec::new();
        write_store(&mut reference, &t).unwrap();
        for policy in [
            SyncPolicy::Never,
            SyncPolicy::OnFinish,
            SyncPolicy::EveryFrame,
        ] {
            let mut buf = Vec::new();
            let mut w = TraceWriter::new(&mut buf).unwrap().with_sync_policy(policy);
            w.write_accesses(t.as_slice()).unwrap();
            w.finish().unwrap();
            drop(w);
            assert_eq!(buf, reference, "{policy:?} must not change the format");
        }
    }
}
