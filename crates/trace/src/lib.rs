//! Memory-access traces: the interchange format between workload
//! generators, the cache simulator, the prefetchers, and the analyses.
//!
//! The paper collects traces with FLEXUS (in-order functional simulation,
//! Section 5.1) and feeds them to trace-driven predictor studies. Our
//! equivalent is the [`Trace`] type: a flat sequence of [`Access`] records,
//! each carrying the access PC, byte address, read/write kind, a
//! *dependence* annotation (whether the address was computed from the value
//! returned by the previous access — i.e. pointer chasing), and the amount
//! of non-memory work preceding it. The dependence and work annotations are
//! only consumed by the timing model; the functional cache simulation and
//! all trace analyses ignore them.
//!
//! Traces live in one of two places: in memory as a [`Trace`], or on
//! disk in the chunked, append-only store format ([`store`]) that can
//! be written incrementally and replayed in O(chunk) memory. The legacy
//! fixed-width blob codec ([`io`]) is kept for old fixtures. The
//! on-disk layout is specified byte-by-byte in `docs/TRACE_FORMAT.md`.
//!
//! # Example
//!
//! ```
//! use stems_trace::{Access, AccessKind, Dependence, Trace};
//! use stems_types::{Addr, Pc};
//!
//! let mut trace = Trace::new();
//! trace.push(Access::read(Pc::new(0x400), Addr::new(0x1000)));
//! trace.push(
//!     Access::read(Pc::new(0x404), Addr::new(0x2000)).with_dep(Dependence::OnPrevAccess),
//! );
//! assert_eq!(trace.len(), 2);
//! assert_eq!(trace.iter().filter(|a| a.kind == AccessKind::Read).count(), 2);
//! ```

#![deny(missing_docs)]

pub mod io;
pub mod record;
pub mod stats;
pub mod store;

pub use io::{read_trace, write_trace, TraceIoError};
pub use record::{Access, AccessKind, Dependence};
pub use stats::TraceStats;
pub use store::{StoreSummary, SyncPolicy, TraceReader, TraceStoreError, TraceWriter};

use stems_types::{Addr, Pc};

/// An in-memory sequence of memory accesses.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    accesses: Vec<Access>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace {
            accesses: Vec::new(),
        }
    }

    /// Creates an empty trace with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Trace {
            accesses: Vec::with_capacity(n),
        }
    }

    /// Appends an access.
    pub fn push(&mut self, access: Access) {
        self.accesses.push(access);
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Iterates over accesses in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Access> {
        self.accesses.iter()
    }

    /// The accesses as a slice.
    pub fn as_slice(&self) -> &[Access] {
        &self.accesses
    }

    /// Computes summary statistics.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_trace(self)
    }

    /// Convenience: appends a read at `(pc, addr)`.
    pub fn read(&mut self, pc: u64, addr: u64) {
        self.push(Access::read(Pc::new(pc), Addr::new(addr)));
    }

    /// Convenience: appends a write at `(pc, addr)`.
    pub fn write(&mut self, pc: u64, addr: u64) {
        self.push(Access::write(Pc::new(pc), Addr::new(addr)));
    }
}

impl FromIterator<Access> for Trace {
    fn from_iter<I: IntoIterator<Item = Access>>(iter: I) -> Self {
        Trace {
            accesses: iter.into_iter().collect(),
        }
    }
}

impl Extend<Access> for Trace {
    fn extend<I: IntoIterator<Item = Access>>(&mut self, iter: I) {
        self.accesses.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Access;
    type IntoIter = std::slice::Iter<'a, Access>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.iter()
    }
}

impl IntoIterator for Trace {
    type Item = Access;
    type IntoIter = std::vec::IntoIter<Access>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut t = Trace::new();
        t.read(1, 64);
        t.write(2, 128);
        assert_eq!(t.len(), 2);
        assert_eq!(t.iter().count(), 2);
        assert_eq!(t.as_slice()[0].kind, AccessKind::Read);
        assert_eq!(t.as_slice()[1].kind, AccessKind::Write);
    }

    #[test]
    fn collect_from_iterator() {
        let t: Trace = (0..10)
            .map(|i| Access::read(Pc::new(i), Addr::new(i * 64)))
            .collect();
        assert_eq!(t.len(), 10);
    }
}
