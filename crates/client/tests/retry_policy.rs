//! Property tests for the retry policy's backoff schedule: for any
//! seed and configuration, the jitter schedule is a reproducible pure
//! function of `(seed, attempt)`, every delay respects the configured
//! cap and the half-raw jitter floor, and the `Busy` path honors the
//! server's hint without ever exceeding the cap.

use std::time::Duration;

use proptest::prelude::*;

use stems_client::RetryPolicy;

fn policy(base_ms: u64, max_ms: u64, seed: u64) -> RetryPolicy {
    RetryPolicy {
        base_delay: Duration::from_millis(base_ms),
        max_delay: Duration::from_millis(max_ms),
        jitter_seed: seed,
        ..RetryPolicy::default()
    }
}

proptest! {
    /// Same `(seed, attempt)`, same delay — across fresh policy values,
    /// so no hidden state can leak between calls.
    #[test]
    fn schedule_is_a_pure_function_of_seed_and_attempt(
        seed in any::<u64>(),
        base_ms in 1u64..100,
        max_ms in 100u64..5_000,
        attempt in 0u32..64,
    ) {
        let a = policy(base_ms, max_ms, seed).delay(attempt);
        let b = policy(base_ms, max_ms, seed).delay(attempt);
        prop_assert_eq!(a, b);
    }

    /// Every delay is within `[raw/2, raw]` where `raw` is the capped
    /// exponential — jitter can only shave, never inflate, and the cap
    /// is never exceeded by any attempt index, including saturating
    /// ones.
    #[test]
    fn delays_are_bounded_by_cap_and_jitter_floor(
        seed in any::<u64>(),
        base_ms in 1u64..100,
        max_ms in 100u64..5_000,
        attempt in 0u32..64,
    ) {
        let p = policy(base_ms, max_ms, seed);
        // Saturating attempt indices obey the cap too.
        for attempt in [attempt, u32::MAX] {
            let raw = p.base_delay
                .saturating_mul(1u32 << attempt.min(31))
                .min(p.max_delay);
            let d = p.delay(attempt);
            prop_assert!(d <= p.max_delay, "attempt {} exceeded the cap: {:?}", attempt, d);
            prop_assert!(d >= raw / 2, "attempt {} under the jitter floor: {:?} < {:?}", attempt, d, raw / 2);
            prop_assert!(d <= raw, "jitter inflated the raw delay: {:?} > {:?}", d, raw);
        }
    }

    /// The exponential actually grows until it reaches the cap: the
    /// jitter floor of a later attempt eventually clears the ceiling of
    /// an early one.
    #[test]
    fn backoff_grows_toward_the_cap(
        seed in any::<u64>(),
        base_ms in 1u64..20,
    ) {
        let p = policy(base_ms, 60_000, seed);
        // Raw doubles each attempt; by attempt 3 the floor (raw/2 =
        // 4*base) is above attempt 0's ceiling (raw = base).
        prop_assert!(p.delay(3) > p.delay(0));
    }

    /// `busy_delay` is at least the server's hint and at least the
    /// schedule's own backoff, but still capped.
    #[test]
    fn busy_delay_honors_hint_schedule_and_cap(
        seed in any::<u64>(),
        base_ms in 1u64..100,
        max_ms in 100u64..5_000,
        attempt in 0u32..64,
        hint_ms in 0u32..10_000,
    ) {
        let p = policy(base_ms, max_ms, seed);
        let d = p.busy_delay(attempt, hint_ms);
        let hint = Duration::from_millis(u64::from(hint_ms));
        prop_assert!(d <= p.max_delay);
        prop_assert!(d >= hint.min(p.max_delay), "hint ignored: {:?} < {:?}", d, hint);
        prop_assert!(d >= p.delay(attempt).min(p.max_delay), "schedule ignored");
    }

    /// Different seeds disagree somewhere in the first attempts — the
    /// jitter is real, not a constant factor.
    #[test]
    fn different_seeds_produce_different_schedules(
        seed in any::<u64>(),
    ) {
        let a = policy(10, 5_000, seed);
        let b = policy(10, 5_000, seed.wrapping_add(1));
        let differs = (0..16).any(|n| a.delay(n) != b.delay(n));
        prop_assert!(differs, "seeds {} and {} agree on 16 delays", seed, seed.wrapping_add(1));
    }
}
