//! `stems-client` — stream persisted traces to a `stems-serve` daemon.
//!
//! ```text
//! stems-client replay <store-file> --addr HOST:PORT
//!              [--predictor none|stride|tms|sms|stems|naive]
//!              [--window N] [--small]
//!              [--inval-rate R --inval-seed S]
//! stems-client shutdown --addr HOST:PORT
//! ```
//!
//! `replay` opens one session (paper Table 1 configuration, or the
//! scaled-down `small()` pair with `--small`), streams the store file
//! with a bounded in-flight window, closes the session, and prints the
//! summary counters. Workload-aware replay (per-workload prefetch
//! configuration and invalidation injection, comparable to `tracegen
//! verify`) lives in `tracegen replay --remote`.
//!
//! `shutdown` drains the server: every open session is finalized, its
//! summary printed, and the daemon exits 0.

use std::process::ExitCode;

use stems_client::Client;
use stems_core::protocol::{OpenRequest, SessionSummary};
use stems_core::{Counters, Predictor, PrefetchConfig};
use stems_memsim::SystemConfig;
use stems_trace::TraceReader;

fn usage() -> ExitCode {
    eprintln!("usage: stems-client replay <store-file> --addr HOST:PORT [--predictor p]");
    eprintln!("                    [--window N] [--small] [--inval-rate R --inval-seed S]");
    eprintln!("       stems-client shutdown --addr HOST:PORT");
    ExitCode::FAILURE
}

fn counters_row(label: &str, c: &Counters) {
    println!(
        "{label:<10} accesses {:>9} reads {:>9} covered {:>8} uncovered {:>8} overpred {:>8} fetches {:>8}",
        c.accesses, c.reads, c.covered, c.uncovered, c.overpredictions, c.fetches
    );
}

fn print_summary(s: &SessionSummary, predictor: &str) {
    println!("session {}: {} accesses fed", s.session, s.accesses_fed);
    counters_row(predictor, &s.counters);
    if let Some(r) = s.recon {
        println!(
            "recon: exact {} shifted1 {} shifted2 {} dropped_conflict {} dropped_window {}",
            r.exact, r.shifted1, r.shifted2, r.dropped_conflict, r.dropped_window
        );
    }
    if let Some(p) = s.pst_probes {
        println!("pst probes: {p}");
    }
}

fn arg_after<'a>(args: &'a [String], flag: &str) -> Option<&'a String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("replay") if args.len() >= 2 => replay(&args[1..]),
        Some("shutdown") => shutdown(&args[1..]),
        _ => usage(),
    }
}

fn replay(args: &[String]) -> ExitCode {
    let path = &args[0];
    let Some(addr) = arg_after(args, "--addr") else {
        eprintln!("replay needs --addr HOST:PORT");
        return usage();
    };
    let predictor = match arg_after(args, "--predictor") {
        Some(name) => match name.parse::<Predictor>() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        None => Predictor::Stems,
    };
    let window: usize = arg_after(args, "--window")
        .and_then(|w| w.parse().ok())
        .unwrap_or(4);
    let small = args.iter().any(|a| a == "--small");
    let invalidations = match (
        arg_after(args, "--inval-rate").and_then(|r| r.parse::<f64>().ok()),
        arg_after(args, "--inval-seed").and_then(|s| s.parse::<u64>().ok()),
    ) {
        (Some(rate), Some(seed)) => Some((rate, seed)),
        (Some(rate), None) => Some((rate, 0xC0FFEE)),
        _ => None,
    };
    let open = OpenRequest {
        system: if small {
            SystemConfig::small()
        } else {
            SystemConfig::default()
        },
        prefetch: if small {
            PrefetchConfig::small()
        } else {
            PrefetchConfig::default()
        },
        predictor,
        invalidations,
    };

    let mut reader = match TraceReader::open(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut run = || -> Result<(u64, SessionSummary), stems_client::ClientError> {
        let mut client = Client::connect(addr)?;
        let session = client.open(&open)?;
        let (fed, _) = client.stream(session, &mut reader, window)?;
        let summary = client.close(session)?;
        Ok((fed, summary))
    };
    match run() {
        Ok((fed, summary)) => {
            println!("{path}: streamed {fed} accesses to {addr} through {predictor}");
            print_summary(&summary, predictor.name());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("replay failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn shutdown(args: &[String]) -> ExitCode {
    let Some(addr) = arg_after(args, "--addr") else {
        eprintln!("shutdown needs --addr HOST:PORT");
        return usage();
    };
    let run = || -> Result<Vec<SessionSummary>, stems_client::ClientError> {
        let mut client = Client::connect(addr)?;
        client.shutdown_server()
    };
    match run() {
        Ok(summaries) => {
            println!("{addr}: drained {} session(s)", summaries.len());
            for s in &summaries {
                print_summary(s, "drained");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("shutdown failed: {e}");
            ExitCode::FAILURE
        }
    }
}
