//! Retry, backoff, and resumable streaming on top of [`Client`].
//!
//! A raw [`Client`] surfaces every fault as a typed error and stops.
//! [`ResilientClient`] heals the transient ones instead: it wraps one
//! logical session in a [`RetryPolicy`] (bounded exponential backoff
//! with deterministic seeded jitter, connect timeout, per-call socket
//! deadlines) and the resume protocol from `docs/FAULT_TOLERANCE.md`.
//!
//! The streaming path keeps every unacknowledged sequenced chunk
//! buffered (as its already-encoded wire frame). When anything
//! transient goes wrong mid-stream — a torn connection, a truncated or
//! corrupted frame, a `Busy` rejection — it tears the connection down,
//! backs off, reconnects, sends `Resume{session, last_acked_seq}`,
//! drops the buffered frames the server's journal already applied,
//! resends the rest byte-identically, and keeps going. The server's
//! idempotent dedupe guarantees the replayed stream produces counters
//! byte-identical to a fault-free run.
//!
//! Everything is deterministic on purpose: the jitter schedule is a
//! pure function of `(seed, attempt)`, so a failure reproduces exactly
//! under a fixed seed, and the chaos harness can assert that retry
//! counts equal injected-fault counts.

use std::collections::VecDeque;
use std::io::Read;
use std::time::Duration;

use stems_core::protocol::{self, ChunkStats, OpenRequest, SessionSummary};
use stems_trace::TraceReader;

use crate::{Client, ClientError};

/// How a [`ResilientClient`] retries: bounded exponential backoff with
/// deterministic seeded jitter, plus the socket deadlines applied at
/// every (re)connect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Consecutive failed attempts tolerated before giving up (the
    /// counter resets after every success).
    pub max_retries: u32,
    /// Backoff before retry `n` starts from `base_delay << n`.
    pub base_delay: Duration,
    /// Hard cap on any single backoff delay, jitter included.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter schedule.
    pub jitter_seed: u64,
    /// Bound on connection establishment.
    pub connect_timeout: Duration,
    /// Per-read socket deadline.
    pub read_timeout: Duration,
    /// Per-write socket deadline.
    pub write_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(2),
            jitter_seed: 0x5EED_2009,
            connect_timeout: crate::DEFAULT_CONNECT_TIMEOUT,
            read_timeout: crate::DEFAULT_READ_TIMEOUT,
            write_timeout: crate::DEFAULT_WRITE_TIMEOUT,
        }
    }
}

/// SplitMix64: the house mixer for deriving independent deterministic
/// values from a seed (same finalizer the workload RNGs use).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// The backoff before retry attempt `attempt` (0-based): a pure
    /// function of `(jitter_seed, attempt)`, so the whole schedule is
    /// reproducible under a fixed seed. The raw delay doubles each
    /// attempt from [`RetryPolicy::base_delay`]; jitter scales it by a
    /// factor in `[0.5, 1.0]`; the result never exceeds
    /// [`RetryPolicy::max_delay`].
    pub fn delay(&self, attempt: u32) -> Duration {
        let shift = attempt.min(31);
        let raw = self
            .base_delay
            .saturating_mul(1u32 << shift)
            .min(self.max_delay);
        let r =
            splitmix64(self.jitter_seed ^ u64::from(attempt).wrapping_mul(0xA076_1D64_78BD_642F));
        let factor = 0.5 + 0.5 * (r as f64 / u64::MAX as f64);
        raw.mul_f64(factor)
    }

    /// The delay before retrying a `Busy` rejection: the larger of the
    /// server's hint and the backoff schedule's delay, still capped at
    /// [`RetryPolicy::max_delay`].
    pub fn busy_delay(&self, attempt: u32, retry_after_ms: u32) -> Duration {
        self.delay(attempt)
            .max(Duration::from_millis(u64::from(retry_after_ms)))
            .min(self.max_delay)
    }
}

/// What the retry layer healed (and what it could not avoid paying):
/// one counter per recovery mechanism, so a chaos run can reconcile
/// client-side healing against the proxy's injection log and the
/// server's scraped metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Connection teardowns forced by a transient non-`Busy` fault
    /// (one per fault the transport surfaced — the number a fault
    /// proxy's fatal-injection log must match).
    pub reconnects: u64,
    /// Successful `Resume` handshakes after a mid-stream teardown
    /// (what the server counts as `stems_sessions_resumed_total`).
    pub resumes: u64,
    /// `Busy` rejections answered by backing off and retrying.
    pub busy_retries: u64,
    /// Buffered frames resent after a resume.
    pub chunks_resent: u64,
    /// Resent chunks the server's journal had already applied (their
    /// original `Stats` reply died with the old connection).
    pub chunks_deduped: u64,
}

/// One buffered in-flight chunk: its sequence number, the exact wire
/// frame that was sent, and how many records it carries.
struct Pending {
    seq: u64,
    frame: Vec<u8>,
}

/// A [`Client`] wrapped in a [`RetryPolicy`] and the resume protocol:
/// transient faults (torn connections, corrupt frames, `Busy`
/// shedding) heal transparently; authoritative server errors still
/// surface.
pub struct ResilientClient {
    addr: String,
    policy: RetryPolicy,
    client: Option<Client>,
    stats: FaultStats,
}

impl ResilientClient {
    /// Creates the wrapper. No connection is made until the first call
    /// needs one.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> ResilientClient {
        ResilientClient {
            addr: addr.into(),
            policy,
            client: None,
            stats: FaultStats::default(),
        }
    }

    /// What the retry layer has healed so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The configured policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    fn connect(&mut self) -> Result<&mut Client, ClientError> {
        if self.client.is_none() {
            let client = Client::connect_with(
                self.addr.as_str(),
                self.policy.connect_timeout,
                self.policy.read_timeout,
                self.policy.write_timeout,
            )?;
            self.client = Some(client);
        }
        Ok(self.client.as_mut().expect("just connected"))
    }

    /// Counts one transient failure, tears the connection down, and
    /// sleeps the policy's backoff. Returns the next attempt index.
    fn note_fault(&mut self, e: &ClientError, attempt: u32) -> u32 {
        match e {
            ClientError::Busy { retry_after_ms, .. } => {
                self.stats.busy_retries += 1;
                self.client = None;
                std::thread::sleep(self.policy.busy_delay(attempt, *retry_after_ms));
            }
            _ => {
                self.stats.reconnects += 1;
                self.client = None;
                std::thread::sleep(self.policy.delay(attempt));
            }
        }
        attempt + 1
    }

    /// Runs `op` against a live connection, retrying transient faults
    /// (with reconnect) and `Busy` rejections (with backoff) up to
    /// `max_retries` consecutive failures. `op` must be idempotent —
    /// every caller here satisfies that via the server's journals.
    fn with_retry<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut attempt = 0u32;
        loop {
            let result = match self.connect() {
                Ok(client) => op(client),
                Err(e) => Err(e),
            };
            match result {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt < self.policy.max_retries => {
                    attempt = self.note_fault(&e, attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Opens a session, retrying transient faults. A retried `Open`
    /// whose first reply was lost can leak a server-side session until
    /// its idle TTL reclaims it — accepted, and why `Open` stays cheap.
    pub fn open(&mut self, open: &OpenRequest) -> Result<u32, ClientError> {
        let open = open.clone();
        self.with_retry(move |client| client.open(&open))
    }

    /// Closes a session, retrying transient faults; the server's
    /// summary journal answers a retried close with the identical
    /// summary even though the session is already gone.
    pub fn close(&mut self, session: u32) -> Result<SessionSummary, ClientError> {
        self.with_retry(move |client| client.close(session))
    }

    /// Streams a whole persisted trace into `session` with sequenced
    /// chunks, keeping up to `window` chunks in flight and healing
    /// every transient fault via reconnect + `Resume`. Returns the
    /// records fed and the last counter snapshot (which reflects every
    /// record, because all snapshots are drained before returning).
    ///
    /// The trace reader is forward-only, so the unacknowledged window
    /// is buffered here as encoded frames; a resume resends exactly
    /// the frames the server's journal has not applied, and the
    /// server's dedupe absorbs any overlap. Counters stay
    /// byte-identical to a fault-free run.
    pub fn stream<R: Read>(
        &mut self,
        session: u32,
        reader: &mut TraceReader<R>,
        window: usize,
    ) -> Result<(u64, Option<ChunkStats>), ClientError> {
        let window = window.max(1);
        let mut pending: VecDeque<Pending> = VecDeque::with_capacity(window);
        let mut next_seq = 1u64;
        let mut acked_seq = 0u64;
        let mut fed = 0u64;
        let mut last: Option<ChunkStats> = None;
        let mut attempt = 0u32;
        let mut scratch = Vec::new();
        let mut exhausted = false;

        while !exhausted || !pending.is_empty() {
            // Fill the window from the reader, encoding each chunk once
            // (the buffered frame is also the retransmit unit).
            while !exhausted && pending.len() < window {
                match reader.next_chunk()? {
                    None => exhausted = true,
                    Some(chunk) => {
                        let mut frame = Vec::new();
                        protocol::encode_seq_chunk(
                            &mut frame,
                            &mut scratch,
                            session,
                            next_seq,
                            chunk,
                        );
                        fed += chunk.len() as u64;
                        let send = self.connect().and_then(|c| c.write_frame_bytes(&frame));
                        pending.push_back(Pending {
                            seq: next_seq,
                            frame,
                        });
                        next_seq += 1;
                        if let Err(e) = send {
                            attempt = self.recover(
                                session,
                                &mut pending,
                                &mut acked_seq,
                                &mut last,
                                attempt,
                                e,
                            )?;
                        }
                    }
                }
            }
            if pending.is_empty() {
                break;
            }
            // One snapshot owed per in-flight frame, in order.
            match self.connect().and_then(|c| c.read_stats()) {
                Ok(stats) => {
                    attempt = 0;
                    let head = pending.pop_front().expect("stats without a pending chunk");
                    acked_seq = head.seq;
                    last = Some(stats);
                }
                Err(e) => {
                    attempt =
                        self.recover(session, &mut pending, &mut acked_seq, &mut last, attempt, e)?;
                }
            }
        }
        Ok((fed, last))
    }

    /// Heals one mid-stream fault: tear down, back off, reconnect,
    /// `Resume`, drop journal-applied frames from the window, resend
    /// the rest. Returns the attempt counter to carry forward (0 after
    /// a successful recovery); consecutive failures share it so a dead
    /// server exhausts `max_retries` instead of looping forever.
    fn recover(
        &mut self,
        session: u32,
        pending: &mut VecDeque<Pending>,
        acked_seq: &mut u64,
        last: &mut Option<ChunkStats>,
        mut attempt: u32,
        cause: ClientError,
    ) -> Result<u32, ClientError> {
        if !cause.is_transient() {
            return Err(cause);
        }
        let mut err = cause;
        loop {
            if attempt >= self.policy.max_retries {
                return Err(err);
            }
            attempt = self.note_fault(&err, attempt);
            let info = match self.connect().and_then(|c| c.resume(session, *acked_seq)) {
                Ok(info) => info,
                Err(e) if e.is_transient() => {
                    err = e;
                    continue;
                }
                Err(e) => return Err(e),
            };
            self.stats.resumes += 1;
            // Frames the server's journal already applied are
            // acknowledged now; their Stats replies died with the old
            // connection.
            while pending.front().is_some_and(|p| p.seq <= info.last_seq) {
                let done = pending.pop_front().expect("checked non-empty");
                *acked_seq = done.seq;
                self.stats.chunks_deduped += 1;
            }
            *last = Some(ChunkStats {
                session,
                accesses_fed: info.accesses_fed,
                counters: info.counters,
            });
            // Resend the rest of the window byte-identically.
            let mut resend_err = None;
            for p in pending.iter() {
                match self.connect().and_then(|c| c.write_frame_bytes(&p.frame)) {
                    Ok(()) => self.stats.chunks_resent += 1,
                    Err(e) if e.is_transient() => {
                        // The fresh connection died too; resume again.
                        resend_err = Some(e);
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            match resend_err {
                Some(e) => err = e,
                None => return Ok(0),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            jitter_seed: 42,
            ..RetryPolicy::default()
        };
        let a: Vec<Duration> = (0..16).map(|n| policy.delay(n)).collect();
        let b: Vec<Duration> = (0..16).map(|n| policy.delay(n)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        for d in &a {
            assert!(*d <= policy.max_delay);
        }
        // Jitter keeps at least half the raw delay.
        assert!(a[0] >= policy.base_delay / 2);
        // A different seed produces a different schedule.
        let other = RetryPolicy {
            jitter_seed: 43,
            ..policy
        };
        assert_ne!(a, (0..16).map(|n| other.delay(n)).collect::<Vec<_>>());
    }

    #[test]
    fn busy_delay_honors_the_server_hint() {
        let policy = RetryPolicy::default();
        assert!(policy.busy_delay(0, 500) >= Duration::from_millis(500));
        assert!(policy.busy_delay(0, u32::MAX) <= policy.max_delay);
    }

    #[test]
    fn huge_attempt_indices_saturate_instead_of_overflowing() {
        let policy = RetryPolicy::default();
        assert!(policy.delay(u32::MAX) <= policy.max_delay);
        assert!(policy.delay(31) <= policy.max_delay);
    }
}
